#!/usr/bin/env python
"""Benchmark the control engines: event-driven vs vectorized closed loop.

Runs the paper's full 20-minute bursty trace (both platforms, 200
instances) with the closed-loop control plane engaged — reactive
target-utilization autoscaling (warmup-delayed scale-ups, graceful
scale-downs) plus a CoDel queue-delay shedder — composed with the mild
chaos schedule of ``bench_faults.py`` (instance churn + slowdowns +
retries), through

- the **event-driven control oracle** — one callback per arrival,
  control tick, warmup activation, fault event, timer, and completion,
  and
- the **vectorized control engine** — chaos pass-A chunking with
  control-epoch boundaries and a vectorized admission gate —

checks the two are bit-identical (series incl. live-capacity and
per-app completion records, ``shed`` drops, RNG end state), and writes
the shared ``bench_common`` schema to ``BENCH_autoscale.json``.  A
separate ``zero_control_overhead`` section times the same chaos study
with an inert ``ControlPlane()`` attached, pinning the cost of the
control layer at zero until it is enabled.

Usage::

    PYTHONPATH=src python scripts/bench_autoscale.py [--rate-scale S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    engine_record,
    series_digest,
    timed,
    write_record,
)

from repro.cluster.control import (
    AutoscalerPolicy,
    ControlPlane,
    OverloadPolicy,
)
from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

# The same mild churn as bench_faults.py, so the two benchmarks isolate
# exactly the closed-loop layer.
FAULTS = FaultSchedule(
    instance_mtbf_seconds=900.0,
    instance_mttr_seconds=30.0,
    slowdown_rate_per_minute=1.0,
    slowdown_multiplier=2.0,
    slowdown_duration_seconds=5.0,
    seed=404,
)
RETRY = RetryPolicy(timeout_seconds=5.0, max_retries=2)
PLANE = ControlPlane(
    autoscaler=AutoscalerPolicy(
        policy="target_utilization",
        min_instances=20,
        warmup_seconds=2.5,
        scale_down_cooldown_seconds=30.0,
    ),
    overload=OverloadPolicy(queue_delay_target_seconds=0.5),
)


def run_study(context, trace, engine, max_instances, seed, control):
    """Run the two-platform closed-loop study under one engine."""
    series = {}
    rng_states = {}
    for name in (BASELINE_NAME, DSCS_NAME):
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=max_instances,
            seed=seed,
            faults=FAULTS,
            retry=RETRY,
            control=control,
        )
        series[name] = simulation.run(trace, engine=engine)
        rng_states[name] = repr(simulation._rng.bit_generator.state)
    return series, rng_states


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate-scale", type=float, default=1.0)
    parser.add_argument("--max-instances", type=int, default=200)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_autoscale.json",
    )
    parser.add_argument(
        "--skip-event",
        action="store_true",
        help="only time the vectorized control engine (no oracle)",
    )
    args = parser.parse_args(argv)

    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    envelope = tuple(r * args.rate_scale for r in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(context.app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(args.seed))
    print(
        f"closed-loop study: {len(trace)} requests over "
        f"{trace.duration_seconds / 60:.0f} min, both platforms, "
        f"{args.max_instances} instance ceiling, "
        f"{PLANE.autoscaler.min_instances} floor, churn + shedding"
    )

    work_items = 2 * len(trace)
    (fast_series, fast_rng), fast_s = timed(
        lambda: run_study(
            context, trace, "vectorized", args.max_instances, args.seed,
            PLANE,
        )
    )
    fast = engine_record("vectorized control engine", fast_s, work_items)
    print(f"vectorized:   {fast_s:8.2f}s  ({work_items / fast_s:9.0f} req/s)")

    oracle = None
    if not args.skip_event:
        (event_series, event_rng), event_s = timed(
            lambda: run_study(
                context, trace, "event", args.max_instances, args.seed,
                PLANE,
            )
        )
        oracle = engine_record(
            "event-driven control oracle", event_s, work_items
        )
        print(
            f"event-driven: {event_s:8.2f}s  "
            f"({work_items / event_s:9.0f} req/s)"
        )
        identical = all(
            event_series[name].identical_to(fast_series[name])
            for name in event_series
        ) and event_rng == fast_rng
        if not identical:
            print("ERROR: control engines disagree — not recording",
                  file=sys.stderr)
            return 1
        print(
            f"speedup: {round(event_s / fast_s, 2)}x (results bit-identical)"
        )

    # Zero-control overhead: the same chaos study with an inert plane
    # must route to (and run at the speed of) the chaos fast engine.
    (_, _), inert_s = timed(
        lambda: run_study(
            context, trace, "vectorized", args.max_instances, args.seed,
            ControlPlane(),
        )
    )
    print(
        f"inert plane:  {inert_s:8.2f}s  "
        f"({work_items / inert_s:9.0f} req/s, routes to chaos engine)"
    )

    record = build_record(
        benchmark="closed_loop_control_study",
        workload={
            "num_requests": len(trace),
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "platforms": [BASELINE_NAME, DSCS_NAME],
            "autoscaler": {
                "policy": PLANE.autoscaler.policy,
                "min_instances": PLANE.autoscaler.min_instances,
                "warmup_s": PLANE.autoscaler.warmup_seconds,
            },
            "overload": {
                "queue_delay_target_s": (
                    PLANE.overload.queue_delay_target_seconds
                ),
            },
            "faults": {
                "instance_mtbf_s": FAULTS.instance_mtbf_seconds,
                "fault_seed": FAULTS.seed,
            },
            "telemetry": {
                name: {
                    "dropped": series.dropped_requests,
                    "drop_breakdown": series.drop_breakdown(),
                    "scale_ups": series.scale_ups,
                    "scale_downs": series.scale_downs,
                    "live_mean": round(
                        float(series.live_instances.mean()), 2
                    ),
                    "live_peak": int(series.live_instances.max()),
                    "availability": round(series.availability, 6),
                }
                for name, series in fast_series.items()
            },
        },
        fast=fast,
        oracle=oracle,
        check_hash=series_digest(fast_series),
    )
    record["zero_control_overhead"] = {
        "wall_clock_s": round(inert_s, 3),
        "per_second": round(work_items / inert_s, 2),
    }
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
