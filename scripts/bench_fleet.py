#!/usr/bin/env python
"""Benchmark the fig13-fleet study: sharded fleet vs the serial oracle stitch.

One fleet-level bursty trace is split across N racks by the global load
balancer, then run three ways:

- **sharded vectorized** (the fast engine) — racks fan out across a
  ``ProcessPoolExecutor`` of ``--workers`` processes, each rack on the
  vectorized busy-period kernel;
- **serial vectorized** — the same shards, same engine, one process
  (isolates the parallel-scaling component of the speedup); and
- **serial event-driven** (the oracle) — the same shards through the
  event-driven reference engine, one process.

All three must stitch to identical per-rack check hashes and the same
merged fleet hash — the sampled/sharded-vs-monolithic validation
discipline of *Memory Access Vectors*.  The recorded ``speedup`` is
oracle / sharded, the same oracle-vs-fast convention every other
``BENCH_*.json`` uses; ``parallel_speedup`` (serial vectorized /
sharded) isolates what the process pool contributed on this machine.

Usage::

    PYTHONPATH=src python scripts/bench_fleet.py [--racks N] [--workers W]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    engine_record,
    timed,
    write_record,
)

from repro.cluster.fleet import FleetTopology, GlobalLoadBalancer
from repro.cluster.fleet_engine import FleetRunner
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, build_context


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--racks", type=int, default=16)
    parser.add_argument(
        "--workers",
        type=int,
        default=8,
        help="process-pool size for the sharded run",
    )
    parser.add_argument(
        "--rate-scale",
        type=float,
        default=6.0,
        help="scale on the fleet-level rate envelope",
    )
    parser.add_argument(
        "--max-instances", type=int, default=200, help="instances per rack"
    )
    parser.add_argument(
        "--lb-policy",
        default="round_robin",
        help="load-balancer policy (round_robin | weighted | hash_affinity)",
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_fleet.json",
    )
    parser.add_argument(
        "--skip-event",
        action="store_true",
        help="only time the vectorized paths (no oracle, no speedup field)",
    )
    args = parser.parse_args(argv)

    context = build_context(platform_names=[BASELINE_NAME])
    envelope = tuple(r * args.rate_scale for r in DEFAULT_RATE_ENVELOPE)
    trace = TraceGenerator(
        context.app_names, rate_envelope=envelope
    ).generate(np.random.default_rng(args.seed))
    topology = FleetTopology.uniform(
        args.racks,
        BASELINE_NAME,
        max_instances=args.max_instances,
        seed=args.seed,
    )
    print(
        f"fig13-fleet study: {len(trace)} requests over "
        f"{trace.duration_seconds / 60:.0f} min, {args.racks} racks x "
        f"{args.max_instances} instances, lb={args.lb_policy}"
    )

    def runner(engine: str) -> FleetRunner:
        return FleetRunner(
            context,
            balancer=GlobalLoadBalancer(args.lb_policy),
            engine=engine,
        )

    work_items = len(trace)
    sharded, sharded_s = timed(
        lambda: runner("vectorized").run(
            topology, trace, workers=args.workers
        )
    )
    fast = engine_record(
        f"sharded vectorized fleet ({args.workers} workers)",
        sharded_s,
        work_items,
    )
    print(
        f"sharded ({args.workers}w): {sharded_s:8.2f}s  "
        f"({work_items / sharded_s:9.0f} req/s)"
    )

    serial_vec, serial_vec_s = timed(
        lambda: runner("vectorized").run(topology, trace, workers=1)
    )
    print(
        f"serial vectorized:  {serial_vec_s:8.2f}s  "
        f"({work_items / serial_vec_s:9.0f} req/s)"
    )
    if not sharded.identical_to(serial_vec):
        print(
            "ERROR: sharded run disagrees with the serial vectorized "
            "stitch — not recording",
            file=sys.stderr,
        )
        return 1

    oracle = None
    if not args.skip_event:
        serial_event, serial_event_s = timed(
            lambda: runner("event").run(topology, trace, workers=1)
        )
        oracle = engine_record(
            "serial event-driven oracle stitch", serial_event_s, work_items
        )
        print(
            f"serial event:       {serial_event_s:8.2f}s  "
            f"({work_items / serial_event_s:9.0f} req/s)"
        )
        if not sharded.identical_to(serial_event):
            print(
                "ERROR: sharded run disagrees with the serial event "
                "oracle stitch — not recording",
                file=sys.stderr,
            )
            return 1
        print(
            f"speedup vs oracle: {serial_event_s / sharded_s:.2f}x "
            "(per-rack + fleet hashes identical)"
        )

    record = build_record(
        benchmark="fig13_fleet_study",
        workload={
            "num_requests": len(trace),
            "racks": args.racks,
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "lb_policy": args.lb_policy,
            "platform": BASELINE_NAME,
            "shard_sizes": [
                rack.requests for rack in sharded.racks
            ],
            "dropped_requests": sharded.dropped,
            "fleet_p99_sketch_s": round(
                sharded.sketch_percentile(99.0), 6
            ),
        },
        fast=fast,
        oracle=oracle,
        check_hash=sharded.fleet_hash,
        workers=args.workers,
    )
    record["engines"]["serial_vectorized"] = engine_record(
        "serial vectorized stitch", serial_vec_s, work_items
    )
    record["parallel_speedup"] = round(serial_vec_s / sharded_s, 2)
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
