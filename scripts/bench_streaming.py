#!/usr/bin/env python
"""Benchmark the streaming engine: constant peak memory, materialized speed.

Grows the Fig. 13 workload by tiling the rate envelope (x1 / x10 / x100
duration, same per-segment rate) and runs each size twice:

- **memory runs** (under ``tracemalloc``, never timed): the streaming
  engine consumes a :class:`~repro.cluster.trace.StreamedTrace` — no
  whole-trace arrays anywhere — while the materialized run generates the
  full trace and runs the vectorized engine.  The sample interval is
  tiled with the envelope so the tick grid stays constant: what's left
  is the engine's working set, which must stay flat (within 2x across
  the 100x growth) for streaming and grows linearly for materialized.
- **timing runs** (untraced, largest size only): both engines on the
  identical materialized trace, streaming throughput must hold >= 80%
  of the vectorized engine.

Every size also asserts bit-identity: the streamed series must equal
``StreamedSeries.from_series(materialized)`` and leave the same RNG end
state.  The record is written in the shared ``bench_common`` schema to
``BENCH_streaming.json``.

Usage::

    PYTHONPATH=src python scripts/bench_streaming.py [--fast]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    engine_record,
    timed,
    traced_peak,
    write_record,
)

from repro.cluster.fleet_engine import streamed_check_hash
from repro.cluster.simulation import RackSimulation
from repro.cluster.streaming import StreamedSeries
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, build_context

BASE_SAMPLE_INTERVAL = 1.0
SEGMENT_SECONDS = 60.0


def make_generator(context, rate_scale, tiles):
    envelope = tuple(
        rate * rate_scale for rate in DEFAULT_RATE_ENVELOPE
    ) * tiles
    return TraceGenerator(
        context.app_names,
        rate_envelope=envelope,
        segment_seconds=SEGMENT_SECONDS,
    )


def make_sim(context, max_instances, seed):
    return RackSimulation(
        context.models[BASELINE_NAME],
        context.applications,
        max_instances=max_instances,
        seed=seed,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rate-scale",
        type=float,
        default=0.05,
        help="scale factor on the paper's request-rate envelope",
    )
    parser.add_argument(
        "--max-instances", type=int, default=20, help="fleet size"
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--chunk-requests",
        type=int,
        default=8192,
        help="streaming chunk size (requests per bounded chunk)",
    )
    parser.add_argument(
        "--tiles",
        type=int,
        nargs="+",
        default=[1, 10, 100],
        help="envelope tilings (trace-growth factors) to sweep",
    )
    parser.add_argument(
        "--fast",
        action="store_true",
        help="CI-scale run: x1/x10 growth at a lighter rate",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent
        / "BENCH_streaming.json",
        help="where to write the JSON record",
    )
    args = parser.parse_args(argv)
    if args.fast:
        args.tiles = [1, 10]
        args.rate_scale = min(args.rate_scale, 0.02)

    context = build_context(platform_names=[BASELINE_NAME])
    tiles = sorted(set(int(t) for t in args.tiles))
    memory_rows = []
    last = {}
    for tile in tiles:
        generator = make_generator(context, args.rate_scale, tile)
        interval = BASE_SAMPLE_INTERVAL * tile

        def stream_run():
            sim = make_sim(context, args.max_instances, args.seed)
            source = generator.stream(np.random.default_rng(args.seed))
            series = sim.run(
                source,
                interval,
                engine="streaming",
                chunk_requests=args.chunk_requests,
            )
            return sim, series

        def materialized_run():
            sim = make_sim(context, args.max_instances, args.seed)
            trace = generator.generate(np.random.default_rng(args.seed))
            return sim, sim.run(trace, interval, engine="vectorized")

        (stream_sim, streamed), stream_peak = traced_peak(stream_run)
        (mat_sim, mat), mat_peak = traced_peak(materialized_run)
        reference = StreamedSeries.from_series(mat)
        if not streamed.identical_to(reference):
            print(f"ERROR: x{tile} series disagree", file=sys.stderr)
            return 1
        if repr(stream_sim._rng.bit_generator.state) != repr(
            mat_sim._rng.bit_generator.state
        ):
            print(f"ERROR: x{tile} RNG end states disagree", file=sys.stderr)
            return 1
        memory_rows.append(
            {
                "tile": tile,
                "requests": streamed.total_requests,
                "streaming_peak_bytes": stream_peak,
                "materialized_peak_bytes": mat_peak,
            }
        )
        last = {
            "tile": tile,
            "generator": generator,
            "interval": interval,
            "streamed": streamed,
            "stream_sim": stream_sim,
        }
        print(
            f"x{tile:>3}: {streamed.total_requests:>9} requests  "
            f"streaming peak {stream_peak / 1e6:8.1f} MB  "
            f"materialized peak {mat_peak / 1e6:8.1f} MB"
        )

    peaks = [row["streaming_peak_bytes"] for row in memory_rows]
    growth = max(peaks) / min(peaks)
    flat = growth <= 2.0
    print(
        f"streaming peak growth across x{tiles[0]}..x{tiles[-1]}: "
        f"{growth:.2f}x ({'flat' if flat else 'NOT FLAT'})"
    )
    if not flat:
        print("ERROR: streaming peak memory not flat", file=sys.stderr)
        return 1

    # ---- throughput, largest size, identical materialized trace ------
    generator = last["generator"]
    interval = last["interval"]
    trace = generator.generate(np.random.default_rng(args.seed))
    mat_series, mat_s = timed(
        lambda: make_sim(context, args.max_instances, args.seed).run(
            trace, interval, engine="vectorized"
        )
    )
    streamed2, stream_s = timed(
        lambda: make_sim(context, args.max_instances, args.seed).run(
            trace,
            interval,
            engine="streaming",
            chunk_requests=args.chunk_requests,
        )
    )
    if not streamed2.identical_to(StreamedSeries.from_series(mat_series)):
        print("ERROR: timing-run series disagree", file=sys.stderr)
        return 1
    n = len(trace)
    ratio = (n / stream_s) / (n / mat_s)
    print(
        f"throughput x{last['tile']}: vectorized {n / mat_s:9.0f} req/s, "
        f"streaming {n / stream_s:9.0f} req/s ({ratio:.2f}x)"
    )
    if ratio < 0.8:
        print(
            f"ERROR: streaming throughput {ratio:.2f}x below the 0.8x "
            "floor",
            file=sys.stderr,
        )
        return 1

    record = build_record(
        benchmark="streaming_constant_memory",
        workload={
            "num_requests": int(n),
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "chunk_requests": args.chunk_requests,
            "tiles": tiles,
            "platform": BASELINE_NAME,
            "policy": "fcfs",
        },
        fast=engine_record(
            "streaming chunked engine",
            stream_s,
            n,
            peak_mem_bytes=memory_rows[-1]["streaming_peak_bytes"],
        ),
        oracle=engine_record(
            "vectorized busy-period engine",
            mat_s,
            n,
            peak_mem_bytes=memory_rows[-1]["materialized_peak_bytes"],
        ),
        check_hash=streamed_check_hash(
            last["streamed"],
            repr(last["stream_sim"]._rng.bit_generator.state),
        ),
    )
    record["memory"] = memory_rows
    record["streaming_peak_growth"] = round(growth, 3)
    record["throughput_ratio"] = round(ratio, 3)
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
