#!/usr/bin/env python
"""Benchmark the scheduling-policy engines: event-driven vs keyed vs vectorized.

Runs the fig13-policy study grid — SJF / criticality / DAG-aware on both
platforms under a bursty trace — through

- the **event-driven** engine with the heap-backed ``KeyedQueue``
  policies (the reference oracle after the priority-key refactor),
- the **vectorized** index-priority engine
  (``repro.cluster.policy_engine``) — contention-free chunks batched in
  numpy, congested stretches dispatched by a primitive-heap kernel —

and, on one representative saturated cell, the pre-refactor **linear
min + list.remove** policy implementation (frozen in
``repro.cluster.linear_policies``) to document what the heap-backed
queues retired.  The oracle and the
vectorized engine must produce bit-identical series (drops, latencies,
queue depth, busy instances, RNG end state) on every cell; the record is
written in the shared ``bench_common`` schema to ``BENCH_policy.json``.

Usage::

    PYTHONPATH=src python scripts/bench_policy.py [--rate-scale S] [--skip-linear]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    digest,
    engine_record,
    timed,
    write_record,
)

from repro.cluster.linear_policies import LinearShortestJobFirstPolicy
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.sweep import (
    default_criticality_priorities,
    service_estimates_for,
)
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

POLICIES = ("sjf", "criticality", "dag")

# The cell the legacy linear-min implementation is timed on: the most
# congested one, where its O(queue) pop hurts the most.
LINEAR_CELL = (BASELINE_NAME, "sjf")


class LinearSJFFactory:
    """Builds the frozen pre-refactor SJF queue (linear min+remove pop)."""

    def __init__(self, service_estimates):
        self._estimates = service_estimates

    def build(self):
        return LinearShortestJobFirstPolicy(self._estimates)


def make_factory(policy, context, estimates_by_platform, platform):
    """The exact policy configuration the fig13-policy sweep cells use."""
    if policy == "sjf":
        return PolicyFactory(
            "sjf", service_estimates=estimates_by_platform[platform]
        )
    if policy == "criticality":
        return PolicyFactory(
            "criticality",
            priorities=default_criticality_priorities(context),
        )
    return PolicyFactory("dag", applications=context.applications)


def run_cell(context, trace, engine, platform, factory, max_instances, seed):
    simulation = RackSimulation(
        context.models[platform],
        context.applications,
        max_instances=max_instances,
        seed=seed,
        policy=factory,
    )
    series = simulation.run(trace, engine=engine)
    return series, repr(simulation._rng.bit_generator.state)


def run_grid(context, trace, engine, estimates_by_platform, max_instances, seed):
    """The policy x platform grid under one engine."""
    out = {}
    for platform in (BASELINE_NAME, DSCS_NAME):
        for policy in POLICIES:
            factory = make_factory(
                policy, context, estimates_by_platform, platform
            )
            out[(platform, policy)] = run_cell(
                context, trace, engine, platform, factory, max_instances, seed
            )
    return out


def grid_digest(grid) -> str:
    parts = []
    for platform, policy in sorted(grid):
        series, _ = grid[(platform, policy)]
        parts.extend(
            [
                platform,
                policy,
                series.completed_latency_seconds.tobytes(),
                series.completed_times.tobytes(),
                series.queue_depth.tobytes(),
                series.busy_instances.tobytes(),
                series.dropped_requests,
                series.total_requests,
            ]
        )
    return digest(*parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rate-scale",
        type=float,
        default=0.5,
        help="scale factor on the paper's request-rate envelope",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=100,
        help="fleet size per platform (saturates the baseline at x0.5)",
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_policy.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--skip-event",
        action="store_true",
        help="only time the vectorized engine (no oracle, no speedup field)",
    )
    parser.add_argument(
        "--skip-linear",
        action="store_true",
        help="skip the legacy linear-min timing cell",
    )
    args = parser.parse_args(argv)

    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    envelope = tuple(r * args.rate_scale for r in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(context.app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(args.seed))
    estimates_by_platform = {
        platform: service_estimates_for(context, platform)
        for platform in (BASELINE_NAME, DSCS_NAME)
    }
    cells = 2 * len(POLICIES)
    work_items = cells * len(trace)
    print(
        f"fig13-policy study: {len(trace)} requests x {cells} cells "
        f"({', '.join(POLICIES)} on both platforms), "
        f"{args.max_instances} instances"
    )

    (fast_grid, ), fast_s = timed(
        lambda: (
            run_grid(
                context,
                trace,
                "vectorized",
                estimates_by_platform,
                args.max_instances,
                args.seed,
            ),
        )
    )
    fast = engine_record(
        "vectorized index-priority engine", fast_s, work_items
    )
    print(f"vectorized:   {fast_s:8.2f}s  ({work_items / fast_s:9.0f} req/s)")

    oracle = None
    extra_engines = {}
    if not args.skip_event:
        (event_grid, ), event_s = timed(
            lambda: (
                run_grid(
                    context,
                    trace,
                    "event",
                    estimates_by_platform,
                    args.max_instances,
                    args.seed,
                ),
            )
        )
        oracle = engine_record(
            "event-driven oracle (keyed-heap policies)", event_s, work_items
        )
        print(
            f"event-driven: {event_s:8.2f}s  ({work_items / event_s:9.0f} req/s)"
        )

        identical = all(
            event_grid[cell][0].identical_to(fast_grid[cell][0])
            and event_grid[cell][1] == fast_grid[cell][1]
            for cell in event_grid
        )
        if not identical:
            print("ERROR: engines disagree — not recording", file=sys.stderr)
            return 1
        print(
            f"speedup: {round(event_s / fast_s, 2)}x (results bit-identical)"
        )

        if not args.skip_linear:
            platform, policy = LINEAR_CELL
            linear_factory = LinearSJFFactory(estimates_by_platform[platform])
            (linear_series, linear_rng), linear_s = timed(
                lambda: run_cell(
                    context,
                    trace,
                    "event",
                    platform,
                    linear_factory,
                    args.max_instances,
                    args.seed,
                )
            )
            reference_series, reference_rng = event_grid[LINEAR_CELL]
            if not (
                linear_series.identical_to(reference_series)
                and linear_rng == reference_rng
            ):
                print(
                    "ERROR: linear-min cell disagrees — not recording",
                    file=sys.stderr,
                )
                return 1
            extra_engines["linear_min"] = dict(
                engine_record(
                    "event-driven, pre-refactor linear min+remove pop",
                    linear_s,
                    len(trace),
                ),
                cell={"platform": platform, "policy": policy},
            )
            print(
                f"linear-min:   {linear_s:8.2f}s on the "
                f"{platform}/{policy} cell alone "
                f"({len(trace) / linear_s:9.0f} req/s)"
            )

    record = build_record(
        benchmark="fig13_policy_study",
        workload={
            "num_requests": len(trace),
            "cells": cells,
            "policies": list(POLICIES),
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "platforms": [BASELINE_NAME, DSCS_NAME],
        },
        fast=fast,
        oracle=oracle,
        check_hash=grid_digest(fast_grid),
    )
    record["engines"].update(extra_engines)
    record["workload"]["peak_queue"] = {
        f"{platform}/{policy}": int(series.queue_depth.max())
        for (platform, policy), (series, _) in fast_grid.items()
    }
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
