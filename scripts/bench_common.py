"""Shared harness for the ``BENCH_*.json`` performance benchmarks.

Every bench script (``bench_sweep.py``, ``bench_rack.py``) times an
oracle engine against a fast engine on the same workload, verifies the
two agree, and records one uniform JSON schema::

    {
      "benchmark":   "<name>",
      "workload":    {...},                  # script-specific knobs/sizes
      "workers":     <int>,                  # process-pool size of the fast
                                             # engine (absent when serial)
      "machine":     {python, implementation, machine, cpu_count},
      "engines": {
        "fast":   {engine, wall_clock_s, per_second},
        "oracle": {engine, wall_clock_s, per_second}   # absent with --skip
      },
      "speedup":           <oracle / fast>,            # absent with --skip
      "results_identical": true,
      "check_hash":        "sha256:..."               # digest of the fast results
    }

so future PRs can diff trajectories across benchmarks without
per-script parsing.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
import tracemalloc
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple


def machine_info() -> Dict[str, Any]:
    """The fields needed to interpret a wall-clock number later."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def timed(fn: Callable[[], Any]) -> Tuple[Any, float]:
    """Run ``fn`` once, returning (result, wall-clock seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def traced_peak(fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` once under ``tracemalloc``, returning (result, peak bytes).

    Peak bytes is the high-water mark of Python allocations made *during*
    the call (numpy buffers included — they allocate through the traced
    C-API domain).  Tracing slows allocation-heavy code down noticeably,
    so memory runs and timing runs must be separate: never reuse a traced
    wall-clock for an ``engines`` entry.
    """
    tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = fn()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return result, int(peak)


def rss_bytes() -> Optional[int]:
    """Current process max-RSS in bytes (None where unsupported).

    A coarse whole-process ceiling to sanity-check the ``tracemalloc``
    numbers against; ``ru_maxrss`` is kilobytes on Linux, bytes on macOS.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if platform.system() == "Darwin":  # pragma: no cover - macOS units
        return int(peak)
    return int(peak) * 1024


def digest(*parts: Any) -> str:
    """A stable content hash over strings / bytes / reprs.

    Callers pass deterministic projections of their results (dataclass
    reprs, ``ndarray.tobytes()``); the digest lets two BENCH records be
    compared for *what* they computed, not just how fast.
    """
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return f"sha256:{hasher.hexdigest()}"


def series_digest(series_by_platform) -> str:
    """The shared check-hash payload for rack-series benchmarks.

    One definition for every ``BENCH_*.json`` that hashes
    :class:`~repro.cluster.simulation.SimulationSeries` results
    (``bench_rack``, ``bench_faults``, ``bench_autoscale``): the full
    series, the drop *times and reasons*, the availability counters, and
    the per-reason drop breakdown (including ``shed``) — so a future
    engine cannot silently reshuffle loss modes while matching the
    aggregate counts.  ``tests/test_fault_equivalence.py`` and
    ``tests/test_control_equivalence.py`` restate this projection (tests
    do not import from ``scripts/``); keep them in lockstep.
    """
    parts = []
    for name in sorted(series_by_platform):
        series = series_by_platform[name]
        parts.extend(
            [
                name,
                series.completed_latency_seconds.tobytes(),
                series.completed_times.tobytes(),
                series.queue_depth.tobytes(),
                series.busy_instances.tobytes(),
                series.dropped_times.tobytes(),
                series.dropped_reasons.tobytes(),
                series.dropped_requests,
                series.total_requests,
                series.retries,
                series.timeouts,
                series.crash_kills,
                tuple(sorted(series.drop_breakdown().items())),
            ]
        )
    return digest(*parts)


def engine_record(
    engine: str,
    wall_clock_s: float,
    work_items: int,
    peak_mem_bytes: Optional[int] = None,
) -> Dict[str, Any]:
    """One engine's timing entry (``per_second`` = work items / wall).

    ``peak_mem_bytes`` (from :func:`traced_peak`, measured in a separate
    untimed run) records the allocation high-water mark — the axis the
    streaming benchmark sweeps.
    """
    record = {
        "engine": engine,
        "wall_clock_s": round(wall_clock_s, 3),
        "per_second": round(work_items / wall_clock_s, 2) if wall_clock_s else None,
    }
    if peak_mem_bytes is not None:
        record["peak_mem_bytes"] = int(peak_mem_bytes)
    return record


def build_record(
    benchmark: str,
    workload: Dict[str, Any],
    fast: Dict[str, Any],
    oracle: Optional[Dict[str, Any]] = None,
    check_hash: Optional[str] = None,
    workers: Optional[int] = None,
) -> Dict[str, Any]:
    """Assemble the uniform record; speedup only when the oracle ran.

    ``workers`` records the process-pool size behind the fast engine's
    timing (sharded fleet / DSE runs); omit it for serial engines so a
    sharded artifact is distinguishable — and reproducible — from the
    JSON alone.
    """
    record: Dict[str, Any] = {
        "benchmark": benchmark,
        "workload": workload,
        "machine": machine_info(),
        "engines": {"fast": fast},
    }
    if workers is not None:
        record["workers"] = int(workers)
    if oracle is not None:
        record["engines"]["oracle"] = oracle
        record["speedup"] = round(
            oracle["wall_clock_s"] / fast["wall_clock_s"], 2
        )
        record["results_identical"] = True
    if check_hash is not None:
        record["check_hash"] = check_hash
    return record


def write_record(path: Path, record: Dict[str, Any]) -> Path:
    path = Path(path)
    path.write_text(json.dumps(record, indent=2) + "\n")
    return path
