#!/usr/bin/env python
"""Benchmark the fig07 DSE sweep: seed-equivalent scalar path vs fast path.

Runs the same candidate set (the fig07 square-array sweep by default, or
the full >650-point space with ``--full``) through

- the **scalar** engine with cold compiles — the seed's behaviour — and
- the **fast** path — cross-sweep program cache + vectorized packed
  engine, optionally with a process pool (``--workers N``) —

checks the two produce identical results, and writes the shared
``bench_common`` schema to ``BENCH_sweep.json`` so future PRs can track
the perf trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_sweep.py [--full] [--workers N]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from bench_common import (
    build_record,
    digest,
    engine_record,
    timed,
    write_record,
)

from repro.dse.explorer import DSEExplorer
from repro.dse.space import design_space


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--full",
        action="store_true",
        help="sweep the full (>650 point) space instead of the fig07 "
        "square-array subset",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for the fast sweep (default: serial)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_sweep.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--skip-scalar",
        action="store_true",
        help="only time the fast path (no baseline, no speedup field)",
    )
    args = parser.parse_args(argv)

    configs = design_space(square_only=not args.full)
    print(
        f"sweeping {len(configs)} design points "
        f"({'full' if args.full else 'fig07 square-only'} space)"
    )

    fast_explorer = DSEExplorer()
    fast_results, fast_s = timed(
        lambda: fast_explorer.sweep(configs, workers=args.workers)
    )
    fast = engine_record(
        "packed + program cache"
        + (f" + {args.workers} workers" if args.workers else ""),
        fast_s,
        len(configs),
    )
    print(f"fast path:   {fast_s:8.2f}s  ({len(configs) / fast_s:6.1f} configs/s)")

    oracle = None
    if not args.skip_scalar:
        scalar_explorer = DSEExplorer(engine="scalar", cache_programs=False)
        scalar_results, scalar_s = timed(
            lambda: scalar_explorer.sweep(configs)
        )
        oracle = engine_record(
            "scalar interpreter, cold compiles (seed path)", scalar_s, len(configs)
        )
        print(
            f"scalar path: {scalar_s:8.2f}s  "
            f"({len(configs) / scalar_s:6.1f} configs/s)"
        )
        if scalar_results != fast_results:
            print("ERROR: engines disagree — not recording", file=sys.stderr)
            return 1
        print(f"speedup: {round(scalar_s / fast_s, 2)}x (results identical)")

    record = build_record(
        benchmark="fig07_dse_sweep",
        workload={
            "space": "full" if args.full else "square_only",
            "num_configs": len(configs),
        },
        fast=fast,
        oracle=oracle,
        check_hash=digest(fast_results),
    )
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
