#!/usr/bin/env python
"""Benchmark the chaos engines: event-driven vs vectorized under faults.

Runs the paper's full 20-minute bursty trace (both platforms, 200
instances) with a mild fault schedule (instance churn + slowdown
windows) and a retry policy (queue timeouts, bounded retries) through

- the **event-driven chaos oracle** — one callback per arrival, retry
  re-arrival, timeout timer, capacity event, and completion, and
- the **vectorized chaos engine** — pass-A chunking with capacity
  epochs plus the keyed dispatch kernel —

checks the two are bit-identical (series, drop reasons, retry/timeout/
kill counters, RNG end state), and writes the shared ``bench_common``
schema to ``BENCH_faults.json``.  A separate ``overhead`` section times
the fault-free engine with inert fault objects attached, pinning the
zero-fault cost of the availability layer at (near) zero.

Usage::

    PYTHONPATH=src python scripts/bench_faults.py [--rate-scale S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    digest,
    engine_record,
    timed,
    write_record,
)

from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

# Mild, paper-plausible churn: each instance fails about four times an
# hour and repairs in half a minute; transient slowdowns once a minute.
FAULTS = FaultSchedule(
    instance_mtbf_seconds=900.0,
    instance_mttr_seconds=30.0,
    slowdown_rate_per_minute=1.0,
    slowdown_multiplier=2.0,
    slowdown_duration_seconds=5.0,
    seed=404,
)
RETRY = RetryPolicy(timeout_seconds=5.0, max_retries=2)


def run_study(context, trace, engine, max_instances, seed, faults, retry):
    """Run the two-platform chaos study under one engine."""
    series = {}
    rng_states = {}
    for name in (BASELINE_NAME, DSCS_NAME):
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=max_instances,
            seed=seed,
            faults=faults,
            retry=retry,
        )
        series[name] = simulation.run(trace, engine=engine)
        rng_states[name] = repr(simulation._rng.bit_generator.state)
    return series, rng_states


def series_digest(series_by_platform) -> str:
    parts = []
    for name in sorted(series_by_platform):
        series = series_by_platform[name]
        parts.extend(
            [
                name,
                series.completed_latency_seconds.tobytes(),
                series.completed_times.tobytes(),
                series.queue_depth.tobytes(),
                series.busy_instances.tobytes(),
                series.dropped_times.tobytes(),
                series.dropped_reasons.tobytes(),
                series.dropped_requests,
                series.total_requests,
                series.retries,
                series.timeouts,
                series.crash_kills,
            ]
        )
    return digest(*parts)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate-scale", type=float, default=1.0)
    parser.add_argument("--max-instances", type=int, default=200)
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_faults.json",
    )
    parser.add_argument(
        "--skip-event",
        action="store_true",
        help="only time the vectorized chaos engine (no oracle)",
    )
    args = parser.parse_args(argv)

    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    envelope = tuple(r * args.rate_scale for r in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(context.app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(args.seed))
    print(
        f"chaos study: {len(trace)} requests over "
        f"{trace.duration_seconds / 60:.0f} min, both platforms, "
        f"{args.max_instances} instances, instance MTBF "
        f"{FAULTS.instance_mtbf_seconds:.0f}s"
    )

    work_items = 2 * len(trace)
    (fast_series, fast_rng), fast_s = timed(
        lambda: run_study(
            context, trace, "vectorized", args.max_instances, args.seed,
            FAULTS, RETRY,
        )
    )
    fast = engine_record("vectorized chaos engine", fast_s, work_items)
    print(f"vectorized:   {fast_s:8.2f}s  ({work_items / fast_s:9.0f} req/s)")

    oracle = None
    if not args.skip_event:
        (event_series, event_rng), event_s = timed(
            lambda: run_study(
                context, trace, "event", args.max_instances, args.seed,
                FAULTS, RETRY,
            )
        )
        oracle = engine_record(
            "event-driven chaos oracle", event_s, work_items
        )
        print(
            f"event-driven: {event_s:8.2f}s  "
            f"({work_items / event_s:9.0f} req/s)"
        )
        identical = all(
            event_series[name].identical_to(fast_series[name])
            for name in event_series
        ) and event_rng == fast_rng
        if not identical:
            print("ERROR: chaos engines disagree — not recording",
                  file=sys.stderr)
            return 1
        print(
            f"speedup: {round(event_s / fast_s, 2)}x (results bit-identical)"
        )

    # Zero-fault overhead: the same study with inert fault objects must
    # route to (and run at the speed of) the fault-free fast engine.
    (clean_series, _), clean_s = timed(
        lambda: run_study(
            context, trace, "vectorized", args.max_instances, args.seed,
            FaultSchedule(), RetryPolicy(),
        )
    )
    print(
        f"zero-fault:   {clean_s:8.2f}s  "
        f"({work_items / clean_s:9.0f} req/s, inert config)"
    )

    record = build_record(
        benchmark="chaos_at_scale_study",
        workload={
            "num_requests": len(trace),
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "platforms": [BASELINE_NAME, DSCS_NAME],
            "faults": {
                "instance_mtbf_s": FAULTS.instance_mtbf_seconds,
                "instance_mttr_s": FAULTS.instance_mttr_seconds,
                "slowdown_rate_per_minute": FAULTS.slowdown_rate_per_minute,
                "fault_seed": FAULTS.seed,
            },
            "retry": {
                "timeout_s": RETRY.timeout_seconds,
                "max_retries": RETRY.max_retries,
            },
            "telemetry": {
                name: {
                    "dropped": series.dropped_requests,
                    "drop_breakdown": series.drop_breakdown(),
                    "retries": series.retries,
                    "timeouts": series.timeouts,
                    "crash_kills": series.crash_kills,
                    "availability": round(series.availability, 6),
                }
                for name, series in fast_series.items()
            },
        },
        fast=fast,
        oracle=oracle,
        check_hash=series_digest(fast_series),
    )
    record["zero_fault_overhead"] = {
        "wall_clock_s": round(clean_s, 3),
        "per_second": round(work_items / clean_s, 2),
    }
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
