#!/usr/bin/env python
"""Benchmark the Fig. 13 at-scale study: event-driven vs vectorized rack engine.

Runs the paper's full 20-minute bursty trace (both platforms, 200
instances, queue depth 10,000) through

- the **event-driven** engine — one Python callback per arrival,
  completion, and sample tick (the reference oracle), and
- the **vectorized** engine — the numpy busy-period FCFS kernel in
  ``repro.cluster.fast_engine`` —

checks the two produce bit-identical series (drops, latencies, queue
depth, busy instances, RNG end state), and writes the shared
``bench_common`` schema to ``BENCH_rack.json`` so future PRs can track
the trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_rack.py [--rate-scale S]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import numpy as np

from bench_common import (
    build_record,
    engine_record,
    series_digest,
    timed,
    write_record,
)

from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context


def run_study(context, trace, engine, max_instances, seed):
    """Run the two-platform Fig. 13 study under one engine.

    Returns the per-platform series and per-platform RNG end states (the
    engines must consume the RNG identically, not just produce the same
    series).
    """
    series = {}
    rng_states = {}
    for name in (BASELINE_NAME, DSCS_NAME):
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=max_instances,
            seed=seed,
        )
        series[name] = simulation.run(trace, engine=engine)
        rng_states[name] = repr(simulation._rng.bit_generator.state)
    return series, rng_states


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--rate-scale",
        type=float,
        default=1.0,
        help="scale factor on the paper's request-rate envelope",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        default=200,
        help="fleet size per platform (paper: 200)",
    )
    parser.add_argument("--seed", type=int, default=13)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_rack.json",
        help="where to write the JSON record",
    )
    parser.add_argument(
        "--skip-event",
        action="store_true",
        help="only time the vectorized engine (no oracle, no speedup field)",
    )
    args = parser.parse_args(argv)

    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    envelope = tuple(r * args.rate_scale for r in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(context.app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(args.seed))
    print(
        f"fig13 at-scale study: {len(trace)} requests over "
        f"{trace.duration_seconds / 60:.0f} min, both platforms, "
        f"{args.max_instances} instances"
    )

    work_items = 2 * len(trace)  # requests x platforms
    (fast_series, fast_rng), fast_s = timed(
        lambda: run_study(
            context, trace, "vectorized", args.max_instances, args.seed
        )
    )
    fast = engine_record("numpy busy-period FCFS kernel", fast_s, work_items)
    print(f"vectorized:   {fast_s:8.2f}s  ({work_items / fast_s:9.0f} req/s)")

    oracle = None
    if not args.skip_event:
        (event_series, event_rng), event_s = timed(
            lambda: run_study(
                context, trace, "event", args.max_instances, args.seed
            )
        )
        oracle = engine_record(
            "event-driven oracle (seed path)", event_s, work_items
        )
        print(f"event-driven: {event_s:8.2f}s  ({work_items / event_s:9.0f} req/s)")

        identical = all(
            event_series[name].identical_to(fast_series[name])
            for name in event_series
        ) and event_rng == fast_rng
        if not identical:
            print("ERROR: engines disagree — not recording", file=sys.stderr)
            return 1
        print(
            f"speedup: {round(event_s / fast_s, 2)}x (results bit-identical)"
        )

    record = build_record(
        benchmark="fig13_at_scale_study",
        workload={
            "num_requests": len(trace),
            "rate_scale": args.rate_scale,
            "max_instances": args.max_instances,
            "platforms": [BASELINE_NAME, DSCS_NAME],
        },
        fast=fast,
        oracle=oracle,
        check_hash=series_digest(fast_series),
    )
    if oracle is not None:
        record["workload"]["dropped_requests"] = {
            name: series.dropped_requests
            for name, series in fast_series.items()
        }
    write_record(args.output, record)
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
