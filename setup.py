"""Setuptools entry point.

Kept alongside pyproject.toml so the package installs editable in offline
environments whose setuptools predates PEP 660 wheel-less editable builds.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DSCS-Serverless: in-storage domain-specific acceleration for "
        "serverless computing (ASPLOS 2024) — full-system reproduction"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # 3.10+: dataclasses.field(kw_only=True) (accelerator.simulator).
    python_requires=">=3.10",
    install_requires=["numpy"],
)
