"""Storage classes, scalability, and utilization claims (paper §5.2)."""

import numpy as np
import pytest

from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore, StorageClass
from repro.units import MB


def rack(num_plain, num_dscs):
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(num_plain)]
    nodes += [StorageNode(drives=[SSDDrive(), DSCSDrive()]) for _ in range(num_dscs)]
    return nodes


class TestStorageClasses:
    def test_explicit_storage_class_respected(self):
        store = ObjectStore(rack(3, 1))
        meta = store.put("cold-archive", 4 * MB, storage_class=StorageClass.ARCHIVE)
        assert meta.storage_class is StorageClass.ARCHIVE

    def test_dscs_class_only_for_acceleratable(self):
        store = ObjectStore(rack(3, 1))
        assert store.put("a", MB).storage_class is StorageClass.HOT
        assert (
            store.put("b", MB, acceleratable=True).storage_class
            is StorageClass.DSCS
        )


class TestScalability:
    def test_dscs_nodes_also_serve_conventional_objects(self):
        """DSCS-capable nodes function as conventional storage (paper §5.2)."""
        store = ObjectStore(rack(0, 3))
        meta = store.put("plain", 4 * MB)  # not acceleratable
        assert len(meta.replicas) == 3
        assert store.remote_read_seconds("plain", np.random.default_rng(0)) > 0

    def test_horizontal_scaling_adds_capacity(self):
        small = ObjectStore(rack(1, 1))
        large = ObjectStore(rack(4, 4))
        for i in range(6):
            large.put(f"obj-{i}", 64 * MB, acceleratable=True)
        # Replicas spread: no single drive hoards everything.
        used = [
            d.used_bytes for n in large.nodes for d in n.drives if d.used_bytes
        ]
        assert len(used) >= 4
        assert small is not large  # capacity check below
        small.put("one", 64 * MB)

    def test_requests_spread_across_dscs_drives(self):
        """Independent requests can land on different DSCS-Drives (§5.2)."""
        store = ObjectStore(rack(0, 4))
        drives = set()
        for i in range(8):
            meta = store.put(f"req-{i}", 2 * MB, acceleratable=True)
            drives.add(meta.accelerated_replica().drive.drive_id)
        assert len(drives) >= 2

    def test_bypass_for_normal_operations(self):
        """The accelerator is optional: normal reads never touch the DSA."""
        store = ObjectStore(rack(0, 1))
        meta = store.put("obj", MB)
        drive = meta.replicas[0].drive
        before = drive.busy if isinstance(drive, DSCSDrive) else False
        store.remote_read_seconds("obj", np.random.default_rng(0))
        after = drive.busy if isinstance(drive, DSCSDrive) else False
        assert before == after == False  # noqa: E712


class TestReplicationInvariants:
    def test_replicas_on_distinct_nodes(self):
        store = ObjectStore(rack(4, 1))
        meta = store.put("obj", MB, acceleratable=True)
        node_ids = [r.node.node_id for r in meta.replicas]
        assert len(node_ids) == len(set(node_ids))

    def test_capacity_conserved_across_puts_and_deletes(self):
        nodes = rack(2, 1)
        store = ObjectStore(nodes)
        keys = [f"k{i}" for i in range(5)]
        for key in keys:
            store.put(key, 3 * MB)
        for key in keys:
            store.delete(key)
        assert all(d.used_bytes == 0 for n in nodes for d in n.drives)
