"""The experiment registry: schema resolution, context cache, provenance,
result round-trips, and legacy-shim equivalence."""

import numpy as np
import pytest

from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments import fig03, fig09, fig14, fig15, report
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    build_context,
    fabric_fingerprint,
    geomean_speedup,
    p95_latency_table,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    Param,
    load_all,
)
from repro.experiments.results import ExperimentResult
from repro.platforms.registry import dscs_dsa


def _spec(**kwargs):
    defaults = dict(
        name="toy",
        description="toy experiment",
        runner=lambda ctx, samples, seed: [{"samples": samples, "seed": seed}],
        params=(
            Param("samples", "int", 100),
            Param("seed", "int", 7),
        ),
        profiles={"fast": {"samples": 10}, "paper": {"samples": 1000}},
    )
    defaults.update(kwargs)
    return ExperimentSpec(**defaults)


class TestParam:
    def test_sequence_kinds_parse_comma_separated(self):
        assert Param("xs", "ints", ()).parse("1, 2,3") == (1, 2, 3)
        assert Param("xs", "floats", ()).parse("0.5,1.0") == (0.5, 1.0)
        assert Param("xs", "strs", ()).parse("a,b") == ("a", "b")

    def test_coerce_normalises_lists_to_tuples(self):
        assert Param("xs", "ints", ()).coerce([1, 2]) == (1, 2)
        assert Param("x", "float", 0.0).coerce(3) == 3.0

    def test_object_params_cannot_be_cli(self):
        with pytest.raises(ConfigurationError):
            Param("ctx", "object", None, cli=True)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            Param("x", "complex", 0)

    def test_bool_coerce_rejects_non_bool(self):
        with pytest.raises(ConfigurationError):
            Param("flag", "bool", False).coerce(1)


class TestSpecResolution:
    def test_defaults_then_profile_then_overrides(self):
        spec = _spec()
        assert spec.resolve() == {"samples": 100, "seed": 7}
        assert spec.resolve("fast") == {"samples": 10, "seed": 7}
        assert spec.resolve("fast", {"samples": 25}) == {"samples": 25, "seed": 7}

    def test_unknown_profile_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec().resolve("ludicrous")

    def test_unknown_override_rejected(self):
        with pytest.raises(ConfigurationError):
            _spec().resolve(None, {"nope": 1})

    def test_profile_with_unknown_param_rejected_at_construction(self):
        with pytest.raises(ConfigurationError):
            _spec(profiles={"fast": {"nope": 1}})

    def test_missing_profiles_default_to_empty(self):
        spec = _spec(profiles={})
        assert spec.resolve("fast") == spec.resolve("paper") == spec.resolve()


class TestRegistry:
    def test_duplicate_registration_rejected(self):
        registry = ExperimentRegistry()
        registry.register(_spec())
        with pytest.raises(ConfigurationError):
            registry.register(_spec())

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ConfigurationError):
            ExperimentRegistry().get("fig99")

    def test_run_wraps_rows_params_provenance(self):
        registry = ExperimentRegistry()
        registry.register(_spec())
        result = registry.run("toy", profile="fast", seed=3)
        assert result.experiment == "toy"
        assert result.params == {"samples": 10, "seed": 3}
        assert result.rows == [{"samples": 10, "seed": 3}]
        assert result.provenance["profile"] == "fast"
        assert result.provenance["seed"] == 3
        assert result.provenance["wall_time_s"] >= 0
        assert result.provenance["git"]

    def test_object_params_are_not_recorded(self):
        registry = ExperimentRegistry()
        registry.register(
            _spec(
                runner=lambda ctx, samples, seed, context=None: [{"ok": True}],
                params=(
                    Param("samples", "int", 100),
                    Param("seed", "int", 7),
                    Param("context", "object", None, cli=False),
                ),
            )
        )
        result = registry.run("toy", context=object())
        assert "context" not in result.params

    def test_load_all_registers_every_harness(self):
        load_all()
        names = set(REGISTRY.names())
        figures = {
            "fig03", "fig04", "fig07", "fig08", "fig09", "fig10", "fig11",
            "fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
        }
        racks = {"fig13-sweep", "fig15-rack", "fig16-rack", "fig17-rack"}
        assert figures | racks | {"table1", "table2", "dse"} <= names
        for spec in REGISTRY.specs():
            assert {"fast", "paper"} <= set(spec.profiles)


class TestSuiteContextCache:
    def test_same_platforms_return_same_context(self):
        registry = ExperimentRegistry()
        first = registry.context_cache.get([BASELINE_NAME, DSCS_NAME])
        again = registry.context_cache.get([BASELINE_NAME, DSCS_NAME])
        assert first is again

    def test_fabric_variants_share_applications(self):
        registry = ExperimentRegistry()
        base = registry.context_cache.get([BASELINE_NAME, DSCS_NAME])
        fabric = StorageFabric().with_tail_ratio(3.0)
        variant = registry.context_cache.get([BASELINE_NAME, DSCS_NAME], fabric)
        assert variant is not base
        assert variant.applications is base.applications
        # Platform objects (compiled programs) are shared; fabric swapped.
        assert (
            variant.models[DSCS_NAME].platform
            is base.models[DSCS_NAME].platform
        )
        assert variant.models[DSCS_NAME].fabric is fabric
        # Equal fabrics fingerprint equal -> cache hit.
        again = registry.context_cache.get(
            [BASELINE_NAME, DSCS_NAME], StorageFabric().with_tail_ratio(3.0)
        )
        assert again is variant

    def test_fingerprint_value_based(self):
        assert fabric_fingerprint(StorageFabric()) == fabric_fingerprint(
            StorageFabric()
        )
        assert fabric_fingerprint(
            StorageFabric().with_tail_ratio(4.0)
        ) != fabric_fingerprint(StorageFabric())


class TestWithFabric:
    def test_model_with_fabric_shares_platform(self):
        fabric = StorageFabric().with_tail_ratio(3.0)
        model = ServerlessExecutionModel(platform=dscs_dsa())
        swapped = model.with_fabric(fabric)
        assert swapped is not model
        assert swapped.platform is model.platform
        assert swapped.fabric is fabric
        assert model.fabric is not fabric  # original untouched

    def test_swapped_model_equals_fresh_construction(self):
        fabric = StorageFabric().with_tail_ratio(3.0)
        context = build_context([BASELINE_NAME, DSCS_NAME])
        swapped = context.models[DSCS_NAME].with_fabric(fabric)
        fresh = build_context([BASELINE_NAME, DSCS_NAME], fabric=fabric).models[
            DSCS_NAME
        ]
        app = context.applications["Remote Sensing"]
        got = swapped.sample_latencies(app, np.random.default_rng(0), 64)
        want = fresh.sample_latencies(app, np.random.default_rng(0), 64)
        np.testing.assert_array_equal(got, want)


class TestFig15FabricSwap:
    def test_tail_sweep_equivalent_to_per_ratio_rebuild(self):
        """The with_fabric rewrite reproduces the rebuild-per-ratio sweep."""
        ratios = (2.1, 3.0)
        percentiles = (50.0, 99.0)
        count, seed = 200, 7
        study = fig15.run(
            tail_ratios=ratios, percentiles=percentiles, count=count, seed=seed
        )
        for ratio in ratios:
            fabric = StorageFabric().with_tail_ratio(ratio)
            context = build_context(
                platform_names=[BASELINE_NAME, DSCS_NAME], fabric=fabric
            )
            for percentile in percentiles:
                latency = p95_latency_table(
                    context, count=count, percentile=percentile, seed=seed
                )
                per_app = {
                    app: latency[BASELINE_NAME][app] / latency[DSCS_NAME][app]
                    for app in latency[BASELINE_NAME]
                }
                assert study.at(ratio, percentile) == geomean_speedup(per_app)


class TestLegacyShims:
    def test_fig03_shim_matches_registry(self):
        load_all()
        via_shim = fig03.run(samples=200, seed=11)
        via_registry = REGISTRY.run("fig03", samples=200, seed=11).study
        assert set(via_shim) == set(via_registry)
        for name in via_shim:
            assert via_shim[name].median == via_registry[name].median
            assert via_shim[name].p99 == via_registry[name].p99

    def test_fig09_shim_matches_registry(self):
        load_all()
        context = REGISTRY.context_cache.get()
        via_shim = fig09.run(count=100, context=context)
        via_registry = REGISTRY.run("fig09", samples=100, context=context).study
        assert via_shim == via_registry

    def test_fig14_shim_matches_registry(self):
        load_all()
        context = REGISTRY.context_cache.get([BASELINE_NAME, DSCS_NAME])
        via_shim = fig14.run(batches=(1, 4), count=50, context=context)
        via_registry = REGISTRY.run(
            "fig14", batches=(1, 4), samples=50, context=context
        ).study
        assert via_shim == via_registry


class TestResultSerialisation:
    @pytest.fixture()
    def result(self):
        load_all()
        return REGISTRY.run("fig03", profile="fast", samples=128)

    def test_json_round_trip_preserves_document(self, result, tmp_path):
        path = result.write_json(tmp_path / "fig03.json")
        table = report.read_json(path)
        assert isinstance(table, report.ResultTable)
        assert table == result.rows
        assert table.experiment == "fig03"
        assert table.provenance == result.provenance
        assert table.params == {"samples": 128, "seed": 11}
        assert ExperimentResult.read_json(path).document() == result.document()

    def test_csv_round_trip_is_lossless(self, result, tmp_path):
        path = result.write_csv(tmp_path / "fig03.csv")
        assert ExperimentResult.read_csv(path).document() == result.document()

    def test_csv_round_trips_mixed_kinds(self, tmp_path):
        document = {
            "experiment": "toy",
            "params": {"xs": [1, 2]},
            "provenance": {"git": "abc", "wall_time_s": 0.5},
            "rows": [
                {"name": "a,b", "n": 1, "x": 0.125, "ok": True, "tags": [1, 2]},
                {"name": 'quote"d', "n": 2, "x": 2.5, "ok": False, "tags": None},
            ],
        }
        path = report.write_result_csv(document, tmp_path / "toy.csv")
        assert report.read_result_csv(path) == document

    def test_plain_json_still_reads_as_list(self, tmp_path):
        rows = [{"a": 1}, {"a": 2}]
        path = report.write_json(rows, tmp_path / "rows.json")
        assert report.read_json(path) == rows
