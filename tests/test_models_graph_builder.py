"""Graph validation, stats aggregation, batching, and the builder."""

import pytest

from repro.errors import ShapeError
from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.ops import Activation, ActivationKind, GeMM
from repro.models.tensor import DType, TensorSpec


def small_chain():
    builder = GraphBuilder("small", TensorSpec("x", (4, 16), DType.INT8))
    builder.linear(32).relu().linear(8).softmax()
    return builder.build()


class TestGraph:
    def test_chain_shapes_validated(self):
        gemm = GeMM("g", TensorSpec("x", (4, 16)), n=32)
        bad_next = Activation("a", TensorSpec("y", (4, 31)))
        with pytest.raises(ShapeError):
            Graph("bad", [gemm, bad_next])

    def test_dtype_mismatch_rejected(self):
        gemm = GeMM("g", TensorSpec("x", (4, 16), DType.INT8), n=32)
        bad = Activation("a", TensorSpec("y", (4, 32), DType.FP32))
        with pytest.raises(ShapeError):
            Graph("bad", [gemm, bad])

    def test_duplicate_names_rejected(self):
        op = GeMM("g", TensorSpec("x", (4, 16)), n=16)
        with pytest.raises(ShapeError):
            Graph("bad", [op, op])

    def test_empty_graph_rejected(self):
        with pytest.raises(ShapeError):
            Graph("empty", [])

    def test_io_specs(self):
        graph = small_chain()
        assert graph.input.shape == (4, 16)
        assert graph.output.shape == (4, 8)

    def test_stats_totals(self):
        graph = small_chain()
        stats = graph.stats()
        assert stats.num_ops == 4
        assert stats.num_matrix_ops == 2
        assert stats.num_vector_ops == 2
        assert stats.total_macs == 4 * 16 * 32 + 4 * 32 * 8
        assert stats.weight_bytes == 16 * 32 + 32 * 8

    def test_stats_peak_activation_at_least_io(self):
        stats = small_chain().stats()
        assert stats.peak_activation_bytes >= stats.input_bytes

    def test_with_batch_scales_macs_linearly(self):
        graph = small_chain()
        batched = graph.with_batch(4)
        assert batched.stats().total_macs == 4 * graph.stats().total_macs

    def test_with_batch_keeps_weights(self):
        graph = small_chain()
        assert graph.with_batch(8).stats().weight_bytes == graph.stats().weight_bytes

    def test_with_batch_one_is_identity(self):
        graph = small_chain()
        assert graph.with_batch(1) is graph

    def test_with_batch_rejects_non_positive(self):
        with pytest.raises(ShapeError):
            small_chain().with_batch(0)


class TestBuilder:
    def test_conv_bn_relu_block(self):
        builder = GraphBuilder("cnn", TensorSpec("img", (1, 3, 32, 32)))
        builder.conv_bn_relu(8, kernel=3)
        graph = builder.build()
        assert len(graph) == 3
        assert graph.output.shape == (1, 8, 32, 32)

    def test_bottleneck_produces_out_channels(self):
        builder = GraphBuilder("cnn", TensorSpec("img", (1, 64, 16, 16)))
        builder.bottleneck(32, 128, stride=2)
        assert builder.current.shape == (1, 128, 8, 8)

    def test_attention_block_preserves_shape(self):
        builder = GraphBuilder("tx", TensorSpec("x", (16, 64)))
        builder.attention_block(seq=16, dim=64, heads=4)
        assert builder.current.shape == (16, 64)

    def test_attention_block_validates_input_shape(self):
        builder = GraphBuilder("tx", TensorSpec("x", (16, 64)))
        with pytest.raises(ShapeError):
            builder.attention_block(seq=8, dim=64, heads=4)

    def test_attention_rejects_indivisible_heads(self):
        builder = GraphBuilder("tx", TensorSpec("x", (16, 64)))
        with pytest.raises(ShapeError):
            builder.attention_block(seq=16, dim=64, heads=5)

    def test_transformer_layer_shape_stable(self):
        builder = GraphBuilder("tx", TensorSpec("x", (16, 64)))
        builder.transformer_layer(seq=16, dim=64, heads=4)
        assert builder.current.shape == (16, 64)

    def test_unique_names_generated(self):
        builder = GraphBuilder("g", TensorSpec("x", (4, 4)))
        builder.relu().relu().relu()
        graph = builder.build()
        names = [op.name for op in graph]
        assert len(set(names)) == 3

    def test_ffn_block_weights(self):
        builder = GraphBuilder("tx", TensorSpec("x", (8, 32), DType.INT8))
        builder.ffn_block(dim=32, hidden=128)
        stats = builder.build().stats()
        # up and down projections dominate.
        assert stats.weight_bytes >= 32 * 128 + 128 * 32
