"""Program disassembler and per-op statistics."""

import pytest

from repro.accelerator.config import paper_design_point
from repro.accelerator.disassembler import (
    disassemble,
    format_instruction,
    hottest_ops,
    per_op_stats,
)
from repro.accelerator.isa import GemmTile, LoadTile, StoreTile, Sync, VectorOp
from repro.compiler.codegen import generate
from repro.models.builder import GraphBuilder
from repro.models.tensor import DType, TensorSpec
from repro.models.zoo import resnet50


def program():
    builder = GraphBuilder("toy", TensorSpec("x", (32, 64), DType.INT8))
    builder.linear(48, name="fc1").relu().linear(8, name="fc2").softmax()
    return generate(builder.build(), paper_design_point())


def test_format_gemm():
    text = format_instruction(GemmTile("conv1", m=16, n=8, k=4))
    assert "GEMM" in text and "conv1" in text and "m=16" in text


def test_format_load_store_vop_sync():
    assert "LOAD" in format_instruction(LoadTile("op", num_bytes=128))
    assert "STORE" in format_instruction(StoreTile("op", num_bytes=64))
    assert "fused" in format_instruction(VectorOp("op", elements=4, fused=True))
    assert format_instruction(Sync("op")) == "SYNC"


def test_disassemble_full():
    text = disassemble(program())
    assert text.splitlines()[0].startswith("; program toy")
    assert "HALT" in text
    assert "fc1" in text and "fc2" in text


def test_disassemble_truncated():
    text = disassemble(program(), limit=3)
    assert "more instructions" in text
    assert len(text.splitlines()) == 5  # header + 3 + ellipsis


def test_per_op_stats_macs_match_graph():
    prog = program()
    stats = per_op_stats(prog)
    assert stats["fc1"].macs == 32 * 64 * 48
    assert stats["fc2"].macs == 32 * 48 * 8


def test_per_op_stats_traffic_positive():
    stats = per_op_stats(program())
    assert stats["fc1"].load_bytes > 0
    assert stats["fc1"].arithmetic_intensity > 0


def test_vector_ops_attributed():
    stats = per_op_stats(program())
    vector_ops = [s for s in stats.values() if s.vector_element_ops > 0]
    assert vector_ops  # relu/softmax present


def test_hottest_ops_on_resnet():
    prog = generate(resnet50(), paper_design_point())
    top = hottest_ops(prog, top=5)
    assert len(top) == 5
    macs = [s.macs for s in top]
    assert macs == sorted(macs, reverse=True)
    assert macs[0] > 0
