"""MPU/VPU timing models and the ISA."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    LoadTile,
    MemorySpace,
    Program,
    StoreTile,
    VectorOp,
)
from repro.accelerator.mpu import MatrixProcessingUnit
from repro.accelerator.vpu import VectorProcessingUnit
from repro.errors import CompilationError, SimulationError


def config(rows=128, cols=128):
    return DSAConfig(pe_rows=rows, pe_cols=cols)


class TestMPU:
    def test_tile_cycles_components(self):
        mpu = MatrixProcessingUnit(config())
        timing = mpu.tile_timing(GemmTile("op", m=64, n=128, k=128))
        assert timing.load_cycles == 128
        assert timing.stream_cycles == 64
        assert timing.drain_cycles == 256
        assert timing.total == 448

    def test_partial_tile_loads_fewer_rows(self):
        mpu = MatrixProcessingUnit(config())
        timing = mpu.tile_timing(GemmTile("op", m=4, n=16, k=32))
        assert timing.load_cycles == 32

    def test_drain_paid_on_physical_geometry(self):
        small = MatrixProcessingUnit(config(32, 32))
        large = MatrixProcessingUnit(config(1024, 1024))
        tile = GemmTile("op", m=8, n=16, k=16)
        # The large array's pipeline depth dominates tiny tiles.
        assert large.tile_cycles(tile) > small.tile_cycles(tile)

    def test_oversized_tile_rejected(self):
        mpu = MatrixProcessingUnit(config(64, 64))
        with pytest.raises(SimulationError):
            mpu.tile_cycles(GemmTile("op", m=1, n=65, k=1))

    def test_utilization_bounded(self):
        mpu = MatrixProcessingUnit(config())
        util = mpu.utilization(GemmTile("op", m=1024, n=128, k=128))
        assert 0 < util <= 1.0

    def test_utilization_improves_with_m(self):
        mpu = MatrixProcessingUnit(config())
        low = mpu.utilization(GemmTile("op", m=1, n=128, k=128))
        high = mpu.utilization(GemmTile("op", m=4096, n=128, k=128))
        assert high > low


class TestVPU:
    def test_cycles_scale_with_elements(self):
        vpu = VectorProcessingUnit(config())
        short = vpu.op_cycles(VectorOp("v", elements=128, cost_per_element=1))
        long = vpu.op_cycles(VectorOp("v", elements=128 * 100, cost_per_element=1))
        assert long > short

    def test_lane_parallelism(self):
        narrow = VectorProcessingUnit(DSAConfig(vector_lanes=32))
        wide = VectorProcessingUnit(DSAConfig(vector_lanes=256))
        op = VectorOp("v", elements=100_000, cost_per_element=1)
        assert narrow.op_cycles(op) > wide.op_cycles(op)

    def test_cost_per_element_multiplies(self):
        vpu = VectorProcessingUnit(config())
        cheap = vpu.op_cycles(VectorOp("v", elements=10_000, cost_per_element=1))
        pricey = vpu.op_cycles(VectorOp("v", elements=10_000, cost_per_element=8))
        assert pricey > 4 * cheap / 2

    def test_empty_op_costs_only_overhead(self):
        vpu = VectorProcessingUnit(config())
        assert vpu.op_cycles(VectorOp("v", elements=0)) > 0


class TestISA:
    def test_program_validate_requires_halt(self):
        program = Program("m", [GemmTile("g", m=1, n=1, k=1)])
        with pytest.raises(CompilationError):
            program.validate()

    def test_program_validate_rejects_mid_halt(self):
        program = Program("m", [Halt("h"), GemmTile("g", m=1, n=1, k=1)])
        with pytest.raises(CompilationError):
            program.validate()

    def test_program_totals(self):
        program = Program(
            "m",
            [
                LoadTile("g", num_bytes=100),
                GemmTile("g", m=2, n=3, k=4),
                VectorOp("v", elements=10, cost_per_element=2),
                StoreTile("g", num_bytes=50),
                Halt("h"),
            ],
        )
        macs, vec, dma = program.totals()
        assert macs == 24
        assert vec == 20
        assert dma == 150

    def test_load_tile_rejects_dram_destination(self):
        with pytest.raises(CompilationError):
            LoadTile("g", num_bytes=8, destination=MemorySpace.DRAM)

    def test_gemm_tile_rejects_zero_dims(self):
        with pytest.raises(CompilationError):
            GemmTile("g", m=0, n=1, k=1)

    def test_vector_op_rejects_zero_cost(self):
        with pytest.raises(CompilationError):
            VectorOp("v", elements=1, cost_per_element=0)


@settings(max_examples=50, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=4096),
    n=st.integers(min_value=1, max_value=128),
    k=st.integers(min_value=1, max_value=128),
)
def test_mpu_cycles_always_cover_streaming(m, n, k):
    mpu = MatrixProcessingUnit(config())
    cycles = mpu.tile_cycles(GemmTile("op", m=m, n=n, k=k))
    assert cycles >= m  # at least one cycle per activation row
    assert cycles >= k  # at least one cycle per weight row
