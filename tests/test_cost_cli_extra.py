"""Additional CLI command coverage (slower commands, small sample counts)."""

import pytest

from repro import cli
from repro.experiments import report


@pytest.mark.slow
def test_fig09_cli_runs_with_tiny_samples(tmp_path, capsys):
    target = tmp_path / "fig09.json"
    assert cli.main(["fig09", "--samples", "50", "--json", str(target)]) == 0
    rows = report.read_json(target)
    platforms = {row["platform"] for row in rows}
    assert "DSCS-Serverless" in platforms
    assert all("geomean" in row for row in rows)


@pytest.mark.slow
def test_fig12_cli_runs(tmp_path):
    target = tmp_path / "fig12.csv"
    assert cli.main(["fig12", "--samples", "50", "--csv", str(target)]) == 0
    lines = target.read_text().strip().splitlines()
    assert lines[0] == "platform,throughput_rps,total_cost_usd,normalized"
    assert len(lines) == 8  # header + 7 platforms


@pytest.mark.slow
def test_fig17_cli_runs(capsys):
    assert cli.main(["fig17", "--samples", "50"]) == 0
    out = capsys.readouterr().out
    assert "warm" in out and "cold" in out


def test_cli_parser_rejects_missing_command():
    with pytest.raises(SystemExit):
        cli.build_parser().parse_args([])


def test_cli_parser_accepts_dse_full_flag():
    args = cli.build_parser().parse_args(["dse", "--full"])
    assert args.full is True
    args = cli.build_parser().parse_args(["dse"])
    assert args.full is False
