"""Congestion-multiplier semantics: the tail model behind Figs. 3 and 15."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.latency import NetworkModel
from repro.network.rpc import RPCStack
from repro.units import MB


def rng():
    return np.random.default_rng(11)


def test_multiplier_has_unit_median():
    net = NetworkModel()
    multipliers = net.sample_multipliers(rng(), 100_000)
    assert np.median(multipliers) == pytest.approx(1.0, rel=0.02)


def test_multiplier_p99_matches_tail_ratio():
    net = NetworkModel()
    multipliers = net.sample_multipliers(rng(), 300_000)
    assert np.percentile(multipliers, 99) == pytest.approx(2.1, rel=0.05)


def test_tail_applies_at_every_payload_size():
    """Fig. 3's observation: the p99/median gap holds for big objects too."""
    net = NetworkModel()
    for payload in (64 * 1024, 1 * MB, 16 * MB):
        samples = net.sample_latency_many(payload, rng(), 50_000)
        ratio = np.percentile(samples, 99) / np.median(samples)
        assert ratio == pytest.approx(2.1, rel=0.1), payload


def test_shared_multiplier_amplifies_sums():
    """Correlated accesses make a request's total tail-heavy; independent
    draws would concentrate (CLT) — the mechanism behind Fig. 15."""
    stack = RPCStack()
    generator = rng()
    shared = stack.network.sample_multipliers(generator, 50_000)
    correlated_total = sum(
        np.asarray(stack.request_with_multiplier(1 * MB, shared))
        for _ in range(6)
    )
    independent_total = sum(
        stack.sample_request_many(1 * MB, generator, 50_000) for _ in range(6)
    )
    corr_ratio = np.percentile(correlated_total, 99) / np.median(correlated_total)
    ind_ratio = np.percentile(independent_total, 99) / np.median(
        independent_total
    )
    assert corr_ratio > ind_ratio


def test_multiplier_request_is_deterministic_given_multiplier():
    stack = RPCStack()
    a = stack.request_with_multiplier(1 * MB, 1.5)
    b = stack.request_with_multiplier(1 * MB, 1.5)
    assert a == b


@settings(max_examples=30, deadline=None)
@given(multiplier=st.floats(min_value=0.1, max_value=20.0))
def test_request_latency_positive_for_any_multiplier(multiplier):
    stack = RPCStack()
    assert stack.request_with_multiplier(1 * MB, multiplier) > 0


@settings(max_examples=30, deadline=None)
@given(
    payload=st.integers(min_value=0, max_value=20 * 1024 * 1024),
    multiplier=st.floats(min_value=0.5, max_value=5.0),
)
def test_request_monotone_in_payload_under_fixed_weather(payload, multiplier):
    stack = RPCStack()
    smaller = stack.request_with_multiplier(payload, multiplier)
    larger = stack.request_with_multiplier(payload + 1024, multiplier)
    assert larger > smaller
