"""Public-API surface checks: everything advertised imports and works."""

import importlib

import pytest

import repro


def test_version_string():
    assert repro.__version__ == "1.0.0"


def test_all_exports_resolve():
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert getattr(repro, name) is not None, name


@pytest.mark.parametrize(
    "module",
    [
        "repro.accelerator",
        "repro.analysis",
        "repro.cli",
        "repro.cluster",
        "repro.compiler",
        "repro.core",
        "repro.dse",
        "repro.experiments",
        "repro.models",
        "repro.models.zoo",
        "repro.network",
        "repro.platforms",
        "repro.serverless",
        "repro.sim",
        "repro.storage",
    ],
)
def test_subpackages_import(module):
    imported = importlib.import_module(module)
    assert imported.__doc__, f"{module} is missing a module docstring"


@pytest.mark.parametrize(
    "module",
    [
        "repro.accelerator",
        "repro.cluster",
        "repro.core",
        "repro.models",
        "repro.network",
        "repro.platforms",
        "repro.serverless",
        "repro.sim",
        "repro.storage",
    ],
)
def test_subpackage_all_exports_resolve(module):
    imported = importlib.import_module(module)
    for name in getattr(imported, "__all__", []):
        assert getattr(imported, name) is not None, f"{module}.{name}"


def test_quickstart_docstring_flow():
    """The README/module-docstring quickstart actually runs."""
    import numpy as np

    app = repro.benchmark_suite()["Remote Sensing"]
    dscs = repro.ServerlessExecutionModel(platform=repro.dscs_dsa())
    cpu = repro.ServerlessExecutionModel(platform=repro.baseline_cpu())
    rng = np.random.default_rng(0)
    ratio = (
        cpu.invoke(app, rng).latency_seconds
        / dscs.invoke(app, rng).latency_seconds
    )
    assert ratio > 1.5


def test_paper_design_point_compiles_all_public_models():
    from repro.models import zoo

    config = repro.paper_design_point()
    model_builders = [
        zoo.resnet50,
        lambda: zoo.vit(dim=384, layers=4, heads=6),
        lambda: zoo.gpt2_decoder(seq=32, dim=256, layers=2, heads=4, vocab=1000),
        lambda: zoo.bert_encoder(seq=32, dim=256, layers=2, heads=4, vocab=1000),
        lambda: zoo.unet(image_size=64, depth=2),
        lambda: zoo.dlrm(embedding_rows=1000),
        zoo.logistic_regression,
        lambda: zoo.mlp(rows=8, features=8, hidden=(16,), classes=2),
    ]
    for builder in model_builders:
        graph = builder()
        executable = repro.compile_graph(graph, config, verify=True)
        assert executable.simulate().latency_s > 0
