"""The rack scenario sweep harness and its per-figure wirings."""

import numpy as np
import pytest

from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.simulation import RackSimulation, ServiceSampleCache
from repro.cluster.sweep import RackScenario, RackSweep, scenario_grid
from repro.errors import ConfigurationError
from repro.experiments import fig13, fig15, fig16, fig17
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

# A 60-second three-segment envelope at low rate: a few hundred requests,
# enough to queue a 2-4 instance fleet without slowing the test suite.
SMALL_ENVELOPE = (6.0, 18.0, 6.0)
SEGMENT_SECONDS = 20.0


@pytest.fixture(scope="module")
def context():
    return build_context(platform_names=[BASELINE_NAME, DSCS_NAME])


@pytest.fixture(scope="module")
def harness(context):
    return RackSweep(
        context,
        rate_envelope=SMALL_ENVELOPE,
        segment_seconds=SEGMENT_SECONDS,
    )


class TestScenarioGrid:
    def test_full_cross_product(self):
        grid = scenario_grid(
            platforms=("a", "b"),
            rate_scales=(0.5, 1.0),
            max_instances=(2, 4),
            policies=("fcfs", "sjf"),
        )
        assert len(grid) == 16
        assert len(set(grid)) == 16  # scenarios are hashable and distinct

    def test_labels_mention_knobs(self):
        scenario = RackScenario(
            platform="p", rate_scale=2.0, max_instances=7, cold=True
        )
        label = scenario.label()
        assert "p" in label and "x2" in label and "7 inst" in label
        assert "cold" in label

    def test_chaos_knobs_thread_through_grid(self):
        faults = FaultSchedule(instance_mtbf_seconds=60.0)
        retry = RetryPolicy(max_retries=1)
        grid = scenario_grid(
            platforms=("a", "b"),
            max_instances=(2,),
            faults=faults,
            retry=retry,
        )
        assert len(set(grid)) == 2  # still hashable with chaos fields
        for scenario in grid:
            assert scenario.faults is faults
            assert scenario.retry is retry
            assert "faults" in scenario.label()
            assert "retry" in scenario.label()
        # Inert objects do not pollute the label.
        quiet = RackScenario(
            platform="a", faults=FaultSchedule(), retry=RetryPolicy()
        )
        assert "faults" not in quiet.label()
        assert "retry" not in quiet.label()


class TestRackSweep:
    def test_trace_reused_across_cells(self, harness):
        first = harness.trace_for(seed=3, rate_scale=1.0)
        again = harness.trace_for(seed=3, rate_scale=1.0)
        assert first is again
        other = harness.trace_for(seed=3, rate_scale=2.0)
        assert other is not first

    def test_cells_match_standalone_runs(self, context, harness):
        grid = scenario_grid(
            platforms=(BASELINE_NAME,),
            rate_scales=(1.0,),
            max_instances=(2, 4),
            seed=3,
        )
        results = harness.run(grid)
        for result in results:
            scenario = result.scenario
            standalone = RackSimulation(
                context.models[scenario.platform],
                context.applications,
                max_instances=scenario.max_instances,
                queue_depth=scenario.queue_depth,
                seed=scenario.seed,
            ).run(harness.trace_for(scenario.seed, scenario.rate_scale))
            assert result.series.identical_to(standalone)

    def test_sample_cache_hits_across_cells(self, context):
        sweep = RackSweep(
            context,
            rate_envelope=SMALL_ENVELOPE,
            segment_seconds=SEGMENT_SECONDS,
        )
        grid = scenario_grid(
            platforms=(DSCS_NAME,),
            rate_scales=(1.0,),
            max_instances=(2, 4, 8),
            seed=3,
        )
        sweep.run(grid)
        cache = sweep._caches[DSCS_NAME]
        assert cache.hits > 0  # later cells replayed earlier cells' draws

    def test_policy_grid_builds_factories(self, harness):
        grid = scenario_grid(
            platforms=(BASELINE_NAME,),
            max_instances=(2,),
            policies=("fcfs", "sjf", "criticality", "dag"),
            seed=3,
        )
        results = harness.run(grid)
        assert len(results) == 4
        total = results[0].series.total_requests
        for result in results:
            assert result.series.total_requests == total
            assert (
                len(result.series.completed_latency_seconds)
                + result.series.dropped_requests
                == total
            )

    def test_unknown_platform_rejected(self, harness):
        with pytest.raises(ConfigurationError):
            harness.run_one(RackScenario(platform="warp-drive"))

    def test_unknown_policy_rejected(self, harness):
        with pytest.raises(ConfigurationError):
            harness.run_one(
                RackScenario(platform=BASELINE_NAME, policy="lottery")
            )

    def test_summary_fields(self, harness):
        result = harness.run_one(
            RackScenario(platform=BASELINE_NAME, max_instances=2, seed=3)
        )
        summary = result.summary()
        assert summary["requests"] == result.series.total_requests
        assert summary["p95_latency_s"] >= summary["mean_latency_s"] * 0.1
        assert summary["peak_queue"] == result.peak_queue_depth
        # Availability telemetry is always present (zeros when fault
        # free) so sweep tables stay rectangular across mixed grids.
        assert summary["availability"] == 1.0 or summary["dropped"] > 0
        assert summary["dropped_queue_full"] == summary["dropped"]
        assert summary["dropped_timeout"] == 0
        assert summary["dropped_crashed"] == 0
        assert summary["retries"] == 0

    def test_chaos_cells_match_standalone_runs(self, context, harness):
        faults = FaultSchedule(
            instance_mtbf_seconds=90.0,
            instance_mttr_seconds=15.0,
            seed=21,
        )
        retry = RetryPolicy(timeout_seconds=3.0, max_retries=2)
        grid = scenario_grid(
            platforms=(BASELINE_NAME,),
            max_instances=(2, 4),
            seed=3,
            faults=faults,
            retry=retry,
        )
        results = harness.run(grid)
        assert any(r.series.retries > 0 for r in results)
        for result in results:
            scenario = result.scenario
            standalone = RackSimulation(
                context.models[scenario.platform],
                context.applications,
                max_instances=scenario.max_instances,
                queue_depth=scenario.queue_depth,
                seed=scenario.seed,
                faults=faults,
                retry=retry,
            ).run(harness.trace_for(scenario.seed, scenario.rate_scale))
            assert result.series.identical_to(standalone)
            row = result.as_row()
            assert (
                row["dropped_queue_full"]
                + row["dropped_timeout"]
                + row["dropped_crashed"]
                == row["dropped"]
            )

    def test_sample_cache_is_bit_exact_under_chaos(self, context):
        """Cached and uncached chaos sweeps agree bit for bit: the
        replayed blocks cover retry and hedge re-draws too."""
        faults = FaultSchedule(
            instance_mtbf_seconds=60.0,
            instance_mttr_seconds=10.0,
            slowdown_rate_per_minute=2.0,
            seed=8,
        )
        retry = RetryPolicy(
            timeout_seconds=2.0,
            max_retries=2,
            backoff_base_seconds=0.2,
            hedge_after_seconds=0.3,
        )
        grid = scenario_grid(
            platforms=(BASELINE_NAME,),
            max_instances=(2, 3, 4),
            policies=("fcfs", "sjf"),
            seed=3,
            faults=faults,
            retry=retry,
        )

        def run(reuse):
            sweep = RackSweep(
                context,
                rate_envelope=SMALL_ENVELOPE,
                segment_seconds=SEGMENT_SECONDS,
                reuse_service_samples=reuse,
            )
            return sweep, sweep.run(grid)

        cached_sweep, cached = run(True)
        _, uncached = run(False)
        assert any(r.series.retries > 0 for r in cached)
        for a, b in zip(cached, uncached):
            assert a.series.identical_to(b.series)
        assert cached_sweep._caches[BASELINE_NAME].hits > 0


class TestServiceSampleCache:
    def test_replay_is_bit_exact(self, context):
        model = context.models[DSCS_NAME]
        app = next(iter(context.applications.values()))
        cache = ServiceSampleCache()
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        first = cache.draw(model, app, rng_a, 64)
        replay = cache.draw(model, app, rng_b, 64)
        assert cache.hits == 1 and cache.misses == 1
        assert np.array_equal(first, replay)
        # The replayed RNG advanced exactly like the sampled one.
        assert repr(rng_a.bit_generator.state) == repr(
            rng_b.bit_generator.state
        )

    def test_cold_draws_keyed_separately(self, context):
        model = context.models[DSCS_NAME]
        app = next(iter(context.applications.values()))
        cache = ServiceSampleCache()
        warm = cache.draw(model, app, np.random.default_rng(5), 64)
        cold = cache.draw(model, app, np.random.default_rng(5), 64, cold=True)
        assert cache.misses == 2
        assert cold.mean() > warm.mean()  # cold starts dominate latency


class TestFigureWirings:
    def test_fig13_sweep_grid(self, context):
        results = fig13.sweep(
            rate_scales=(0.01,),
            max_instances=(4, 8),
            context=context,
            seed=5,
        )
        assert len(results) == 4  # 2 platforms x 2 fleet sizes
        by_cell = {
            (r.scenario.platform, r.scenario.max_instances): r
            for r in results
        }
        # More instances never hurts mean latency on the same trace.
        for platform in (BASELINE_NAME, DSCS_NAME):
            assert (
                by_cell[(platform, 8)].mean_latency_seconds
                <= by_cell[(platform, 4)].mean_latency_seconds + 1e-12
            )

    def test_fig15_rack_tail_study(self):
        study = fig15.run_rack(
            tail_ratios=(1.5, 3.0),
            percentiles=(50.0, 99.0),
            rate_scale=0.01,
            max_instances=8,
            seed=5,
        )
        for key, speedup in study.speedups.items():
            assert speedup > 1.0, key
        # DSCS's advantage grows toward the tail (paper Fig. 15 shape).
        assert study.at(3.0, 99.0) > study.at(3.0, 50.0)

    def test_fig16_rack_depth_scaling(self, context):
        study = fig16.run_rack(
            extras=(0, 2),
            rate_scale=0.01,
            max_instances=8,
            seed=5,
            context=context,
        )
        # Deeper accelerated pipelines widen the gap (paper Fig. 16).
        assert study.speedup(2) > study.speedup(0) > 1.0

    def test_fig17_rack_cold_start(self, context):
        study = fig17.run_rack(
            rate_scale=0.005, max_instances=64, seed=5, context=context
        )
        assert study.warm_speedup > 1.0
        assert study.cold_speedup > 1.0
        # With queueing headroom the rack study reduces to the paper's
        # per-invocation comparison: cold starts erode the advantage.
        assert study.cold_penalty > 1.0


class TestEmptyScenarioStats:
    """A scenario that completes nothing reports NaN, not a fake 0.0."""

    @pytest.fixture()
    def empty_result(self):
        from repro.cluster.simulation import SimulationSeries
        from repro.cluster.sweep import ScenarioResult

        series = SimulationSeries(
            sample_times=np.array([0.0, 1.0]),
            queue_depth=np.zeros(2, dtype=np.int64),
            busy_instances=np.zeros(2, dtype=np.int64),
            completed_latency_seconds=np.array([], dtype=np.float64),
            completed_times=np.array([], dtype=np.float64),
            dropped_requests=5,
            total_requests=5,
        )
        scenario = RackScenario(platform=BASELINE_NAME, queue_depth=1)
        return ScenarioResult(scenario=scenario, series=series)

    def test_mean_latency_nan_when_all_dropped(self, empty_result):
        assert np.isnan(empty_result.mean_latency_seconds)

    def test_percentiles_nan_when_all_dropped(self, empty_result):
        assert np.isnan(empty_result.latency_percentile(50.0))
        assert np.isnan(empty_result.p95_latency_seconds)
        assert np.isnan(empty_result.p99_latency_seconds)

    def test_percentile_range_still_validated(self, empty_result):
        with pytest.raises(ConfigurationError):
            empty_result.latency_percentile(101.0)
        with pytest.raises(ConfigurationError):
            empty_result.latency_percentile(-0.1)

    def test_summary_rows_carry_nan(self, empty_result):
        for row in (empty_result.summary(), empty_result.as_row()):
            assert np.isnan(row["mean_latency_s"])
            assert np.isnan(row["p95_latency_s"])
            assert row["dropped"] == 5

    def test_populated_scenario_unaffected(self, context):
        sweep = RackSweep(
            context,
            rate_envelope=SMALL_ENVELOPE,
            segment_seconds=SEGMENT_SECONDS,
        )
        result = sweep.run_one(
            RackScenario(platform=BASELINE_NAME, max_instances=4)
        )
        assert result.mean_latency_seconds > 0.0
        assert result.p95_latency_seconds >= result.latency_percentile(50.0)
