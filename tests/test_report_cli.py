"""Result serialisation and the command-line interface."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.experiments import report
from repro import cli

ROWS = [
    {"platform": "CPU", "speedup": 1.0},
    {"platform": "DSCS", "speedup": 3.8},
]


class TestReport:
    def test_json_round_trip(self, tmp_path):
        path = report.write_json(ROWS, tmp_path / "out.json")
        assert report.read_json(path) == ROWS

    def test_csv_written_with_header(self, tmp_path):
        path = report.write_csv(ROWS, tmp_path / "out.csv")
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "platform,speedup"
        assert len(lines) == 3

    def test_creates_parent_dirs(self, tmp_path):
        path = report.write_json(ROWS, tmp_path / "nested/dir/out.json")
        assert path.exists()

    def test_markdown_table(self):
        text = report.to_markdown(ROWS, title="Speedups")
        assert "### Speedups" in text
        assert "| platform | speedup |" in text
        assert "| DSCS | 3.8 |" in text

    def test_empty_rows_rejected(self):
        with pytest.raises(ConfigurationError):
            report.write_json([], "out.json")

    def test_inconsistent_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            report.to_markdown([{"a": 1}, {"b": 2}])

    def test_read_non_array_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"not": "a list"}))
        with pytest.raises(ConfigurationError):
            report.read_json(path)

    def test_speedup_rows_flatten(self):
        rows = report.speedup_rows({"CPU": {"app": 1.0}, "DSCS": {"app": 3.84}})
        assert rows[1] == {"platform": "DSCS", "app": 3.84}

    def test_speedup_rows_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            report.speedup_rows({})


class TestCLI:
    def test_list_command(self, capsys):
        assert cli.main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig09" in out and "table1" in out

    def test_table1_prints_markdown(self, capsys):
        assert cli.main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "| benchmark |" in out
        assert "Remote Sensing" in out

    def test_table2_prints_platforms(self, capsys):
        assert cli.main(["table2"]) == 0
        assert "DSCS-Serverless" in capsys.readouterr().out

    def test_fig03_with_json_output(self, tmp_path, capsys):
        target = tmp_path / "fig03.json"
        assert cli.main(["fig03", "--samples", "200", "--json", str(target)]) == 0
        rows = report.read_json(target)
        assert len(rows) == 8
        assert {"benchmark", "median_ms", "p99_ms", "tail_ratio"} == set(rows[0])

    def test_fig04_runs(self, capsys):
        assert cli.main(["fig04"]) == 0
        assert "communication" in capsys.readouterr().out

    def test_fig14_with_csv_output(self, tmp_path, capsys):
        target = tmp_path / "fig14.csv"
        assert cli.main(["fig14", "--samples", "50", "--csv", str(target)]) == 0
        lines = target.read_text().strip().splitlines()
        assert lines[0] == "batch,geomean_speedup"
        assert len(lines) == 8  # header + 7 batch sizes

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli.main(["figNaN"])
