"""Object store, placement policy, and storage nodes."""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore, StorageClass
from repro.storage.placement import PlacementPolicy
from repro.units import GB, MB


def make_nodes(num_plain=3, num_dscs=1):
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(num_plain)]
    nodes += [
        StorageNode(drives=[SSDDrive(), DSCSDrive()]) for _ in range(num_dscs)
    ]
    return nodes


class TestPlacement:
    def test_replication_factor_respected(self):
        nodes = make_nodes()
        chosen = PlacementPolicy(replication_factor=3).place(
            nodes, 1 * MB, acceleratable=False
        )
        assert len(chosen) == 3
        assert len(set(id(n) for n in chosen)) == 3

    def test_acceleratable_objects_land_on_dscs_node(self):
        nodes = make_nodes()
        chosen = PlacementPolicy().place(nodes, 1 * MB, acceleratable=True)
        assert chosen[0].supports_acceleration

    def test_spread_hint_rotates(self):
        nodes = make_nodes(num_plain=4, num_dscs=0)
        first = PlacementPolicy(replication_factor=1).place(
            nodes, MB, False, spread_hint=0
        )
        second = PlacementPolicy(replication_factor=1).place(
            nodes, MB, False, spread_hint=1
        )
        assert first[0] is not second[0]

    def test_small_cluster_clamps_replicas(self):
        nodes = make_nodes(num_plain=2, num_dscs=0)
        chosen = PlacementPolicy(replication_factor=3).place(nodes, MB, False)
        assert len(chosen) == 2

    def test_empty_cluster_rejected(self):
        with pytest.raises(StorageError):
            PlacementPolicy().place([], MB, False)


class TestObjectStore:
    def test_put_get_delete_round_trip(self):
        store = ObjectStore(make_nodes())
        meta = store.put("request-1", 4 * MB)
        assert "request-1" in store
        assert store.get_meta("request-1") is meta
        store.delete("request-1")
        assert "request-1" not in store

    def test_put_replicates(self):
        store = ObjectStore(make_nodes())
        meta = store.put("obj", 4 * MB)
        assert len(meta.replicas) == 3

    def test_acceleratable_gets_dscs_class_and_replica(self):
        store = ObjectStore(make_nodes())
        meta = store.put("img", 4 * MB, acceleratable=True)
        assert meta.storage_class is StorageClass.DSCS
        assert meta.accelerated_replica() is not None

    def test_plain_object_default_class(self):
        store = ObjectStore(make_nodes())
        assert store.put("obj", MB).storage_class is StorageClass.HOT

    def test_allocation_tracked_on_drives(self):
        nodes = make_nodes()
        store = ObjectStore(nodes)
        store.put("obj", 8 * MB)
        used = sum(d.used_bytes for n in nodes for d in n.drives)
        assert used == 3 * 8 * MB
        store.delete("obj")
        assert sum(d.used_bytes for n in nodes for d in n.drives) == 0

    def test_overwrite_releases_old_space(self):
        nodes = make_nodes()
        store = ObjectStore(nodes)
        store.put("obj", 8 * MB)
        store.put("obj", 2 * MB)
        used = sum(d.used_bytes for n in nodes for d in n.drives)
        assert used == 3 * 2 * MB

    def test_single_drive_flag_for_small_objects(self):
        store = ObjectStore(make_nodes(), chunk_bytes=16 * MB)
        assert store.put("small", 4 * MB).single_drive
        assert not store.put("large", 100 * MB).single_drive

    def test_p2p_read_requires_dscs_replica(self):
        store = ObjectStore(make_nodes(num_plain=3, num_dscs=0))
        store.put("obj", MB, acceleratable=True)
        with pytest.raises(StorageError):
            store.p2p_read_seconds("obj")

    def test_p2p_read_rejects_multi_chunk(self):
        store = ObjectStore(make_nodes(), chunk_bytes=1 * MB)
        store.put("big", 10 * MB, acceleratable=True)
        with pytest.raises(StorageError):
            store.p2p_read_seconds("big")

    def test_p2p_read_returns_drive(self):
        store = ObjectStore(make_nodes())
        store.put("img", 4 * MB, acceleratable=True)
        seconds, drive = store.p2p_read_seconds("img")
        assert seconds > 0
        assert isinstance(drive, DSCSDrive)

    def test_remote_read_positive(self):
        store = ObjectStore(make_nodes())
        store.put("obj", 4 * MB)
        assert store.remote_read_seconds("obj", np.random.default_rng(0)) > 0

    def test_missing_key_raises(self):
        store = ObjectStore(make_nodes())
        with pytest.raises(StorageError):
            store.get_meta("nope")

    def test_chunk_bounds_enforced(self):
        with pytest.raises(StorageError):
            ObjectStore(make_nodes(), chunk_bytes=128 * 1024)

    def test_zero_size_rejected(self):
        store = ObjectStore(make_nodes())
        with pytest.raises(StorageError):
            store.put("obj", 0)


class TestStorageNode:
    def test_accelerated_drive_discovery(self):
        node = StorageNode(drives=[SSDDrive(), DSCSDrive()])
        assert node.supports_acceleration
        assert node.available_accelerated_drive() is not None

    def test_busy_drive_not_available(self):
        drive = DSCSDrive()
        node = StorageNode(drives=[drive])
        drive.mark_busy()
        assert node.available_accelerated_drive() is None

    def test_pick_drive_prefers_dsa_when_asked(self):
        node = StorageNode(drives=[SSDDrive(), DSCSDrive()])
        assert node.pick_drive(MB, prefer_accelerated=True).supports_acceleration
        assert not node.pick_drive(MB, prefer_accelerated=False).supports_acceleration

    def test_pick_drive_full_raises(self):
        node = StorageNode(drives=[SSDDrive(capacity_bytes=MB)])
        with pytest.raises(StorageError):
            node.pick_drive(2 * MB, prefer_accelerated=False)

    def test_remote_read_exceeds_device_read(self):
        node = StorageNode()
        drive = node.drives[0]
        remote = node.median_remote_read_seconds(drive, 4 * MB)
        assert remote > drive.host_read_seconds(4 * MB)

    def test_node_requires_drives(self):
        with pytest.raises(StorageError):
            StorageNode(drives=[])
