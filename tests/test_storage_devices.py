"""PCIe links, flash arrays, and drives (SSD + DSCS-Drive)."""

import pytest

from repro.errors import ConfigurationError, StorageError
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.flash import FlashArray
from repro.storage.pcie import PCIeLink
from repro.units import MB


class TestPCIeLink:
    def test_zero_bytes_free(self):
        assert PCIeLink().transfer_seconds(0) == 0.0

    def test_setup_latency_included(self):
        link = PCIeLink()
        assert link.transfer_seconds(1) > link.setup_seconds

    def test_bandwidth_term(self):
        link = PCIeLink(bandwidth_bytes_per_s=1e9, setup_seconds=0.0)
        assert link.transfer_seconds(10**9) == pytest.approx(1.0)

    def test_energy_per_bit(self):
        link = PCIeLink(energy_pj_per_bit=5.0)
        assert link.transfer_energy_j(1000) == pytest.approx(8000 * 5e-12)

    def test_rejects_negative_size(self):
        with pytest.raises(ConfigurationError):
            PCIeLink().transfer_seconds(-1)


class TestFlashArray:
    def test_read_includes_access_latency(self):
        flash = FlashArray()
        assert flash.read_seconds(1) > flash.read_access_seconds

    def test_write_slower_than_read(self):
        flash = FlashArray()
        assert flash.write_seconds(1 * MB) > flash.read_seconds(1 * MB)

    def test_channels_multiply_bandwidth(self):
        few = FlashArray(channels=2)
        many = FlashArray(channels=16)
        assert many.read_seconds(64 * MB) < few.read_seconds(64 * MB)

    def test_zero_bytes_free(self):
        assert FlashArray().read_seconds(0) == 0.0

    def test_rejects_bad_channels(self):
        with pytest.raises(ConfigurationError):
            FlashArray(channels=0)


class TestSSDDrive:
    def test_capacity_accounting(self):
        drive = SSDDrive(capacity_bytes=10 * MB)
        drive.allocate(4 * MB)
        assert drive.used_bytes == 4 * MB
        assert drive.free_bytes == 6 * MB
        drive.release(4 * MB)
        assert drive.used_bytes == 0

    def test_over_allocation_rejected(self):
        drive = SSDDrive(capacity_bytes=1 * MB)
        with pytest.raises(StorageError):
            drive.allocate(2 * MB)

    def test_over_release_rejected(self):
        drive = SSDDrive()
        with pytest.raises(StorageError):
            drive.release(1)

    def test_host_read_combines_flash_and_pcie(self):
        drive = SSDDrive()
        read = drive.host_read_seconds(8 * MB)
        assert read > drive.flash.read_seconds(8 * MB)
        assert read > drive.host_link.transfer_seconds(8 * MB)

    def test_no_acceleration(self):
        assert not SSDDrive().supports_acceleration


class TestDSCSDrive:
    def test_supports_acceleration(self):
        assert DSCSDrive().supports_acceleration

    def test_default_dsa_is_paper_point(self):
        drive = DSCSDrive()
        assert drive.dsa_config.pe_rows == 128
        assert drive.dsa_config.memory.name == "DDR5"

    def test_p2p_read_faster_than_remote_style_read(self):
        drive = DSCSDrive()
        # P2P bypasses nothing physical vs host read, but the host path in
        # a real request also crosses the network; locally the two are of
        # the same magnitude.
        assert drive.p2p_read_seconds(4 * MB) == pytest.approx(
            drive.host_read_seconds(4 * MB), rel=0.5
        )

    def test_p2p_read_capped_by_staging_dram(self):
        drive = DSCSDrive(staging_dram_bytes=1 * MB)
        with pytest.raises(StorageError):
            drive.p2p_read_seconds(2 * MB)

    def test_busy_protocol(self):
        drive = DSCSDrive()
        assert not drive.busy
        drive.mark_busy()
        assert drive.busy
        with pytest.raises(StorageError):
            drive.mark_busy()
        drive.mark_idle()
        assert not drive.busy

    def test_p2p_energy_positive(self):
        assert DSCSDrive().p2p_energy_j(1 * MB) > 0

    def test_negative_p2p_rejected(self):
        with pytest.raises(StorageError):
            DSCSDrive().p2p_read_seconds(-1)

    def test_power_budget_is_25w(self):
        assert DSCSDrive().power_budget_watts == 25.0
