"""Conservation and degradation properties of the fault layer.

Whatever the fault schedule does, requests are conserved: every arrival
either completes or is dropped for exactly one recorded reason, in both
engines, for every seed.  And a schedule that injects nothing must leave
the simulation exactly as it found it — bit for bit, not approximately.
"""

import numpy as np
import pytest

from repro.cluster.faults import (
    DROP_REASONS,
    FaultSchedule,
    RetryPolicy,
)
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu

SEEDS = (1, 2, 3, 4, 5)
ENGINES = ("event", "vectorized")


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def model():
    return ServerlessExecutionModel(platform=baseline_cpu())


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def random_chaos_config(seed):
    """A randomized-but-seeded fault + retry configuration."""
    rng = np.random.default_rng(seed)
    faults = FaultSchedule(
        instance_mtbf_seconds=float(rng.uniform(60.0, 300.0)),
        instance_mttr_seconds=float(rng.uniform(5.0, 30.0)),
        node_outage_mtbf_seconds=float(rng.uniform(120.0, 600.0)),
        node_mttr_seconds=float(rng.uniform(10.0, 60.0)),
        node_size=int(rng.integers(1, 4)),
        slowdown_rate_per_minute=float(rng.uniform(0.0, 4.0)),
        slowdown_multiplier=float(rng.uniform(1.5, 3.0)),
        slowdown_duration_seconds=float(rng.uniform(2.0, 10.0)),
        seed=int(rng.integers(0, 2**31)),
    )
    retry = RetryPolicy(
        timeout_seconds=float(rng.uniform(1.0, 5.0)),
        max_retries=int(rng.integers(0, 4)),
        backoff_base_seconds=float(rng.uniform(0.05, 0.5)),
        backoff_cap_seconds=float(rng.uniform(1.0, 5.0)),
        jitter=float(rng.uniform(0.0, 1.0)),
        hedge_after_seconds=float(rng.uniform(0.1, 1.0)),
    )
    return faults, retry


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS)
def test_requests_are_conserved_under_random_chaos(
    suite, model, engine, seed
):
    """arrivals == completions + drops, and every drop has a reason."""
    faults, retry = random_chaos_config(seed)
    trace = make_trace(suite, 0.05, seed)
    series = RackSimulation(
        model,
        suite,
        max_instances=3,
        queue_depth=25,
        seed=seed,
        faults=faults,
        retry=retry,
    ).run(trace, engine=engine)

    completed = len(series.completed_latency_seconds)
    assert completed + series.dropped_requests == len(trace)
    assert series.total_requests == len(trace)

    breakdown = series.drop_breakdown()
    assert set(breakdown) <= set(DROP_REASONS)
    assert sum(breakdown.values()) == series.dropped_requests
    assert len(series.dropped_times) == series.dropped_requests
    assert len(series.dropped_reasons) == series.dropped_requests
    if series.dropped_requests:
        assert int(series.dropped_reasons.min()) >= 0
        assert int(series.dropped_reasons.max()) < len(DROP_REASONS)

    assert 0.0 <= series.availability <= 1.0
    assert series.timeouts >= breakdown.get("timeout", 0)
    assert series.crash_kills >= breakdown.get("crashed", 0)

    # Per-bucket availability is a refinement of the total: terminating
    # requests distribute over buckets without loss.
    buckets = series.availability_per_bucket(60.0)
    assert np.all((buckets[~np.isnan(buckets)] >= 0.0))
    assert np.all((buckets[~np.isnan(buckets)] <= 1.0))


@pytest.mark.parametrize("seed", SEEDS)
def test_latencies_stay_finite_and_positive_under_chaos(
    suite, model, seed
):
    faults, retry = random_chaos_config(seed + 100)
    trace = make_trace(suite, 0.05, seed)
    series = RackSimulation(
        model,
        suite,
        max_instances=3,
        queue_depth=25,
        seed=seed,
        faults=faults,
        retry=retry,
    ).run(trace, engine="vectorized")
    latencies = series.completed_latency_seconds
    assert np.all(np.isfinite(latencies))
    assert np.all(latencies > 0)
    assert np.all(np.isfinite(series.dropped_times))


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("seed", SEEDS[:3])
def test_zero_fault_schedule_is_bit_exact_no_op(suite, model, engine, seed):
    """Inert fault/retry objects reproduce today's engines exactly."""
    trace = make_trace(suite, 0.05, seed)

    def run(**kwargs):
        sim = RackSimulation(
            model, suite, max_instances=4, seed=seed, **kwargs
        )
        series = sim.run(trace, engine=engine)
        return series, repr(sim._rng.bit_generator.state)

    plain, plain_rng = run()
    inert, inert_rng = run(faults=FaultSchedule(), retry=RetryPolicy())
    assert inert.identical_to(plain)
    assert inert_rng == plain_rng
    assert inert.retries == 0
    assert inert.timeouts == 0
    assert inert.crash_kills == 0
    assert inert.hedges_launched == 0


def test_min_capacity_floor_is_respected(suite, model):
    """Even under absurd churn the fleet never drops below the floor —
    the modelled system degrades, it does not vanish (paper §5.3)."""
    faults = FaultSchedule(
        instance_mtbf_seconds=5.0,
        instance_mttr_seconds=1000.0,
        min_capacity=2,
        seed=3,
    )
    timeline = faults.materialize(max_instances=4, horizon_seconds=1200.0)
    assert timeline.initial_capacity == 4
    assert len(timeline.times)  # churn this heavy certainly fires
    assert int(timeline.capacities.min()) >= 2
    # And the simulation still terminates with conservation intact.
    trace = make_trace(suite, 0.02, 1)
    series = RackSimulation(
        model, suite, max_instances=4, seed=1, faults=faults
    ).run(trace)
    completed = len(series.completed_latency_seconds)
    assert completed + series.dropped_requests == len(trace)
