"""EventQueue ordering, cancellation, and error behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim.event_queue import Event, EventQueue


def _noop(payload=None):
    return payload


def test_pop_returns_events_in_time_order():
    queue = EventQueue()
    queue.push(Event(3.0, _noop, "c"))
    queue.push(Event(1.0, _noop, "a"))
    queue.push(Event(2.0, _noop, "b"))
    assert [queue.pop().payload for _ in range(3)] == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    queue = EventQueue()
    for label in ("first", "second", "third"):
        queue.push(Event(5.0, _noop, label))
    assert [queue.pop().payload for _ in range(3)] == ["first", "second", "third"]


def test_len_tracks_live_events():
    queue = EventQueue()
    handles = [queue.push(Event(float(i), _noop)) for i in range(4)]
    assert len(queue) == 4
    queue.cancel(handles[1])
    assert len(queue) == 3
    queue.pop()
    assert len(queue) == 2


def test_cancelled_events_are_skipped():
    queue = EventQueue()
    queue.push(Event(1.0, _noop, "keep1"))
    handle = queue.push(Event(2.0, _noop, "cancelled"))
    queue.push(Event(3.0, _noop, "keep2"))
    queue.cancel(handle)
    assert [queue.pop().payload for _ in range(2)] == ["keep1", "keep2"]


def test_double_cancel_is_idempotent():
    queue = EventQueue()
    handle = queue.push(Event(1.0, _noop))
    queue.cancel(handle)
    queue.cancel(handle)
    assert len(queue) == 0


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.pop()


def test_negative_time_rejected():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push(Event(-0.1, _noop))


def test_peek_time_skips_cancelled():
    queue = EventQueue()
    handle = queue.push(Event(1.0, _noop))
    queue.push(Event(2.0, _noop))
    queue.cancel(handle)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_event_fire_without_payload_calls_zero_arg():
    called = []
    event = Event(0.0, lambda: called.append(True))
    event.fire()
    assert called == [True]


def test_bool_conversion():
    queue = EventQueue()
    assert not queue
    queue.push(Event(0.0, _noop))
    assert queue


def test_push_many_matches_sequential_pushes():
    bulk = EventQueue()
    one_by_one = EventQueue()
    events = [Event(float(t), _noop, i) for i, t in enumerate([5, 1, 3, 1, 2])]
    bulk.push_many(events)
    for event in events:
        one_by_one.push(event)
    assert len(bulk) == len(one_by_one) == 5
    drained = [bulk.pop().payload for _ in range(5)]
    expected = [one_by_one.pop().payload for _ in range(5)]
    assert drained == expected  # same time order AND same tie-breaking


def test_push_many_into_populated_queue():
    queue = EventQueue()
    queue.push(Event(2.0, _noop, "existing"))
    queue.push_many([Event(1.0, _noop, "early"), Event(3.0, _noop, "late")])
    assert [queue.pop().payload for _ in range(3)] == [
        "early",
        "existing",
        "late",
    ]


def test_push_many_returns_cancelable_handles():
    queue = EventQueue()
    handles = queue.push_many([Event(1.0, _noop, "a"), Event(2.0, _noop, "b")])
    assert len(handles) == 2
    queue.cancel(handles[0])
    assert len(queue) == 1
    assert queue.pop().payload == "b"


def test_push_many_empty_is_noop():
    queue = EventQueue()
    assert queue.push_many([]) == []
    assert len(queue) == 0


def test_push_many_rejects_negative_time():
    queue = EventQueue()
    with pytest.raises(SimulationError):
        queue.push_many([Event(1.0, _noop), Event(-0.5, _noop)])
