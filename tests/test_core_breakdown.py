"""Latency/energy breakdown arithmetic."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.breakdown import (
    COMMUNICATION_COMPONENTS,
    Component,
    EnergyBreakdown,
    LatencyBreakdown,
)
from repro.errors import ConfigurationError


def test_add_accumulates():
    breakdown = LatencyBreakdown()
    breakdown.add(Component.COMPUTE, 0.1)
    breakdown.add(Component.COMPUTE, 0.2)
    assert breakdown.get(Component.COMPUTE) == pytest.approx(0.3)


def test_total_sums_components():
    breakdown = LatencyBreakdown()
    breakdown.add(Component.COMPUTE, 0.1)
    breakdown.add(Component.REMOTE_READ, 0.4)
    assert breakdown.total == pytest.approx(0.5)


def test_communication_classification():
    breakdown = LatencyBreakdown()
    breakdown.add(Component.REMOTE_READ, 0.1)
    breakdown.add(Component.P2P_WRITE, 0.2)
    breakdown.add(Component.DEVICE_COPY, 0.1)
    breakdown.add(Component.COMPUTE, 0.6)
    assert breakdown.communication == pytest.approx(0.4)


def test_compute_includes_cpu_work():
    breakdown = LatencyBreakdown()
    breakdown.add(Component.COMPUTE, 0.1)
    breakdown.add(Component.CPU_COMPUTE, 0.05)
    assert breakdown.compute == pytest.approx(0.15)


def test_fractions_sum_to_one():
    breakdown = LatencyBreakdown()
    breakdown.add(Component.COMPUTE, 0.3)
    breakdown.add(Component.SYSTEM_STACK, 0.1)
    breakdown.add(Component.REMOTE_READ, 0.6)
    assert sum(breakdown.fractions().values()) == pytest.approx(1.0)


def test_merged_is_non_destructive():
    a = LatencyBreakdown()
    a.add(Component.COMPUTE, 0.1)
    b = LatencyBreakdown()
    b.add(Component.COMPUTE, 0.2)
    merged = a.merged(b)
    assert merged.get(Component.COMPUTE) == pytest.approx(0.3)
    assert a.get(Component.COMPUTE) == pytest.approx(0.1)


def test_negative_latency_rejected():
    with pytest.raises(ConfigurationError):
        LatencyBreakdown().add(Component.COMPUTE, -0.1)


def test_driver_and_stack_are_not_communication():
    assert Component.DRIVER not in COMMUNICATION_COMPONENTS
    assert Component.SYSTEM_STACK not in COMMUNICATION_COMPONENTS


def test_energy_breakdown_total():
    energy = EnergyBreakdown(compute_j=1.0, host_cpu_j=2.0, pcie_j=0.5, storage_j=0.5)
    assert energy.total_j == pytest.approx(4.0)


def test_energy_rejects_negative():
    with pytest.raises(ConfigurationError):
        EnergyBreakdown(compute_j=-1.0)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(list(Component)),
            st.floats(min_value=0, max_value=10),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_total_equals_sum_of_adds(entries):
    breakdown = LatencyBreakdown()
    for component, value in entries:
        breakdown.add(component, value)
    assert breakdown.total == pytest.approx(sum(v for _, v in entries))
