"""DSA configuration and memory-spec tests."""

import pytest

from repro.accelerator.config import (
    DDR4,
    DDR5,
    HBM2,
    DSAConfig,
    MemorySpec,
    paper_design_point,
)
from repro.errors import ConfigurationError
from repro.units import GHZ, MB


class TestMemorySpec:
    def test_paper_bandwidths(self):
        assert DDR4.bandwidth_bytes_per_s == pytest.approx(19.2e9)
        assert DDR5.bandwidth_bytes_per_s == pytest.approx(38e9)
        assert HBM2.bandwidth_bytes_per_s == pytest.approx(460e9)

    def test_bytes_per_cycle(self):
        assert DDR5.bytes_per_cycle(1e9) == pytest.approx(38.0)

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            MemorySpec("bad", 0.0, 1.0, 1.0)


class TestDSAConfig:
    def test_paper_design_point(self):
        config = paper_design_point()
        assert config.pe_rows == 128
        assert config.pe_cols == 128
        assert config.buffer_bytes == 4 * MB
        assert config.memory.name == "DDR5"
        assert config.frequency_hz == 1 * GHZ

    def test_num_pes(self):
        assert DSAConfig(pe_rows=64, pe_cols=32).num_pes == 2048

    def test_peak_tops(self):
        config = paper_design_point()
        # 128x128 MACs @ 1 GHz = 32.8 TOPS (2 ops per MAC).
        assert config.peak_tops == pytest.approx(32.768, rel=0.01)

    def test_lanes_default_to_cols(self):
        assert DSAConfig(pe_rows=16, pe_cols=64).lanes == 64
        assert DSAConfig(vector_lanes=256).lanes == 256

    def test_buffer_partitioning_sums_to_total(self):
        config = paper_design_point()
        total = (
            config.input_buffer_bytes
            + config.weight_buffer_bytes
            + config.output_buffer_bytes
        )
        assert total == pytest.approx(config.buffer_bytes, rel=0.01)

    def test_cycles_to_seconds(self):
        config = DSAConfig(frequency_hz=2e9)
        assert config.cycles_to_seconds(2e9) == pytest.approx(1.0)

    def test_cycles_to_seconds_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            paper_design_point().cycles_to_seconds(-1)

    def test_label_format(self):
        assert paper_design_point().label == "Dim128-4MB-DDR5"
        rect = DSAConfig(pe_rows=64, pe_cols=128, buffer_bytes=2 * MB)
        assert rect.label == "Dim64x128-2MB-DDR5"

    def test_rejects_bad_geometry(self):
        with pytest.raises(ConfigurationError):
            DSAConfig(pe_rows=0)

    def test_rejects_unknown_tech_node(self):
        with pytest.raises(ConfigurationError):
            DSAConfig(tech_node_nm=28)

    def test_rejects_non_positive_buffer(self):
        with pytest.raises(ConfigurationError):
            DSAConfig(buffer_bytes=0)
