"""Warm-container pool behaviour."""

import pytest

from repro.errors import ConfigurationError
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.warmpool import WarmPool


def pool(window=600.0, capacity=4, flash=True):
    return WarmPool(
        coldstart=ColdStartModel(warm_window_seconds=window),
        capacity=capacity,
        flash_parking=flash,
    )


def test_first_invocation_is_cold():
    cold, reload = pool().invoke("f", now=0.0)
    assert cold and not reload


def test_repeat_within_window_is_warm():
    p = pool(window=100.0)
    p.invoke("f", now=0.0)
    cold, _ = p.invoke("f", now=50.0)
    assert not cold


def test_repeat_after_window_is_cold():
    p = pool(window=100.0)
    p.invoke("f", now=0.0)
    cold, reload = p.invoke("f", now=200.0)
    assert cold
    assert reload  # parked on flash at expiry, reloaded via P2P


def test_flash_parking_disabled_means_full_cold():
    p = pool(window=100.0, flash=False)
    p.invoke("f", now=0.0)
    cold, reload = p.invoke("f", now=200.0)
    assert cold and not reload


def test_lru_eviction_at_capacity():
    p = pool(capacity=2)
    p.invoke("a", now=0.0)
    p.invoke("b", now=1.0)
    p.invoke("c", now=2.0)  # evicts 'a'
    assert "a" not in p.resident_functions
    cold, reload = p.invoke("a", now=3.0)
    assert cold and reload


def test_replay_counts_cold_fraction():
    p = pool(window=100.0)
    timeline = [(0.0, "f"), (10.0, "f"), (20.0, "f"), (500.0, "f")]
    stats = p.replay(timeline)
    assert stats.total_invocations == 4
    assert stats.cold_invocations == 2  # first + post-expiry
    assert stats.flash_reloads == 1
    assert stats.cold_fraction == pytest.approx(0.5)


def test_replay_requires_ordered_timeline():
    with pytest.raises(ConfigurationError):
        pool().replay([(1.0, "f"), (0.5, "f")])


def test_hot_function_stays_warm_indefinitely():
    p = pool(window=100.0)
    timeline = [(float(t), "hot") for t in range(0, 1000, 50)]
    stats = p.replay(timeline)
    assert stats.cold_invocations == 1  # only the very first


def test_capacity_validation():
    with pytest.raises(ConfigurationError):
        WarmPool(capacity=0)


def test_interleaved_functions_share_pool():
    p = pool(capacity=8, window=1000.0)
    timeline = []
    for t in range(10):
        timeline.append((float(2 * t), "a"))
        timeline.append((float(2 * t + 1), "b"))
    stats = p.replay(timeline)
    assert stats.cold_invocations == 2  # one per function


class TestLRUEviction:
    """Bounded-capacity eviction details: tie-breaks, flash parking
    interplay, and the re-warm cycle after keep-alive expiry."""

    def test_lru_tie_break_evicts_earliest_inserted(self):
        p = pool(capacity=2)
        p.invoke("a", now=0.0)
        p.invoke("b", now=0.0)  # same timestamp: insertion order breaks it
        p.invoke("c", now=1.0)
        assert p.resident_functions == ["b", "c"]

    def test_recent_touch_updates_lru_order(self):
        p = pool(capacity=2)
        p.invoke("a", now=0.0)
        p.invoke("b", now=1.0)
        p.invoke("a", now=2.0)  # 'a' is now the most recent
        p.invoke("c", now=3.0)
        assert p.resident_functions == ["a", "c"]

    def test_eviction_without_flash_parking_forgets_image(self):
        p = pool(capacity=2, flash=False)
        p.invoke("a", now=0.0)
        p.invoke("b", now=1.0)
        p.invoke("c", now=2.0)  # evicts 'a', nothing parked
        cold, reload = p.invoke("a", now=3.0)
        assert cold and not reload

    def test_rewarm_cycle_after_keepalive_expiry(self):
        p = pool(window=100.0)
        p.invoke("f", now=0.0)
        cold, reload = p.invoke("f", now=200.0)
        assert cold and reload  # parked at expiry, P2P reload
        cold, _ = p.invoke("f", now=250.0)
        assert not cold  # resident again inside the fresh window
        cold, reload = p.invoke("f", now=400.0)
        assert cold and reload  # the park/reload cycle repeats

    def test_expiry_frees_capacity_before_lru(self):
        p = pool(window=100.0, capacity=2)
        p.invoke("a", now=0.0)
        p.invoke("b", now=90.0)
        # 'a' is past its keep-alive at t=150: it ages out, so 'b' is
        # NOT the LRU victim and stays warm.
        p.invoke("c", now=150.0)
        assert p.resident_functions == ["b", "c"]
        cold, _ = p.invoke("b", now=160.0)
        assert not cold
