"""Unit-constant and conversion-helper tests."""

import pytest

from repro import units


def test_binary_size_constants():
    assert units.KB == 1024
    assert units.MB == 1024 * 1024
    assert units.GB == 1024**3


def test_decimal_size_constants():
    assert units.GB_DEC == 10**9
    assert units.MB_DEC == 10**6


def test_time_constants_ordering():
    assert units.NS < units.US < units.MS < units.SECOND < units.MINUTE < units.HOUR


def test_bytes_to_mb_round_trip():
    assert units.bytes_to_mb(units.mb(3.5)) == pytest.approx(3.5)


def test_kb_mb_gb_helpers():
    assert units.kb(2) == 2048
    assert units.mb(1) == units.MB
    assert units.gb(1) == units.GB


def test_transfer_time_basic():
    assert units.transfer_time(1000, 1000.0) == pytest.approx(1.0)


def test_transfer_time_zero_bytes():
    assert units.transfer_time(0, 5.0) == 0.0


def test_transfer_time_rejects_negative_bytes():
    with pytest.raises(ValueError):
        units.transfer_time(-1, 100.0)


def test_transfer_time_rejects_zero_bandwidth():
    with pytest.raises(ValueError):
        units.transfer_time(10, 0.0)
