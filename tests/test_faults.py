"""Unit behaviour of the fault-injection primitives.

Validation discipline mirrors ``repro.network.rpc``: every knob is
checked in ``__post_init__`` and misconfiguration raises
:class:`~repro.errors.ConfigurationError` at construction time, not
mid-simulation.  Timeline materialization is a pure function of the
schedule's own seed with documented structural invariants.
"""

import numpy as np
import pytest

from repro.cluster.faults import (
    DROP_REASONS,
    FaultSchedule,
    FaultTimeline,
    RetryPolicy,
)
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu


class TestRetryPolicyValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"timeout_seconds": 0.0},
            {"timeout_seconds": -1.0},
            {"max_retries": -1},
            {"backoff_base_seconds": -0.1},
            {"backoff_cap_seconds": -1.0},
            {"jitter": -0.01},
            {"jitter": 1.01},
            {"hedge_after_seconds": 0.0},
            {"hedge_after_seconds": -2.0},
        ),
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            RetryPolicy(**kwargs)

    def test_default_policy_is_inert(self):
        assert not RetryPolicy().active

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"timeout_seconds": 1.0},
            {"max_retries": 1},
            {"hedge_after_seconds": 0.5},
        ),
    )
    def test_any_enabled_feature_activates(self, kwargs):
        assert RetryPolicy(**kwargs).active


class TestBackoff:
    def test_deterministic(self):
        policy = RetryPolicy(max_retries=3)
        assert policy.backoff_seconds(17, 1) == policy.backoff_seconds(17, 1)
        # Distinct (sequence, attempt) pairs jitter independently.
        assert policy.backoff_seconds(17, 1) != policy.backoff_seconds(18, 1)

    def test_zero_jitter_is_pure_exponential(self):
        policy = RetryPolicy(
            max_retries=5, backoff_base_seconds=0.5, jitter=0.0
        )
        assert policy.backoff_seconds(0, 0) == 0.5
        assert policy.backoff_seconds(0, 1) == 1.0
        assert policy.backoff_seconds(0, 2) == 2.0

    def test_cap_bounds_growth(self):
        policy = RetryPolicy(
            max_retries=10,
            backoff_base_seconds=1.0,
            backoff_cap_seconds=4.0,
            jitter=0.0,
        )
        assert policy.backoff_seconds(0, 9) == 4.0

    def test_jitter_range(self):
        policy = RetryPolicy(
            max_retries=3, backoff_base_seconds=1.0, jitter=0.5
        )
        for sequence in range(50):
            delay = policy.backoff_seconds(sequence, 0)
            assert 0.5 <= delay < 1.0

    def test_jitter_seed_changes_delays(self):
        a = RetryPolicy(max_retries=1, jitter_seed=1)
        b = RetryPolicy(max_retries=1, jitter_seed=2)
        assert a.backoff_seconds(0, 0) != b.backoff_seconds(0, 0)


class TestFaultScheduleValidation:
    @pytest.mark.parametrize(
        "kwargs",
        (
            {"instance_mtbf_seconds": 0.0},
            {"instance_mtbf_seconds": -5.0},
            {"instance_mttr_seconds": 0.0},
            {"node_outage_mtbf_seconds": -1.0},
            {"node_mttr_seconds": -1.0},
            {"node_size": 0},
            {"slowdown_rate_per_minute": -0.5},
            {"slowdown_multiplier": 0.0},
            {"slowdown_duration_seconds": 0.0},
            {"min_capacity": 0},
        ),
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            FaultSchedule(**kwargs)

    def test_default_schedule_is_inert(self):
        assert not FaultSchedule().active

    @pytest.mark.parametrize(
        "kwargs",
        (
            {"instance_mtbf_seconds": 100.0},
            {"node_outage_mtbf_seconds": 100.0},
            {"slowdown_rate_per_minute": 1.0},
        ),
    )
    def test_any_enabled_process_activates(self, kwargs):
        assert FaultSchedule(**kwargs).active

    def test_materialize_rejects_bad_fleet(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule().materialize(0, 100.0)
        with pytest.raises(ConfigurationError):
            FaultSchedule().materialize(4, -1.0)


class TestFaultTimeline:
    def test_empty_timeline(self):
        timeline = FaultTimeline.empty(8)
        assert timeline.empty_timeline
        assert timeline.capacity_at(0.0) == 8
        assert timeline.multiplier_at(5.0) == 1.0

    def test_inert_schedule_materializes_empty(self):
        assert FaultSchedule().materialize(16, 1200.0).empty_timeline

    def test_materialization_is_seed_deterministic(self):
        schedule = FaultSchedule(instance_mtbf_seconds=60.0, seed=5)
        a = schedule.materialize(8, 600.0)
        b = schedule.materialize(8, 600.0)
        assert np.array_equal(a.times, b.times)
        assert np.array_equal(a.capacities, b.capacities)
        other = FaultSchedule(instance_mtbf_seconds=60.0, seed=6)
        assert not np.array_equal(
            other.materialize(8, 600.0).times, a.times
        )

    def test_capacity_structural_invariants(self):
        schedule = FaultSchedule(
            instance_mtbf_seconds=30.0,
            instance_mttr_seconds=20.0,
            node_outage_mtbf_seconds=90.0,
            node_mttr_seconds=40.0,
            node_size=3,
            min_capacity=2,
            seed=9,
        )
        timeline = schedule.materialize(8, 1200.0)
        times = timeline.times
        caps = timeline.capacities
        assert len(times) == len(caps)
        assert np.all(np.diff(times) > 0)  # strictly increasing
        assert int(caps.min()) >= 2
        assert int(caps.max()) <= 8
        # No-op steps were removed: consecutive capacities differ.
        assert np.all(np.diff(caps) != 0)

    def test_slowdown_windows_are_merged_and_ordered(self):
        schedule = FaultSchedule(
            slowdown_rate_per_minute=30.0,  # dense -> overlaps guaranteed
            slowdown_duration_seconds=10.0,
            seed=2,
        )
        timeline = schedule.materialize(8, 600.0)
        starts = timeline.slow_starts
        ends = timeline.slow_ends
        assert len(starts) == len(ends)
        assert len(starts) > 0
        assert np.all(ends > starts)
        # Disjoint after merging: the next window starts strictly after
        # the previous one ends.
        assert np.all(starts[1:] > ends[:-1])

    def test_multiplier_scalar_and_vector_agree(self):
        schedule = FaultSchedule(
            slowdown_rate_per_minute=4.0,
            slowdown_multiplier=2.5,
            slowdown_duration_seconds=5.0,
            seed=3,
        )
        timeline = schedule.materialize(8, 600.0)
        probes = np.random.default_rng(0).uniform(0.0, 650.0, size=500)
        vectorized = timeline.multipliers(probes)
        scalar = np.array([timeline.multiplier_at(t) for t in probes])
        assert np.array_equal(vectorized, scalar)
        assert set(np.unique(vectorized)) <= {1.0, 2.5}

    def test_capacity_at_walks_the_step_function(self):
        timeline = FaultTimeline(
            initial_capacity=8,
            times=np.array([10.0, 20.0]),
            capacities=np.array([5, 8]),
            slow_starts=np.empty(0),
            slow_ends=np.empty(0),
        )
        assert timeline.capacity_at(0.0) == 8
        assert timeline.capacity_at(10.0) == 5
        assert timeline.capacity_at(15.0) == 5
        assert timeline.capacity_at(20.0) == 8

    def test_recoveries_may_land_past_horizon(self):
        """Crashes only inside the horizon; repairs may complete after."""
        schedule = FaultSchedule(
            instance_mtbf_seconds=50.0,
            instance_mttr_seconds=500.0,
            seed=1,
        )
        timeline = schedule.materialize(4, 300.0)
        drops = timeline.times[
            np.diff(
                np.concatenate(
                    [[timeline.initial_capacity], timeline.capacities]
                )
            )
            < 0
        ]
        assert np.all(drops < 300.0)


class TestDropReasons:
    def test_reason_table_is_stable(self):
        # Telemetry (CSV columns, breakdown keys) depends on this order.
        assert DROP_REASONS == ("queue_full", "timeout", "crashed", "shed")


class TestChaosRouting:
    def test_non_keyed_policy_rejected_under_chaos(self):
        suite = benchmark_suite()
        model = ServerlessExecutionModel(platform=baseline_cpu())

        class _AlienPolicy:
            def push(self, request):  # pragma: no cover - never reached
                pass

            def pop(self):  # pragma: no cover - never reached
                pass

            def __len__(self):
                return 0

        class _AlienFactory:
            def build(self):
                return _AlienPolicy()

        simulation = RackSimulation(
            model,
            suite,
            max_instances=2,
            seed=1,
            policy=_AlienFactory(),
            retry=RetryPolicy(max_retries=1),
        )
        generator = TraceGenerator(
            list(suite), rate_envelope=(5, 5, 5), segment_seconds=5.0
        )
        trace = generator.generate(np.random.default_rng(1))
        with pytest.raises(ConfigurationError):
            simulation.run(trace)
