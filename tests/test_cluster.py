"""Trace generation and the rack-scale discrete-event simulation."""

import numpy as np
import pytest

from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu, dscs_dsa


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


def small_trace(suite, scale=0.02, seed=1):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(r * scale for r in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


class TestTrace:
    def test_arrivals_sorted_and_within_duration(self, suite):
        trace = small_trace(suite)
        assert np.all(np.diff(trace.arrival_seconds) >= 0)
        assert trace.arrival_seconds.max() <= trace.duration_seconds

    def test_apps_drawn_from_suite(self, suite):
        trace = small_trace(suite)
        assert set(trace.app_names) <= set(suite)

    def test_poisson_counts_track_envelope(self, suite):
        generator = TraceGenerator(
            list(suite), rate_envelope=(100.0, 400.0), segment_seconds=30.0
        )
        trace = generator.generate(np.random.default_rng(0))
        first = np.sum(trace.arrival_seconds < 30.0)
        second = np.sum(trace.arrival_seconds >= 30.0)
        assert second > 2 * first

    def test_requests_per_second_series(self, suite):
        trace = small_trace(suite)
        rps = trace.requests_per_second(1.0)
        assert len(rps) == int(trace.duration_seconds)
        assert rps.sum() == pytest.approx(len(trace))

    def test_deterministic_for_seed(self, suite):
        a = small_trace(suite, seed=5)
        b = small_trace(suite, seed=5)
        assert np.array_equal(a.arrival_seconds, b.arrival_seconds)
        assert a.app_names == b.app_names

    def test_empty_envelope_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            TraceGenerator(list(suite), rate_envelope=())

    def test_negative_rate_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            TraceGenerator(list(suite), rate_envelope=(-1.0,))

    def test_zero_rate_segment_produces_silent_gap(self, suite):
        generator = TraceGenerator(
            list(suite), rate_envelope=(20.0, 0.0, 20.0), segment_seconds=20.0
        )
        trace = generator.generate(np.random.default_rng(4))
        assert len(trace) > 0
        in_gap = (trace.arrival_seconds >= 20.0) & (trace.arrival_seconds < 40.0)
        assert int(np.sum(in_gap)) == 0
        # The silent segment still counts toward the trace duration.
        assert trace.duration_seconds == pytest.approx(60.0)
        assert trace.requests_per_second(20.0)[1] == 0.0

    def test_all_zero_envelope_yields_empty_trace(self, suite):
        generator = TraceGenerator(
            list(suite), rate_envelope=(0.0, 0.0), segment_seconds=20.0
        )
        trace = generator.generate(np.random.default_rng(4))
        assert len(trace) == 0
        assert trace.duration_seconds == pytest.approx(40.0)
        rps = trace.requests_per_second(20.0)
        assert np.array_equal(rps, np.zeros(2))

    def test_single_app_trace_assigns_everything_to_it(self, suite):
        only = next(iter(suite))
        generator = TraceGenerator(
            [only], rate_envelope=(15.0,), segment_seconds=20.0
        )
        trace = generator.generate(np.random.default_rng(4))
        assert len(trace) > 0
        assert set(trace.app_names) == {only}

    def test_requests_per_second_nondivisor_bucket(self, suite):
        trace = small_trace(suite)  # 60 s trace
        rps = trace.requests_per_second(7.0)
        # ceil(60 / 7) buckets, each exactly 7 s wide (the ninth runs
        # past the trace end), so rate x width recovers every arrival.
        assert len(rps) == 9
        assert np.sum(rps) * 7.0 == pytest.approx(len(trace))

    def test_requests_per_second_divisor_bucket_unchanged(self, suite):
        trace = small_trace(suite)
        rps = trace.requests_per_second(20.0)
        assert len(rps) == 3
        assert np.sum(rps) * 20.0 == pytest.approx(len(trace))


class TestRackSimulation:
    def test_all_requests_complete_with_headroom(self, suite):
        model = ServerlessExecutionModel(platform=dscs_dsa())
        sim = RackSimulation(model, suite, max_instances=50)
        trace = small_trace(suite)
        series = sim.run(trace)
        assert len(series.completed_latency_seconds) == len(trace)
        assert series.dropped_requests == 0

    def test_saturation_builds_queue(self, suite):
        model = ServerlessExecutionModel(platform=baseline_cpu())
        sim = RackSimulation(model, suite, max_instances=2)
        trace = small_trace(suite)
        series = sim.run(trace)
        assert series.queue_depth.max() > 0
        # Queueing inflates latency beyond pure service time.
        assert series.mean_latency_seconds > 0.2

    def test_queue_depth_bounded_and_drops_counted(self, suite):
        model = ServerlessExecutionModel(platform=baseline_cpu())
        sim = RackSimulation(model, suite, max_instances=1, queue_depth=5)
        trace = small_trace(suite)
        series = sim.run(trace)
        assert series.queue_depth.max() <= 5
        assert series.dropped_requests > 0
        completed_plus_dropped = (
            len(series.completed_latency_seconds) + series.dropped_requests
        )
        assert completed_plus_dropped == len(trace)

    def test_dscs_outperforms_baseline_at_scale(self, suite):
        trace = small_trace(suite, scale=0.05)
        base_series = RackSimulation(
            ServerlessExecutionModel(platform=baseline_cpu()), suite, max_instances=10
        ).run(trace)
        dscs_series = RackSimulation(
            ServerlessExecutionModel(platform=dscs_dsa()), suite, max_instances=10
        ).run(trace)
        assert dscs_series.mean_latency_seconds < base_series.mean_latency_seconds
        assert dscs_series.queue_depth.max() <= base_series.queue_depth.max()

    def test_latency_buckets(self, suite):
        model = ServerlessExecutionModel(platform=dscs_dsa())
        sim = RackSimulation(model, suite, max_instances=50)
        series = sim.run(small_trace(suite))
        buckets = series.mean_latency_per_bucket(20.0)
        assert len(buckets) >= 3

    def test_busy_never_exceeds_instances(self, suite):
        model = ServerlessExecutionModel(platform=baseline_cpu())
        sim = RackSimulation(model, suite, max_instances=4)
        series = sim.run(small_trace(suite))
        assert series.busy_instances.max() <= 4

    def test_invalid_configs_rejected(self, suite):
        model = ServerlessExecutionModel(platform=baseline_cpu())
        with pytest.raises(ConfigurationError):
            RackSimulation(model, suite, max_instances=0)
        with pytest.raises(ConfigurationError):
            RackSimulation(model, suite, queue_depth=0)


class TestServiceSamplePool:
    def test_pool_grows_instead_of_wrapping(self, suite):
        from repro.cluster.simulation import _PRESAMPLE_COUNT

        model = ServerlessExecutionModel(platform=dscs_dsa())
        sim = RackSimulation(model, suite, max_instances=4)
        app_name = next(iter(suite))
        draws = [sim._service_time(app_name) for _ in range(_PRESAMPLE_COUNT + 10)]
        pool = sim._service_samples[app_name]
        # Exhausting the initial pool doubled it rather than cycling.
        assert len(pool) == 2 * _PRESAMPLE_COUNT
        # The overflow draws must come from fresh samples, not a replay of
        # the first ten (a wrap would correlate long traces).
        assert draws[_PRESAMPLE_COUNT:] != draws[:10]

    def test_draws_are_sequential_prefix_of_pool(self, suite):
        model = ServerlessExecutionModel(platform=dscs_dsa())
        sim = RackSimulation(model, suite, max_instances=4)
        app_name = next(iter(suite))
        draws = [sim._service_time(app_name) for _ in range(100)]
        pool = sim._service_samples[app_name]
        assert draws == [float(x) for x in pool[:100]]


class TestTraceValidation:
    """Malformed rates and durations fail loudly at construction —
    before they can poison tick grids or Poisson draws downstream."""

    @pytest.mark.parametrize(
        "envelope",
        [
            (100.0, -5.0, 100.0),
            (100.0, float("nan"), 100.0),
            (float("inf"), 100.0),
        ],
    )
    def test_negative_or_non_finite_rate_rejected(self, suite, envelope):
        with pytest.raises(ConfigurationError, match="rate"):
            TraceGenerator(list(suite), rate_envelope=envelope)

    def test_zero_rate_segment_is_legal(self, suite):
        generator = TraceGenerator(
            list(suite), rate_envelope=(0.0, 5.0), segment_seconds=10.0
        )
        trace = generator.generate(np.random.default_rng(0))
        assert np.all(trace.arrival_seconds >= 10.0)

    @pytest.mark.parametrize(
        "segment", [0.0, -30.0, float("nan"), float("inf")]
    )
    def test_invalid_segment_rejected(self, suite, segment):
        with pytest.raises(ConfigurationError, match="segment"):
            TraceGenerator(
                list(suite), rate_envelope=(5.0,), segment_seconds=segment
            )

    @pytest.mark.parametrize("duration", [float("nan"), -1.0])
    def test_invalid_trace_duration_rejected(self, duration):
        from repro.cluster.trace import RequestTrace

        with pytest.raises(ConfigurationError, match="duration"):
            RequestTrace(
                arrival_seconds=np.array([0.5]),
                app_names=("f",),
                duration_seconds=duration,
            )

    def test_mismatched_lengths_rejected(self):
        from repro.cluster.trace import RequestTrace

        with pytest.raises(ConfigurationError):
            RequestTrace(
                arrival_seconds=np.array([0.5, 1.0]),
                app_names=("f",),
                duration_seconds=10.0,
            )


class TestAvailabilityEdgeCases:
    """An empty trace (or bucket) has nothing to account for, so
    availability is undefined rather than perfect: NaN, never 1.0."""

    def test_empty_trace_availability_is_nan(self, suite):
        from repro.cluster.trace import RequestTrace

        model = ServerlessExecutionModel(platform=baseline_cpu())
        trace = RequestTrace(
            arrival_seconds=np.array([]),
            app_names=(),
            duration_seconds=10.0,
        )
        series = RackSimulation(model, suite, max_instances=4).run(trace)
        assert series.total_requests == 0
        assert np.isnan(series.availability)

    def test_zero_request_series_availability_is_nan(self):
        from repro.cluster.simulation import SimulationSeries

        series = SimulationSeries(
            sample_times=np.array([]),
            queue_depth=np.array([], dtype=np.int64),
            busy_instances=np.array([], dtype=np.int64),
            completed_latency_seconds=np.array([]),
            completed_times=np.array([]),
            dropped_requests=0,
            total_requests=0,
        )
        assert np.isnan(series.availability)

    def test_nonempty_series_availability_is_a_fraction(self, suite):
        model = ServerlessExecutionModel(platform=baseline_cpu())
        series = RackSimulation(model, suite, max_instances=4).run(
            small_trace(suite)
        )
        assert 0.0 < series.availability <= 1.0

    def test_buckets_without_terminations_are_nan(self):
        from repro.cluster.simulation import SimulationSeries

        series = SimulationSeries(
            sample_times=np.arange(0.0, 200.0),
            queue_depth=np.zeros(200, dtype=np.int64),
            busy_instances=np.zeros(200, dtype=np.int64),
            completed_latency_seconds=np.array([0.2]),
            completed_times=np.array([10.0]),
            dropped_requests=0,
            total_requests=1,
        )
        per_bucket = series.availability_per_bucket(60.0)
        assert len(per_bucket) == 4
        assert per_bucket[0] == pytest.approx(1.0)
        # No request completed or dropped in the later buckets: their
        # availability is undefined, not a silent 100%.
        assert np.all(np.isnan(per_bucket[1:]))

    def test_empty_series_per_bucket_is_empty(self):
        from repro.cluster.simulation import SimulationSeries

        series = SimulationSeries(
            sample_times=np.array([]),
            queue_depth=np.array([], dtype=np.int64),
            busy_instances=np.array([], dtype=np.int64),
            completed_latency_seconds=np.array([]),
            completed_times=np.array([]),
            dropped_requests=0,
            total_requests=0,
        )
        assert len(series.availability_per_bucket(60.0)) == 0
