"""End-to-end ServerlessPlatform facade: deploy, upload, invoke."""

import numpy as np
import pytest

from repro.errors import DeploymentError
from repro.experiments.benchmarks import build_application
from repro.platforms.registry import baseline_cpu, dscs_dsa
from repro.serverless.runtime import ServerlessPlatform
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore


@pytest.fixture()
def platform():
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(2)]
    nodes.append(StorageNode(drives=[SSDDrive(), DSCSDrive()]))
    return ServerlessPlatform(
        store=ObjectStore(nodes),
        accelerated_platform=dscs_dsa(),
        fallback_platform=baseline_cpu(),
    )


@pytest.fixture()
def app():
    return build_application("Clinical Analysis")


def test_deploy_and_list(platform, app):
    platform.deploy(app)
    assert app.name in platform.deployed_applications()


def test_double_deploy_rejected(platform, app):
    platform.deploy(app)
    with pytest.raises(DeploymentError):
        platform.deploy(app)


def test_invoke_undeployed_rejected(platform):
    with pytest.raises(DeploymentError):
        platform.invoke("ghost", "key", np.random.default_rng(0))


def test_upload_places_dscs_replica(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    meta = platform.store.get_meta(key)
    assert meta.accelerated_replica() is not None


def test_accelerated_invocation_path(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    result = platform.invoke(app.name, key, np.random.default_rng(1))
    assert result.platform == "DSCS-Serverless"
    scraped = platform.telemetry.scrape()
    assert sum(scraped.get("accelerated_invocations", {}).values()) == 1


def test_fallback_when_no_dscs_replica(app):
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(3)]
    platform = ServerlessPlatform(
        store=ObjectStore(nodes),
        accelerated_platform=dscs_dsa(),
        fallback_platform=baseline_cpu(),
    )
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    result = platform.invoke(app.name, key, np.random.default_rng(1))
    assert result.platform == "Baseline (CPU)"
    scraped = platform.telemetry.scrape()
    assert sum(scraped.get("fallback_invocations", {}).values()) == 1


def test_busy_drive_falls_back(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    meta = platform.store.get_meta(key)
    meta.accelerated_replica().drive.mark_busy()
    result = platform.invoke(app.name, key, np.random.default_rng(2))
    assert result.platform == "Baseline (CPU)"
    meta.accelerated_replica().drive.mark_idle()


def test_drive_released_after_invocation(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    platform.invoke(app.name, key, np.random.default_rng(3))
    meta = platform.store.get_meta(key)
    assert not meta.accelerated_replica().drive.busy


def test_accelerated_faster_than_fallback(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    rng = np.random.default_rng(4)
    accelerated = platform.invoke(app.name, key, rng)
    meta = platform.store.get_meta(key)
    meta.accelerated_replica().drive.mark_busy()
    fallback = platform.invoke(app.name, key, rng)
    meta.accelerated_replica().drive.mark_idle()
    assert accelerated.latency_seconds < fallback.latency_seconds


def test_invocation_counter_accumulates(platform, app):
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)
    rng = np.random.default_rng(5)
    for _ in range(3):
        platform.invoke(app.name, key, rng)
    assert platform.telemetry.counter("invocations", app.name) == 3
