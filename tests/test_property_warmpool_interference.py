"""Property-based tests for the warm pool and interference models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.interference import (
    CoLocatedFunctionLoad,
    StorageNodeCPU,
    StorageTrafficProfile,
)
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.warmpool import WarmPool


@settings(max_examples=40, deadline=None)
@given(
    gaps=st.lists(
        st.floats(min_value=0.1, max_value=2000.0), min_size=1, max_size=40
    ),
    window=st.floats(min_value=1.0, max_value=1000.0),
)
def test_cold_count_matches_gap_analysis(gaps, window):
    """For a single function, cold starts are exactly: the first
    invocation plus every gap exceeding the keep-alive window.

    The expected count is derived from the *realised* gaps
    (``np.diff`` of the cumulative timeline the pool actually sees):
    accumulating gaps through ``cumsum`` rounds in float64, so a gap
    exactly equal to the window can land a hair above or below it.
    """
    pool = WarmPool(coldstart=ColdStartModel(warm_window_seconds=window))
    times = np.cumsum(gaps)
    timeline = [(float(t), "f") for t in times]
    stats = pool.replay(timeline)
    expected_cold = 1 + int(np.sum(np.diff(times) > window))
    assert stats.cold_invocations == expected_cold


@settings(max_examples=40, deadline=None)
@given(
    names=st.lists(
        st.sampled_from(["a", "b", "c", "d"]), min_size=1, max_size=60
    )
)
def test_cold_fraction_bounded(names):
    pool = WarmPool(coldstart=ColdStartModel(warm_window_seconds=50.0))
    timeline = [(float(i), name) for i, name in enumerate(names)]
    stats = pool.replay(timeline)
    assert 0.0 <= stats.cold_fraction <= 1.0
    assert stats.flash_reloads <= stats.cold_invocations
    # At least one cold start per distinct function.
    assert stats.cold_invocations >= len(set(names))


@settings(max_examples=40, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=20.0),
    per_invocation=st.floats(min_value=0.0, max_value=0.2),
)
def test_interference_monotone_in_co_located_load(rate, per_invocation):
    cpu = StorageNodeCPU(cores=8)
    traffic = StorageTrafficProfile()
    light = CoLocatedFunctionLoad(rate, per_invocation)
    heavy = CoLocatedFunctionLoad(rate, per_invocation * 2 + 0.01)
    light_result = cpu.interference(traffic, light)
    heavy_result = cpu.interference(traffic, heavy)
    if not heavy_result.saturated:
        assert (
            heavy_result.combined_latency_seconds
            >= light_result.combined_latency_seconds
        )
    assert light_result.baseline_latency_seconds == pytest.approx(
        heavy_result.baseline_latency_seconds
    )


@settings(max_examples=30, deadline=None)
@given(cores=st.integers(min_value=1, max_value=64))
def test_more_cores_never_hurt(cores):
    traffic = StorageTrafficProfile(requests_per_second=500)
    load = CoLocatedFunctionLoad(5.0, 0.02)
    small = StorageNodeCPU(cores=cores).interference(traffic, load)
    large = StorageNodeCPU(cores=cores + 8).interference(traffic, load)
    if not small.saturated:
        assert (
            large.combined_latency_seconds <= small.combined_latency_seconds
        )
