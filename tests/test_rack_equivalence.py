"""The vectorized FCFS rack engine must be bit-identical to the oracle.

Every series the event-driven reference produces — sample times, queue
depth, busy instances, completion times, latencies — plus the drop count,
the RNG end state, and the service-sample pool state must match exactly
across seeds, rate scales, fleet sizes, and both platforms, in headroom,
saturation, and drop regimes.  Non-FCFS policies must transparently fall
back to the event-driven path.
"""

import numpy as np
import pytest

from repro.cluster.fast_engine import sample_tick_times
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.cluster.schedulers import FCFSPolicy, PolicyFactory
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu, dscs_dsa

SEEDS = (1, 2, 3)
RATE_SCALES = (0.02, 0.05)

PLATFORM_BUILDERS = {
    "baseline": baseline_cpu,
    "dscs": dscs_dsa,
}


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def models():
    return {
        name: ServerlessExecutionModel(platform=builder())
        for name, builder in PLATFORM_BUILDERS.items()
    }


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def run_both(model, suite, trace, **kwargs):
    """One fresh simulation per engine; returns (sims, series) pairs."""
    runs = {}
    for engine in ("event", "vectorized"):
        sim = RackSimulation(model, suite, **kwargs)
        runs[engine] = (sim, sim.run(trace, engine=engine))
    return runs


def assert_bit_identical(runs):
    event_sim, event_series = runs["event"]
    fast_sim, fast_series = runs["vectorized"]
    assert event_series.identical_to(fast_series)
    # Identity must extend to simulator state: the same RNG stream was
    # consumed in the same order, leaving the same pools behind.
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )
    assert event_sim._service_cursor == fast_sim._service_cursor
    assert set(event_sim._service_samples) == set(fast_sim._service_samples)
    for name, pool in event_sim._service_samples.items():
        assert np.array_equal(pool, fast_sim._service_samples[name])


@pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
@pytest.mark.parametrize("rate_scale", RATE_SCALES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_identical_across_seeds_scales_platforms(
    suite, models, platform, rate_scale, seed
):
    trace = make_trace(suite, rate_scale, seed)
    runs = run_both(
        models[platform], suite, trace, max_instances=4, seed=seed
    )
    assert_bit_identical(runs)
    assert runs["event"][1].total_requests == len(trace)


@pytest.mark.parametrize("seed", SEEDS)
def test_engines_identical_under_drops(suite, models, seed):
    """Full-queue admission control: same drops, bit for bit."""
    trace = make_trace(suite, 0.05, seed)
    runs = run_both(
        models["baseline"],
        suite,
        trace,
        max_instances=1,
        queue_depth=5,
        seed=seed,
    )
    assert_bit_identical(runs)
    assert runs["event"][1].dropped_requests > 0


def test_engines_identical_with_headroom(suite, models):
    """A fleet that never saturates exercises the contention-free pass."""
    trace = make_trace(suite, 0.02, 1)
    runs = run_both(models["dscs"], suite, trace, max_instances=50, seed=1)
    assert_bit_identical(runs)
    assert runs["event"][1].dropped_requests == 0
    assert int(runs["event"][1].queue_depth.max()) == 0


def test_engines_identical_on_empty_trace(suite, models):
    trace = RequestTrace(
        arrival_seconds=np.array([]), app_names=(), duration_seconds=60.0
    )
    runs = run_both(models["dscs"], suite, trace, max_instances=4, seed=1)
    assert_bit_identical(runs)
    assert len(runs["vectorized"][1].sample_times) == 60


def test_engines_identical_across_repeated_runs(suite, models):
    """Pools persist across run() calls; both engines must agree then too."""
    first = make_trace(suite, 0.02, 1)
    second = make_trace(suite, 0.02, 2)
    event_sim = RackSimulation(models["baseline"], suite, max_instances=4, seed=9)
    fast_sim = RackSimulation(models["baseline"], suite, max_instances=4, seed=9)
    for trace in (first, second):
        event_series = event_sim.run(trace, engine="event")
        fast_series = fast_sim.run(trace, engine="vectorized")
        assert event_series.identical_to(fast_series)
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )


def test_auto_engine_matches_both(suite, models):
    trace = make_trace(suite, 0.02, 2)
    auto = RackSimulation(models["baseline"], suite, max_instances=4, seed=2)
    auto_series = auto.run(trace)  # engine defaults to "auto"
    runs = run_both(models["baseline"], suite, trace, max_instances=4, seed=2)
    assert auto_series.identical_to(runs["event"][1])
    assert auto_series.identical_to(runs["vectorized"][1])


def test_non_fcfs_policy_falls_back_transparently(suite, models):
    """engine="vectorized" with SJF must still produce SJF results."""
    trace = make_trace(suite, 0.02, 3)
    estimates = {
        name: float(
            np.mean(
                models["baseline"].sample_latencies(
                    app, np.random.default_rng(0), 64
                )
            )
        )
        for name, app in suite.items()
    }
    policy = PolicyFactory("sjf", service_estimates=estimates)

    def sjf_run(engine):
        sim = RackSimulation(
            models["baseline"], suite, max_instances=2, seed=3, policy=policy
        )
        return sim.run(trace, engine=engine)

    via_vectorized = sjf_run("vectorized")
    via_event = sjf_run("event")
    assert via_vectorized.identical_to(via_event)
    # SJF genuinely reorders under contention, so the fallback really ran
    # the policy (a silent FCFS run would differ).
    fcfs = RackSimulation(
        models["baseline"], suite, max_instances=2, seed=3
    ).run(trace, engine="event")
    assert not np.array_equal(
        via_event.completed_latency_seconds, fcfs.completed_latency_seconds
    )


def test_explicit_fcfs_policy_still_vectorizable(suite, models):
    """PolicyFactory("fcfs") builds an FCFS queue -> fast path applies."""
    trace = make_trace(suite, 0.02, 1)
    with_factory = RackSimulation(
        models["baseline"],
        suite,
        max_instances=4,
        seed=1,
        policy=PolicyFactory("fcfs"),
    ).run(trace, engine="vectorized")
    plain = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1
    ).run(trace, engine="event")
    assert with_factory.identical_to(plain)


def test_unsorted_trace_falls_back_to_event_engine(suite, models):
    """The fast engine assumes time-ordered arrivals; others fall back."""
    base = make_trace(suite, 0.02, 1)
    shuffled = RequestTrace(
        arrival_seconds=base.arrival_seconds[::-1].copy(),
        app_names=tuple(reversed(base.app_names)),
        duration_seconds=base.duration_seconds,
    )
    sim = RackSimulation(models["baseline"], suite, max_instances=4, seed=1)
    assert not sim._vectorizable(FCFSPolicy(), shuffled)
    fast = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1
    ).run(shuffled, engine="vectorized")
    event = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1
    ).run(shuffled, engine="event")
    assert fast.identical_to(event)


def test_unknown_engine_rejected(suite, models):
    sim = RackSimulation(models["baseline"], suite)
    with pytest.raises(ConfigurationError):
        sim.run(make_trace(suite, 0.02, 1), engine="warp")


class TestSampleTicks:
    def test_integral_interval(self):
        ticks = sample_tick_times(60.0, 1.0)
        assert len(ticks) == 60
        assert ticks[0] == 1.0 and ticks[-1] == 60.0

    def test_fractional_interval_is_drift_free(self):
        ticks = sample_tick_times(10.0, 0.1)
        assert len(ticks) == 100
        # 0.1 accumulated 100x drifts past 10.0; arange-scaling does not.
        assert ticks[-1] == pytest.approx(10.0)
        assert np.all(np.diff(ticks) > 0)

    def test_horizon_shorter_than_interval(self):
        assert len(sample_tick_times(0.5, 1.0)) == 0

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            sample_tick_times(10.0, 0.0)
