"""Fan-out + warm-pool interaction with the benchmark suite.

Ties the §5.2/§5.3 features to realistic request patterns: a bursty day
of traffic replayed against the warm pool, and fan-out on the multi-chunk
regime that would otherwise force CPU fall-back.
"""

import numpy as np
import pytest

from repro.cluster.trace import TraceGenerator
from repro.core.fanout import FanoutExecution
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import dscs_dsa
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.warmpool import WarmPool


def test_trace_replay_cold_fraction_is_tiny_for_hot_suite():
    """Sustained traffic keeps all eight functions warm after warm-up."""
    suite = benchmark_suite()
    generator = TraceGenerator(
        list(suite), rate_envelope=(2.0, 2.0, 2.0), segment_seconds=60.0
    )
    trace = generator.generate(np.random.default_rng(0))
    pool = WarmPool(
        coldstart=ColdStartModel(warm_window_seconds=600.0), capacity=16
    )
    timeline = list(zip(trace.arrival_seconds, trace.app_names))
    stats = pool.replay(timeline)
    # Only the initial cold start per application.
    assert stats.cold_invocations == len(suite)
    assert stats.cold_fraction < 0.05


def test_sparse_traffic_pays_repeated_cold_starts():
    """Invocations spaced beyond the keep-alive window stay cold."""
    pool = WarmPool(coldstart=ColdStartModel(warm_window_seconds=60.0))
    timeline = [(float(i * 600), "sparse-fn") for i in range(10)]
    stats = pool.replay(timeline)
    assert stats.cold_invocations == 10
    # After the first eviction the image is parked on flash: P2P reloads.
    assert stats.flash_reloads == 9


def test_fanout_beats_single_drive_only_for_large_payloads():
    suite = benchmark_suite()
    model = ServerlessExecutionModel(platform=dscs_dsa())
    heavy = suite["Content Moderation"]  # 16 MB
    light = suite["Conversational Chatbot"]  # 512 KB

    def latency(app, drives):
        runner = FanoutExecution(model=model, num_drives=drives)
        return runner.invoke(app, np.random.default_rng(1)).latency_seconds

    heavy_gain = latency(heavy, 1) / latency(heavy, 4)
    light_gain = latency(light, 1) / latency(light, 4)
    assert heavy_gain > light_gain


def test_fanout_latency_still_dominated_by_shared_stages():
    """The notification stage and stack are not parallelisable, bounding
    fan-out gains (Amdahl again, now inside DSCS)."""
    suite = benchmark_suite()
    model = ServerlessExecutionModel(platform=dscs_dsa())
    app = suite["PPE Detection"]
    single = FanoutExecution(model=model, num_drives=1).invoke(
        app, np.random.default_rng(2)
    )
    wide = FanoutExecution(model=model, num_drives=16).invoke(
        app, np.random.default_rng(2)
    )
    assert wide.latency_seconds > single.latency_seconds / 8
