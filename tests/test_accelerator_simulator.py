"""Cycle-simulator semantics: overlap, barriers, energy accounting."""

import pytest

from repro.accelerator.config import DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.accelerator.simulator import CycleSimulator


def simulator():
    return CycleSimulator(DSAConfig())


def program(instructions, name="test"):
    return Program(name, list(instructions) + [Halt("end")])


def test_compute_waits_for_its_load():
    sim = simulator()
    report = sim.run(
        program([LoadTile("op", num_bytes=38_000), GemmTile("op", m=1, n=1, k=1)])
    )
    # 38 kB at 38 B/cycle = 1000 cycles of DMA before compute can start.
    assert report.cycles >= 1000


def test_dma_overlaps_with_prior_compute():
    sim = simulator()
    load = LoadTile("op", num_bytes=38_000)  # 1000 cycles
    big_gemm = GemmTile("op", m=4096, n=128, k=128)  # >4000 cycles
    serial = sim.run(program([load, big_gemm, Sync("s"), load, big_gemm]))
    pipelined = sim.run(program([load, big_gemm, load, big_gemm]))
    assert pipelined.cycles < serial.cycles


def test_sync_forces_barrier():
    sim = simulator()
    instrs = [LoadTile("op", num_bytes=38_000), GemmTile("op", m=128, n=128, k=128)]
    with_sync = sim.run(program(instrs + [Sync("s")] + instrs))
    assert with_sync.cycles > 0


def test_store_waits_for_compute():
    sim = simulator()
    report = sim.run(
        program(
            [
                GemmTile("op", m=4096, n=128, k=128),
                StoreTile("op", num_bytes=38),
            ]
        )
    )
    gemm_only = sim.run(program([GemmTile("op", m=4096, n=128, k=128)]))
    assert report.cycles > gemm_only.cycles


def test_fused_vector_op_skips_dma_wait():
    sim = simulator()
    load = LoadTile("op", num_bytes=380_000)  # 10k cycles of DMA
    gemm = GemmTile("op", m=1, n=1, k=1)
    fused = sim.run(
        program([gemm, load, VectorOp("v", elements=128, fused=True)])
    )
    unfused = sim.run(
        program([gemm, load, VectorOp("v", elements=128, fused=False)])
    )
    assert fused.compute_cycles == unfused.compute_cycles
    # The unfused op waits on the big DMA; the fused one does not, so the
    # fused program's critical path is just the DMA stream.
    assert fused.cycles <= unfused.cycles


def test_energy_positive_and_composed():
    sim = simulator()
    report = sim.run(
        program(
            [
                LoadTile("op", num_bytes=1_000_000),
                GemmTile("op", m=512, n=128, k=128),
                StoreTile("op", num_bytes=10_000),
            ]
        )
    )
    assert report.energy_j > 0
    assert report.energy.dram_j > 0
    assert report.energy.mac_j > 0
    assert report.energy.leakage_j > 0


def test_report_totals_match_program():
    sim = simulator()
    prog = program(
        [
            LoadTile("op", num_bytes=100),
            GemmTile("op", m=2, n=3, k=4),
            VectorOp("v", elements=7, cost_per_element=3),
            StoreTile("op", num_bytes=50),
        ]
    )
    report = sim.run(prog)
    assert report.total_macs == 24
    assert report.total_vector_ops == 21
    assert report.dram_bytes == 150


def test_per_op_cycles_recorded():
    sim = simulator()
    report = sim.run(
        program([GemmTile("conv1", m=16, n=16, k=16),
                 VectorOp("relu1", elements=256)])
    )
    assert "conv1" in report.per_op_cycles
    assert "relu1" in report.per_op_cycles
    assert report.per_op_cycles["conv1"] > 0


def test_empty_program_rejected():
    sim = simulator()
    from repro.errors import CompilationError

    with pytest.raises(CompilationError):
        sim.run(Program("empty", []))


def test_latency_consistent_with_cycles():
    sim = simulator()
    report = sim.run(program([GemmTile("op", m=128, n=128, k=128)]))
    assert report.latency_s == pytest.approx(report.cycles / 1e9)


def test_utilization_in_unit_interval():
    sim = simulator()
    report = sim.run(program([GemmTile("op", m=2048, n=128, k=128)]))
    assert 0 < report.mpu_utilization <= 1.0


def test_higher_bandwidth_reduces_dma_bound_latency():
    from repro.accelerator.config import DDR4, HBM2

    slow = CycleSimulator(DSAConfig(memory=DDR4))
    fast = CycleSimulator(DSAConfig(memory=HBM2))
    prog = program([LoadTile("op", num_bytes=50_000_000),
                    GemmTile("op", m=1, n=1, k=1)])
    assert fast.run(prog).cycles < slow.run(prog).cycles
