"""Cross-cutting property-based invariants on the core data structures.

These are the "laws" of the system: monotonicity of latency in payload
size and batch, conservation of work through compilation, scheduler
conservation of requests, and simulator determinism.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import DSAConfig, paper_design_point
from repro.compiler.codegen import generate
from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import build_application
from repro.models.builder import GraphBuilder
from repro.models.tensor import DType, TensorSpec
from repro.platforms.registry import baseline_cpu, dscs_dsa


@settings(max_examples=25, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=256),
    k=st.integers(min_value=1, max_value=256),
    n=st.integers(min_value=1, max_value=256),
)
def test_compilation_conserves_macs(m, k, n):
    """Tiling and padding never change the MAC count."""
    builder = GraphBuilder("g", TensorSpec("x", (m, k), DType.INT8))
    builder.linear(n)
    graph = builder.build()
    program = generate(graph, paper_design_point())
    macs, _, _ = program.totals()
    assert macs == graph.stats().total_macs


@settings(max_examples=15, deadline=None)
@given(
    rows=st.sampled_from([16, 32, 64, 128]),
    cols=st.sampled_from([16, 32, 64, 128]),
)
def test_compiled_latency_positive_on_any_array(rows, cols):
    from repro.compiler import compile_graph

    builder = GraphBuilder("g", TensorSpec("x", (64, 96), DType.INT8))
    builder.linear(80).relu()
    report = compile_graph(builder.build(), DSAConfig(pe_rows=rows, pe_cols=cols)).simulate()
    assert report.latency_s > 0
    assert report.total_macs == 64 * 96 * 80


@settings(max_examples=10, deadline=None)
@given(payload=st.integers(min_value=1, max_value=32 * 1024 * 1024))
def test_remote_read_monotone_in_payload(payload):
    fabric = StorageFabric()
    smaller = fabric.median_remote_read_seconds(payload)
    larger = fabric.median_remote_read_seconds(payload + 1024 * 1024)
    assert larger > smaller


@settings(max_examples=10, deadline=None)
@given(multiplier=st.floats(min_value=0.2, max_value=10.0))
def test_remote_read_monotone_in_congestion(multiplier):
    fabric = StorageFabric()
    base = fabric.remote_read_with_multiplier(1024 * 1024, multiplier)
    heavier = fabric.remote_read_with_multiplier(1024 * 1024, multiplier * 1.5)
    assert heavier > base


@pytest.mark.parametrize("platform_builder", [baseline_cpu, dscs_dsa])
def test_e2e_latency_monotone_in_batch(platform_builder):
    app = build_application("Clinical Analysis")
    model = ServerlessExecutionModel(platform=platform_builder())
    rng = np.random.default_rng(0)
    latencies = [
        model.invoke(app, np.random.default_rng(0), batch=b).latency_seconds
        for b in (1, 4, 16)
    ]
    assert latencies == sorted(latencies)


def test_per_sample_latency_improves_with_batch():
    app = build_application("Conversational Chatbot")
    model = ServerlessExecutionModel(platform=dscs_dsa())
    per_sample = [
        model.invoke(app, np.random.default_rng(0), batch=b).latency_seconds / b
        for b in (1, 8, 32)
    ]
    assert per_sample == sorted(per_sample, reverse=True)


def test_invoke_deterministic_for_fixed_seed():
    app = build_application("Remote Sensing")
    model = ServerlessExecutionModel(platform=baseline_cpu())
    a = model.invoke(app, np.random.default_rng(123)).latency_seconds
    b = model.invoke(app, np.random.default_rng(123)).latency_seconds
    assert a == b


def test_sample_latencies_deterministic_for_fixed_seed():
    app = build_application("Remote Sensing")
    model = ServerlessExecutionModel(platform=baseline_cpu())
    a = model.sample_latencies(app, np.random.default_rng(9), 64)
    b = model.sample_latencies(app, np.random.default_rng(9), 64)
    assert np.array_equal(a, b)


def test_energy_positive_across_all_platforms():
    from repro.platforms.registry import table2_platforms

    app = build_application("Document Translation")
    for platform in table2_platforms():
        model = ServerlessExecutionModel(platform=platform)
        result = model.invoke(app, np.random.default_rng(1))
        assert result.energy_joules > 0, platform.name


def test_cold_always_slower_than_warm_across_platforms():
    from repro.platforms.registry import table2_platforms

    app = build_application("Asset Damage Detection")
    for platform in table2_platforms():
        model = ServerlessExecutionModel(platform=platform)
        warm = model.invoke(app, np.random.default_rng(2)).latency_seconds
        cold = model.invoke(app, np.random.default_rng(2), cold=True).latency_seconds
        assert cold > warm, platform.name


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_breakdown_total_is_sum_of_components(seed):
    app = build_application("Credit Risk Assessment")
    model = ServerlessExecutionModel(platform=dscs_dsa())
    result = model.invoke(app, np.random.default_rng(seed))
    assert result.latency_seconds == pytest.approx(
        sum(result.latency.seconds.values())
    )
