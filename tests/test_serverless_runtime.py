"""Driver, cold starts, telemetry, and the function placer."""

import pytest

from repro.errors import ConfigurationError
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.deployment import DeploymentManifest
from repro.serverless.driver import OpenCLDriver
from repro.serverless.function import FunctionRole, ServerlessFunction
from repro.serverless.scheduler import FunctionPlacer, PlacementTarget
from repro.serverless.telemetry import TelemetryRegistry
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore
from repro.models.zoo import logistic_regression
from repro.units import MB


class TestDriver:
    def test_round_trip_is_dispatch_plus_completion(self):
        driver = OpenCLDriver()
        assert driver.round_trip_seconds() == pytest.approx(
            driver.dispatch_seconds() + driver.completion_seconds()
        )

    def test_costs_in_millisecond_band(self):
        # The paper attributes visible overhead to the in-storage driver.
        assert 0.5e-3 < OpenCLDriver().round_trip_seconds() < 5e-3

    def test_negative_cost_rejected(self):
        with pytest.raises(ConfigurationError):
            OpenCLDriver(syscall_seconds=-1.0)


class TestColdStart:
    def test_cold_start_composition(self):
        model = ColdStartModel()
        total = model.cold_start_seconds(256 * MB)
        assert total > model.pull_seconds(256 * MB)
        assert total > model.health_check_seconds

    def test_bigger_images_cost_more(self):
        model = ColdStartModel()
        assert model.cold_start_seconds(512 * MB) > model.cold_start_seconds(64 * MB)

    def test_p2p_reload_beats_network_pull(self):
        model = ColdStartModel()
        drive = DSCSDrive()
        image = 256 * MB
        assert model.p2p_reload_seconds(image, drive) < model.cold_start_seconds(image)

    def test_warm_window(self):
        model = ColdStartModel(warm_window_seconds=600)
        assert model.is_warm(10)
        assert not model.is_warm(601)

    def test_negative_idle_rejected(self):
        with pytest.raises(ConfigurationError):
            ColdStartModel().is_warm(-1)

    def test_negative_image_rejected(self):
        with pytest.raises(ConfigurationError):
            ColdStartModel().pull_seconds(-1)


class TestTelemetry:
    def test_counters_accumulate(self):
        registry = TelemetryRegistry()
        registry.inc_counter("invocations", "node-1")
        registry.inc_counter("invocations", "node-1", 2)
        assert registry.counter("invocations", "node-1") == 3

    def test_counters_cannot_decrease(self):
        registry = TelemetryRegistry()
        with pytest.raises(ConfigurationError):
            registry.inc_counter("invocations", "node-1", -1)

    def test_busy_gauge(self):
        registry = TelemetryRegistry()
        registry.mark_busy("node-1", True)
        assert registry.is_busy("node-1")
        registry.mark_busy("node-1", False)
        assert not registry.is_busy("node-1")

    def test_health_defaults_to_healthy(self):
        assert TelemetryRegistry().is_healthy("unknown-node")

    def test_scrape_groups_by_metric(self):
        registry = TelemetryRegistry()
        registry.inc_counter("invocations", "a")
        registry.set_gauge("queue", "b", 7)
        snapshot = registry.scrape()
        assert snapshot["invocations"]["a"] == 1
        assert snapshot["queue"]["b"] == 7


def build_store(with_dscs=True):
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(2)]
    if with_dscs:
        nodes.append(StorageNode(drives=[DSCSDrive()]))
    return ObjectStore(nodes)


def acceleratable_function():
    return ServerlessFunction(
        name="f/infer",
        role=FunctionRole.INFERENCE,
        graph=logistic_regression(rows=64, features=8),
        acceleratable=True,
    )


class TestPlacer:
    def test_places_on_dsa_when_data_colocated(self):
        store = build_store()
        store.put("obj", 1 * MB, acceleratable=True)
        placer = FunctionPlacer(store=store)
        decision = placer.place(acceleratable_function(), "obj")
        assert decision.target is PlacementTarget.IN_STORAGE_DSA
        assert decision.drive is not None

    def test_non_acceleratable_goes_to_compute(self):
        store = build_store()
        store.put("obj", 1 * MB)
        function = ServerlessFunction(name="f", role=FunctionRole.NOTIFICATION)
        decision = FunctionPlacer(store=store).place(function, "obj")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_no_dscs_replica_falls_back(self):
        store = build_store(with_dscs=False)
        store.put("obj", 1 * MB, acceleratable=True)
        decision = FunctionPlacer(store=store).place(acceleratable_function(), "obj")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_busy_dsa_falls_back(self):
        store = build_store()
        meta = store.put("obj", 1 * MB, acceleratable=True)
        meta.accelerated_replica().drive.mark_busy()
        decision = FunctionPlacer(store=store).place(acceleratable_function(), "obj")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_unhealthy_node_fails_over(self):
        store = build_store()
        meta = store.put("obj", 1 * MB, acceleratable=True)
        node_id = meta.accelerated_replica().node.node_id
        placer = FunctionPlacer(store=store)
        placer.telemetry.mark_healthy(f"storage-node-{node_id}", False)
        decision = placer.place(acceleratable_function(), "obj")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_multi_chunk_data_falls_back(self):
        store = ObjectStore(
            [StorageNode(drives=[DSCSDrive()])], chunk_bytes=1 * MB
        )
        store.put("big", 10 * MB, acceleratable=True)
        decision = FunctionPlacer(store=store).place(acceleratable_function(), "big")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_manifest_can_veto_acceleration(self):
        store = build_store()
        store.put("obj", 1 * MB, acceleratable=True)
        function = acceleratable_function()
        from repro.serverless.application import Application

        app = Application.chain(
            "a", [function], input_bytes=MB, edge_bytes=(1024,)
        )
        manifest = DeploymentManifest.for_application(app, accelerate=False)
        decision = FunctionPlacer(store=store).place(function, "obj", manifest)
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_chain_requires_all_acceleratable(self):
        store = build_store()
        store.put("obj", 1 * MB, acceleratable=True)
        chain = [
            acceleratable_function(),
            ServerlessFunction(name="f/notify", role=FunctionRole.NOTIFICATION),
        ]
        decision = FunctionPlacer(store=store).place_chain(chain, "obj")
        assert decision.target is PlacementTarget.COMPUTE_NODE

    def test_chain_of_acceleratable_lands_on_dsa(self):
        store = build_store()
        store.put("obj", 1 * MB, acceleratable=True)
        chain = [acceleratable_function(), acceleratable_function()]
        decision = FunctionPlacer(store=store).place_chain(chain, "obj")
        assert decision.target is PlacementTarget.IN_STORAGE_DSA
