"""Fleet layer: topology, global load balancer, sharded runner, stitch.

The load-bearing guarantees:

- the load balancer's assignment is a pure function of (policy, seed,
  trace, topology) — deterministic, process-stable, worker-independent;
- the sharded runner (``workers=4``) is bit-identical to the serial
  oracle stitch (``workers=1``): same per-rack check hashes, same
  merged fleet hash — and the event-driven engine stitches to the same
  hashes as the vectorized one;
- merged quantile sketches match exact-mode percentiles within the
  sketch's documented bin-resolution bound.
"""

import numpy as np
import pytest

from repro.cluster.fleet import (
    LB_POLICIES,
    FleetTopology,
    GlobalLoadBalancer,
    RackSpec,
    derive_rack_seed,
)
from repro.cluster.fleet_engine import FleetRunner
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.errors import ConfigurationError
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context


@pytest.fixture(scope="module")
def context():
    return build_context(platform_names=[BASELINE_NAME, DSCS_NAME])


@pytest.fixture(scope="module")
def trace(context):
    envelope = tuple(
        rate * 0.04
        for rate in (250, 320, 420, 560, 700, 800, 780, 650, 520, 430)
    )
    generator = TraceGenerator(
        context.app_names, rate_envelope=envelope, segment_seconds=30.0
    )
    return generator.generate(np.random.default_rng(13))


def small_topology(platform, racks=4, **kwargs):
    kwargs.setdefault("max_instances", 8)
    kwargs.setdefault("seed", 13)
    return FleetTopology.uniform(racks, platform, **kwargs)


class TestTopology:
    def test_uniform_names_and_seeds_distinct(self):
        topology = small_topology(BASELINE_NAME, racks=6)
        names = [rack.name for rack in topology.racks]
        assert names == [f"rack-{i:03d}" for i in range(6)]
        seeds = [topology.rack_seed(i) for i in range(6)]
        assert len(set(seeds)) == 6
        assert all(seed >= 0 for seed in seeds)

    def test_rack_seed_is_pure(self):
        assert derive_rack_seed(13, 3) == derive_rack_seed(13, 3)
        assert derive_rack_seed(13, 3) != derive_rack_seed(14, 3)
        assert derive_rack_seed(13, 3) != derive_rack_seed(13, 4)

    def test_total_instances(self):
        topology = small_topology(BASELINE_NAME, racks=3, max_instances=5)
        assert topology.total_instances == 15

    def test_empty_fleet_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetTopology(racks=())

    def test_duplicate_rack_names_rejected(self):
        rack = RackSpec(name="r0", platform=BASELINE_NAME)
        with pytest.raises(ConfigurationError):
            FleetTopology(racks=(rack, rack))

    def test_bad_rack_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            RackSpec(name="", platform=BASELINE_NAME)
        with pytest.raises(ConfigurationError):
            RackSpec(name="r", platform=BASELINE_NAME, max_instances=0)
        with pytest.raises(ConfigurationError):
            RackSpec(name="r", platform=BASELINE_NAME, queue_depth=0)
        with pytest.raises(ConfigurationError):
            RackSpec(name="r", platform=BASELINE_NAME, policy="lifo")
        with pytest.raises(ConfigurationError):
            RackSpec(name="r", platform=BASELINE_NAME, weight=0.0)
        with pytest.raises(ConfigurationError):
            RackSpec(name="r", platform=BASELINE_NAME, weight=float("nan"))

    def test_rack_seed_index_bounds(self):
        topology = small_topology(BASELINE_NAME, racks=2)
        with pytest.raises(ConfigurationError):
            topology.rack_seed(2)

    def test_zero_racks_rejected(self):
        with pytest.raises(ConfigurationError):
            FleetTopology.uniform(0, BASELINE_NAME)


class TestLoadBalancer:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            GlobalLoadBalancer("random")

    def test_round_robin_cycles(self, trace):
        topology = small_topology(BASELINE_NAME, racks=3)
        assignment = GlobalLoadBalancer("round_robin").assign(
            trace, topology
        )
        assert np.array_equal(
            assignment, np.arange(len(trace), dtype=np.int64) % 3
        )

    @pytest.mark.parametrize("policy", LB_POLICIES)
    def test_assignment_deterministic(self, trace, policy):
        topology = small_topology(BASELINE_NAME)
        first = GlobalLoadBalancer(policy).assign(trace, topology)
        second = GlobalLoadBalancer(policy).assign(trace, topology)
        assert np.array_equal(first, second)

    @pytest.mark.parametrize("policy", LB_POLICIES)
    def test_shards_conserve_and_stay_sorted(self, trace, policy):
        topology = small_topology(BASELINE_NAME)
        balancer = GlobalLoadBalancer(policy)
        shards = balancer.shard(trace, topology)
        assert sum(len(shard) for shard in shards) == len(trace)
        for shard in shards:
            assert shard.duration_seconds == trace.duration_seconds
            arrivals = shard.arrival_seconds
            assert len(arrivals) == 0 or bool(
                np.all(np.diff(arrivals) >= 0)
            )
        sizes = balancer.shard_sizes(trace, topology)
        assert np.array_equal(
            sizes, np.array([len(shard) for shard in shards])
        )

    def test_weighted_tracks_capacity(self, trace):
        racks = tuple(
            RackSpec(
                name=f"r{i}",
                platform=BASELINE_NAME,
                max_instances=8,
                weight=weight,
            )
            for i, weight in enumerate((1.0, 3.0))
        )
        topology = FleetTopology(racks=racks, seed=13)
        sizes = GlobalLoadBalancer("weighted").shard_sizes(trace, topology)
        shares = sizes / sizes.sum()
        assert abs(shares[0] - 0.25) < 0.01
        assert abs(shares[1] - 0.75) < 0.01

    def test_weighted_interleaves_rather_than_blocks(self, trace):
        racks = tuple(
            RackSpec(
                name=f"r{i}",
                platform=BASELINE_NAME,
                weight=weight,
            )
            for i, weight in enumerate((1.0, 2.0))
        )
        topology = FleetTopology(racks=racks, seed=13)
        assignment = GlobalLoadBalancer("weighted").assign(trace, topology)
        # Both racks appear within any short window — proportional
        # interleaving, not contiguous blocks (which would skew time).
        window = assignment[: max(30, len(assignment) // 100)]
        assert set(np.unique(window)) == {0, 1}

    def test_hash_affinity_pins_each_app_to_one_rack(self, trace):
        topology = small_topology(BASELINE_NAME)
        assignment = GlobalLoadBalancer("hash_affinity").assign(
            trace, topology
        )
        rack_of_app = {}
        for name, rack in zip(trace.app_names, assignment):
            rack_of_app.setdefault(name, set()).add(int(rack))
        assert all(len(racks) == 1 for racks in rack_of_app.values())

    def test_hash_affinity_seed_changes_placement(self, trace):
        topology = small_topology(BASELINE_NAME, racks=8)
        first = GlobalLoadBalancer("hash_affinity", seed=1).assign(
            trace, topology
        )
        second = GlobalLoadBalancer("hash_affinity", seed=2).assign(
            trace, topology
        )
        assert not np.array_equal(first, second)

    def test_single_rack_takes_everything(self, trace):
        topology = small_topology(BASELINE_NAME, racks=1)
        for policy in LB_POLICIES:
            assignment = GlobalLoadBalancer(policy).assign(trace, topology)
            assert np.array_equal(assignment, np.zeros(len(trace)))

    def test_empty_trace_shards_empty(self):
        topology = small_topology(BASELINE_NAME)
        empty = RequestTrace(
            arrival_seconds=np.array([]),
            app_names=(),
            duration_seconds=10.0,
        )
        for policy in LB_POLICIES:
            shards = GlobalLoadBalancer(policy).shard(empty, topology)
            assert all(len(shard) == 0 for shard in shards)


class TestFleetRunner:
    def test_serial_stitch_conserves_requests(self, context, trace):
        topology = small_topology(BASELINE_NAME)
        result = FleetRunner(context).run(topology, trace, workers=1)
        assert result.total_requests == len(trace)
        assert result.completed + result.dropped == len(trace)
        assert sum(result.drop_breakdown().values()) == result.dropped

    def test_workers_invariant_bit_identical(self, context, trace):
        """workers=1 vs workers=4: same hashes, same rows, same sketches."""
        topology = small_topology(BASELINE_NAME)
        serial = FleetRunner(context).run(topology, trace, workers=1)
        sharded = FleetRunner(context).run(topology, trace, workers=4)
        assert serial.identical_to(sharded)
        assert serial.fleet_hash == sharded.fleet_hash
        for a, b in zip(serial.racks, sharded.racks):
            assert a.check_hash == b.check_hash
            assert a.seed == b.seed
            assert a.requests == b.requests
            assert np.array_equal(a.sketch._counts, b.sketch._counts)
        for q in (50.0, 95.0, 99.0):
            assert serial.sketch_percentile(q) == sharded.sketch_percentile(
                q
            )

    def test_event_engine_stitches_identically(self, context, trace):
        """The serial event-driven oracle reproduces the vectorized stitch."""
        topology = small_topology(BASELINE_NAME, racks=2)
        vectorized = FleetRunner(context, engine="vectorized").run(
            topology, trace, workers=1
        )
        event = FleetRunner(context, engine="event").run(
            topology, trace, workers=1
        )
        assert vectorized.identical_to(event)

    def test_sketch_matches_exact_within_documented_bound(
        self, context, trace
    ):
        topology = small_topology(BASELINE_NAME)
        result = FleetRunner(context, keep_latencies=True).run(
            topology, trace, workers=1
        )
        bound = result.merged_sketch.relative_error_bound
        for q in (50.0, 90.0, 95.0, 99.0, 99.9):
            exact = result.exact_percentile(q)
            sketch = result.sketch_percentile(q)
            assert abs(sketch - exact) <= bound * exact

    def test_exact_mode_requires_keep_latencies(self, context, trace):
        topology = small_topology(BASELINE_NAME, racks=2)
        result = FleetRunner(context).run(topology, trace, workers=1)
        with pytest.raises(ConfigurationError):
            result.exact_latencies

    def test_fleet_seed_changes_every_rack_hash(self, context, trace):
        base = FleetRunner(context).run(
            small_topology(BASELINE_NAME, seed=13), trace, workers=1
        )
        moved = FleetRunner(context).run(
            small_topology(BASELINE_NAME, seed=14), trace, workers=1
        )
        assert base.fleet_hash != moved.fleet_hash
        assert not base.identical_to(moved)

    def test_unknown_platform_rejected(self, context, trace):
        topology = small_topology("Quantum")
        with pytest.raises(ConfigurationError):
            FleetRunner(context).run(topology, trace, workers=1)

    def test_non_positive_workers_rejected(self, context, trace):
        topology = small_topology(BASELINE_NAME, racks=2)
        with pytest.raises(ConfigurationError):
            FleetRunner(context).run(topology, trace, workers=0)

    def test_empty_shard_rack_reports_nan(self, context, trace):
        # hash affinity over few racks can leave a rack with no apps;
        # force the situation with a single-app trace on two racks.
        single = RequestTrace(
            arrival_seconds=trace.arrival_seconds[:100],
            app_names=tuple([trace.app_names[0]] * 100),
            duration_seconds=trace.duration_seconds,
        )
        topology = small_topology(BASELINE_NAME, racks=2)
        result = FleetRunner(
            context, balancer=GlobalLoadBalancer("hash_affinity")
        ).run(topology, single, workers=1)
        sizes = [rack.requests for rack in result.racks]
        assert sorted(sizes) == [0, 100]
        empty = result.racks[sizes.index(0)]
        assert np.isnan(empty.availability)
        assert np.isnan(empty.mean_latency_seconds)
        assert np.isnan(empty.sketch.percentile(99.0))
        # The fleet-level stitch still accounts for everything.
        assert result.total_requests == 100

    def test_mixed_platform_fleet(self, context, trace):
        racks = tuple(
            RackSpec(
                name=f"r{i}",
                platform=platform,
                max_instances=8,
            )
            for i, platform in enumerate((BASELINE_NAME, DSCS_NAME))
        )
        topology = FleetTopology(racks=racks, seed=13)
        result = FleetRunner(context).run(topology, trace, workers=1)
        assert [rack.platform for rack in result.racks] == [
            BASELINE_NAME,
            DSCS_NAME,
        ]
        assert result.total_requests == len(trace)

    def test_keyed_policy_racks(self, context, trace):
        """Non-FCFS racks route through the keyed engine inside a shard."""
        topology = small_topology(BASELINE_NAME, racks=2, policy="sjf")
        serial = FleetRunner(context).run(topology, trace, workers=1)
        sharded = FleetRunner(context).run(topology, trace, workers=2)
        assert serial.identical_to(sharded)


class TestFleetExperiment:
    def test_fast_profile_rows_and_study(self, context):
        from repro.experiments.registry import REGISTRY, load_all

        load_all()
        result = REGISTRY.run(
            "fig13-fleet", profile="fast", context=context, workers=2
        )
        assert result.provenance["workers"] == 2
        rows = result.rows
        # Rectangular: every row shares the fleet/rack schema.
        keys = set(rows[0])
        assert all(set(row) == keys for row in rows)
        fleet_rows = [row for row in rows if row["scope"] == "fleet"]
        rack_rows = [row for row in rows if row["scope"] == "rack"]
        assert len(fleet_rows) == 6  # 3 lb policies x 2 platforms
        assert len(rack_rows) == 6 * 3
        for fleet_row in fleet_rows:
            matching = [
                row
                for row in rack_rows
                if row["lb_policy"] == fleet_row["lb_policy"]
                and row["platform"] == fleet_row["platform"]
            ]
            assert (
                sum(row["requests"] for row in matching)
                == fleet_row["requests"]
            )
        study = result.study
        cell = study.at(0.05, "round_robin", BASELINE_NAME)
        assert cell.workers == 2
        assert cell.fleet_hash.startswith("sha256:")

    def test_run_fleet_shim(self, context):
        from repro.experiments.fleet import run_fleet

        study = run_fleet(
            racks=2,
            rate_scales=(0.02,),
            lb_policies=("round_robin",),
            max_instances=8,
            context=context,
        )
        result = study.at(0.02, "round_robin", BASELINE_NAME)
        assert result.total_requests > 0
        assert result.workers == 1
