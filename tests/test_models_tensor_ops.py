"""Tensor specs and operator shape/work accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ShapeError
from repro.models.ops import (
    Activation,
    ActivationKind,
    Cast,
    Conv2D,
    Elementwise,
    Embedding,
    GeMM,
    Layout,
    LayoutKind,
    Normalization,
    Pool,
    PoolKind,
    Reduce,
    Resample,
)
from repro.models.tensor import DType, TensorSpec


class TestTensorSpec:
    def test_elements_and_bytes(self):
        spec = TensorSpec("x", (2, 3, 4), DType.FP32)
        assert spec.elements == 24
        assert spec.size_bytes == 96

    def test_int8_is_one_byte(self):
        assert TensorSpec("x", (10,), DType.INT8).size_bytes == 10

    def test_rejects_empty_name(self):
        with pytest.raises(ShapeError):
            TensorSpec("", (1,))

    def test_rejects_zero_dim(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", (4, 0))

    def test_rejects_scalar_shape(self):
        with pytest.raises(ShapeError):
            TensorSpec("x", ())

    def test_with_helpers(self):
        spec = TensorSpec("x", (4, 4))
        assert spec.with_name("y").name == "y"
        assert spec.with_shape((16,)).shape == (16,)
        assert spec.with_dtype(DType.FP16).size_bytes == 32


class TestGeMM:
    def test_output_shape_rank2(self):
        op = GeMM("g", TensorSpec("x", (8, 16)), n=32)
        assert op.infer_output().shape == (8, 32)

    def test_output_shape_rank3(self):
        op = GeMM("g", TensorSpec("x", (2, 8, 16)), n=32)
        assert op.infer_output().shape == (2, 8, 32)

    def test_macs(self):
        op = GeMM("g", TensorSpec("x", (8, 16)), n=32)
        assert op.macs() == 8 * 16 * 32
        assert op.flops() == 2 * op.macs()

    def test_batch_multiplies_macs(self):
        single = GeMM("g", TensorSpec("x", (8, 16)), n=4)
        batched = GeMM("g", TensorSpec("x", (3, 8, 16)), n=4)
        assert batched.macs() == 3 * single.macs()

    def test_weight_bytes(self):
        op = GeMM("g", TensorSpec("x", (8, 16), DType.INT8), n=32)
        assert op.weight_bytes() == 16 * 32

    def test_is_matrix_op(self):
        assert GeMM("g", TensorSpec("x", (8, 16)), n=4).is_matrix_op

    def test_rejects_rank1(self):
        with pytest.raises(ShapeError):
            GeMM("g", TensorSpec("x", (8,)), n=4)


class TestConv2D:
    def test_output_spatial_dims(self):
        op = Conv2D("c", TensorSpec("x", (1, 3, 32, 32)), out_channels=8,
                    kernel=3, stride=1, padding=1)
        assert op.infer_output().shape == (1, 8, 32, 32)

    def test_stride_halves_resolution(self):
        op = Conv2D("c", TensorSpec("x", (1, 8, 32, 32)), out_channels=8,
                    kernel=3, stride=2, padding=1)
        assert op.infer_output().shape == (1, 8, 16, 16)

    def test_macs_match_implicit_gemm(self):
        op = Conv2D("c", TensorSpec("x", (1, 16, 14, 14)), out_channels=32,
                    kernel=3, stride=1, padding=1)
        m, n, k = op.as_gemm_dims()
        assert op.macs() == m * n * k

    def test_grouped_conv_reduces_work(self):
        dense = Conv2D("c", TensorSpec("x", (1, 16, 8, 8)), out_channels=16, kernel=3, padding=1)
        grouped = Conv2D("c", TensorSpec("x", (1, 16, 8, 8)), out_channels=16,
                         kernel=3, padding=1, groups=4)
        assert grouped.macs() == dense.macs() // 4

    def test_rejects_bad_groups(self):
        with pytest.raises(ShapeError):
            Conv2D("c", TensorSpec("x", (1, 16, 8, 8)), out_channels=15,
                   kernel=3, groups=4)

    def test_rejects_empty_output(self):
        with pytest.raises(ShapeError):
            Conv2D("c", TensorSpec("x", (1, 3, 2, 2)), out_channels=4,
                   kernel=5).infer_output()


class TestVectorOps:
    def test_activation_preserves_shape(self):
        op = Activation("a", TensorSpec("x", (4, 4)), kind=ActivationKind.GELU)
        assert op.infer_output().shape == (4, 4)
        assert op.flops() == 16 * ActivationKind.GELU.flops_per_element
        assert not op.is_matrix_op

    def test_elementwise_costs_one_per_element(self):
        op = Elementwise("e", TensorSpec("x", (10, 10)))
        assert op.flops() == 100

    def test_normalization_weight_bytes(self):
        op = Normalization("n", TensorSpec("x", (4, 64), DType.INT8))
        assert op.weight_bytes() == 2 * 64

    def test_pool_output(self):
        op = Pool("p", TensorSpec("x", (1, 8, 16, 16)), kind=PoolKind.MAX,
                  kernel=2, stride=2)
        assert op.infer_output().shape == (1, 8, 8, 8)

    def test_reshape_checks_elements(self):
        with pytest.raises(ShapeError):
            Layout("l", TensorSpec("x", (4, 4)), kind=LayoutKind.RESHAPE,
                   target_shape=(5, 5))

    def test_transpose_checks_permutation(self):
        with pytest.raises(ShapeError):
            Layout("l", TensorSpec("x", (2, 8)), kind=LayoutKind.TRANSPOSE,
                   target_shape=(4, 4))

    def test_valid_transpose(self):
        op = Layout("l", TensorSpec("x", (2, 8)), kind=LayoutKind.TRANSPOSE,
                    target_shape=(8, 2))
        assert op.infer_output().shape == (8, 2)

    def test_cast_changes_dtype_bytes(self):
        op = Cast("c", TensorSpec("x", (8,), DType.FP32), target_dtype=DType.INT8)
        assert op.infer_output().size_bytes == 8

    def test_reduce_drops_last_dim(self):
        op = Reduce("r", TensorSpec("x", (4, 8)))
        assert op.infer_output().shape == (4,)

    def test_reduce_keepdim(self):
        op = Reduce("r", TensorSpec("x", (4, 8)), keepdim=True)
        assert op.infer_output().shape == (4, 1)

    def test_resample_changes_element_count(self):
        op = Resample("r", TensorSpec("x", (1, 3, 64, 64)),
                      target_shape=(1, 3, 32, 32))
        assert op.infer_output().elements == 3 * 32 * 32
        assert op.flops() == 3 * 64 * 64 + 3 * 32 * 32

    def test_embedding_output_and_table(self):
        op = Embedding("e", TensorSpec("tokens", (1, 16), DType.INT8),
                       vocab=100, dim=8)
        assert op.infer_output().shape == (1, 16, 8)
        assert op.weight_bytes() == 100 * 8


@settings(max_examples=50, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=64),
    n=st.integers(min_value=1, max_value=64),
    k=st.integers(min_value=1, max_value=64),
)
def test_gemm_macs_property(m, n, k):
    op = GeMM("g", TensorSpec("x", (m, k)), n=n)
    assert op.macs() == m * n * k
    assert op.infer_output().elements == m * n


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(min_value=8, max_value=64),
    kernel=st.integers(min_value=1, max_value=5),
    stride=st.integers(min_value=1, max_value=3),
)
def test_conv_output_never_larger_than_input_without_padding(size, kernel, stride):
    if kernel > size:
        return
    op = Conv2D("c", TensorSpec("x", (1, 3, size, size)), out_channels=4,
                kernel=kernel, stride=stride, padding=0)
    out = op.infer_output()
    assert out.shape[2] <= size and out.shape[3] <= size
