"""Benchmark-suite definitions and tables."""

import pytest

from repro.experiments.benchmarks import BENCHMARKS, benchmark_suite, build_application
from repro.experiments.tables import table1_rows, table2_rows
from repro.units import MB


def test_eight_benchmarks():
    assert len(BENCHMARKS) == 8


def test_suite_builds_all():
    suite = benchmark_suite()
    assert len(suite) == 8
    for name, app in suite.items():
        assert app.name == name
        assert len(app.functions) == 3


def test_every_app_has_three_stage_chain():
    for app in benchmark_suite().values():
        roles = [f.role.value for f in app.functions]
        assert roles == ["preprocess", "inference", "notification"]


def test_first_two_functions_acceleratable():
    for app in benchmark_suite().values():
        assert app.functions[0].acceleratable
        assert app.functions[1].acceleratable
        assert not app.functions[2].acceleratable


def test_request_sizes_within_lambda_cap():
    # AWS S3/Lambda payloads are <= 20 MB (paper [109]).
    for app in benchmark_suite().values():
        assert app.input_bytes <= 20 * MB


def test_edge_payloads_match_inference_input():
    for app in benchmark_suite().values():
        assert app.edge_bytes[0] == app.functions[1].graph.input.size_bytes


def test_build_application_by_name():
    app = build_application("PPE Detection")
    assert app.name == "PPE Detection"
    with pytest.raises(KeyError):
        build_application("nope")


def test_ppe_is_most_data_intensive():
    suite = benchmark_suite()
    ppe = suite["PPE Detection"].input_bytes
    others = [a.input_bytes for n, a in suite.items()
              if n not in ("PPE Detection", "Content Moderation")]
    assert all(ppe >= o for o in others)


def test_credit_risk_is_least_compute_intensive():
    suite = benchmark_suite()
    credit = suite["Credit Risk Assessment"].functions[1].graph.stats().total_macs
    for name, app in suite.items():
        if name == "Credit Risk Assessment":
            continue
        assert credit < app.functions[1].graph.stats().total_macs


def test_table1_rows_complete():
    rows = table1_rows()
    assert len(rows) == 8
    for row in rows:
        assert row["gmacs"] >= 0
        assert row["input_mb"] > 0
        assert len(row["functions"]) == 3


def test_table2_rows_complete():
    rows = table2_rows()
    assert len(rows) == 7
    names = {row["platform"] for row in rows}
    assert "DSCS-Serverless" in names
    assert "Baseline (CPU)" in names
    for row in rows:
        assert "compute" in row
