"""The priority-key core: PolicyKey validation and the KeyedQueue."""

import numpy as np
import pytest

from repro.cluster.policy_keys import (
    KeyedQueue,
    PolicyKey,
    criticality_key,
    dag_key,
    fcfs_key,
    sjf_key,
)
from repro.errors import SchedulingError
from repro.experiments.benchmarks import benchmark_suite


class TestPolicyKey:
    def test_key_for_known_and_default(self):
        key = PolicyKey("demo", {"a": (1.0,), "b": (2.0,)}, (9.0,))
        assert key.key_for("a") == (1.0,)
        assert key.key_for("zzz") == (9.0,)
        assert key.knows("a") and not key.knows("zzz")
        assert key.width == 1

    def test_rejects_mismatched_widths(self):
        with pytest.raises(SchedulingError):
            PolicyKey("demo", {"a": (1.0, 2.0)}, (0.0,))

    def test_rejects_nan_components(self):
        with pytest.raises(SchedulingError):
            PolicyKey("demo", {"a": (float("nan"),)}, (0.0,))

    def test_rejects_nan_default_key(self):
        with pytest.raises(SchedulingError):
            PolicyKey("demo", {"a": (1.0,)}, (float("nan"),))

    def test_infinite_default_key_allowed(self):
        # SJF's unknown-app default is +inf: totally ordered, unlike NaN.
        key = PolicyKey("demo", {"a": (1.0,)}, (float("inf"),))
        assert key.key_for("a") < key.key_for("zzz")

    def test_rejects_empty_name(self):
        with pytest.raises(SchedulingError):
            PolicyKey("", {}, ())


class TestKeyBuilders:
    def test_fcfs_key_is_pure_sequence_order(self):
        key = fcfs_key()
        assert key.width == 0
        assert key.key_for("anything") == ()

    def test_sjf_key_orders_by_estimate(self):
        key = sjf_key({"fast": 0.1, "slow": 2.0})
        assert key.key_for("fast") < key.key_for("slow")
        assert key.key_for("mystery") == (float("inf"),)

    def test_sjf_key_validation(self):
        with pytest.raises(SchedulingError):
            sjf_key({})
        with pytest.raises(SchedulingError):
            sjf_key({"a": -1.0})

    def test_criticality_key_validation(self):
        with pytest.raises(SchedulingError):
            criticality_key({})
        with pytest.raises(SchedulingError):
            criticality_key({"a": 1.5})
        with pytest.raises(SchedulingError):
            criticality_key({"a": True})
        with pytest.raises(SchedulingError):
            criticality_key({"a": 0}, default_priority=0.5)

    def test_dag_key_prefers_deeper_pipelines(self):
        suite = benchmark_suite()
        key = dag_key(suite)
        deep = max(
            suite, key=lambda name: len(suite[name].accelerated_functions)
        )
        shallow = min(
            suite, key=lambda name: len(suite[name].accelerated_functions)
        )
        assert key.key_for(deep) <= key.key_for(shallow)
        with pytest.raises(SchedulingError):
            dag_key({})


class TestKeyedQueue:
    def test_pops_in_key_order(self):
        queue = KeyedQueue()
        for seq, key in enumerate([(3.0,), (1.0,), (2.0,)]):
            queue.push(key + (seq,), f"item{seq}")
        assert [queue.pop() for _ in range(3)] == ["item1", "item2", "item0"]

    def test_ties_break_by_trailing_sequence(self):
        queue = KeyedQueue()
        queue.push((1.0, 7), "later")
        queue.push((1.0, 3), "earlier")
        assert queue.pop() == "earlier"

    def test_len_and_bool(self):
        queue = KeyedQueue()
        assert not queue and len(queue) == 0
        queue.push((1.0, 0), "x")
        assert queue and len(queue) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(SchedulingError):
            KeyedQueue().pop()

    def test_peek_does_not_remove(self):
        queue = KeyedQueue()
        queue.push((2.0, 0), "b")
        queue.push((1.0, 1), "a")
        assert queue.peek() == "a"
        assert len(queue) == 2
        assert KeyedQueue().peek() is None

    def test_lazy_cancellation(self):
        queue = KeyedQueue()
        handle = queue.push((1.0, 0), "doomed")
        queue.push((2.0, 1), "survivor")
        queue.cancel(handle)
        assert handle.cancelled
        assert len(queue) == 1
        assert queue.peek() == "survivor"
        assert queue.pop() == "survivor"
        # Cancelling twice is a no-op, not a double decrement.
        queue.cancel(handle)
        assert len(queue) == 0

    def test_randomized_against_sorted_reference(self):
        rng = np.random.default_rng(7)
        queue = KeyedQueue()
        reference = []
        popped = []
        expected = []
        for seq in range(400):
            if reference and rng.random() < 0.4:
                expected.append(min(reference)[1])
                reference.remove(min(reference))
                popped.append(queue.pop())
            else:
                key = (float(rng.integers(0, 5)), seq)
                queue.push(key, seq)
                reference.append((key, seq))
        while reference:
            expected.append(min(reference)[1])
            reference.remove(min(reference))
            popped.append(queue.pop())
        assert popped == expected
