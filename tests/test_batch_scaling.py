"""Batch-scaling behaviour of the DSA and the analytical platforms.

The weight-reuse effect behind Fig. 14: batching multiplies activations
but not weights, so DMA-bound models approach compute-bound as batch
grows on the DSA, while CPU-style platforms saturate at their batching
efficiency ceiling.
"""

import pytest

from repro.accelerator.config import paper_design_point
from repro.compiler import compile_graph
from repro.models.zoo import gpt2_decoder, resnet50
from repro.platforms.registry import baseline_cpu, dscs_dsa


@pytest.fixture(scope="module")
def llm():
    return gpt2_decoder(seq=64, dim=768, layers=4, heads=12)


class TestDSABatching:
    def test_weight_traffic_amortised(self, llm):
        config = paper_design_point()
        single = compile_graph(llm, config).simulate()
        batched = compile_graph(llm.with_batch(8), config).simulate()
        # DRAM bytes grow sublinearly: weights stream once per batch.
        assert batched.dram_bytes < 8 * single.dram_bytes
        assert batched.dram_bytes > single.dram_bytes

    def test_per_sample_latency_improves(self, llm):
        config = paper_design_point()
        single = compile_graph(llm, config).simulate().latency_s
        batched = compile_graph(llm.with_batch(16), config).simulate().latency_s
        assert batched / 16 < single

    def test_utilization_improves_with_batch(self, llm):
        config = paper_design_point()
        single = compile_graph(llm, config).simulate()
        batched = compile_graph(llm.with_batch(16), config).simulate()
        assert batched.mpu_utilization > single.mpu_utilization

    def test_macs_scale_linearly(self, llm):
        config = paper_design_point()
        single = compile_graph(llm, config).simulate()
        batched = compile_graph(llm.with_batch(4), config).simulate()
        assert batched.total_macs == 4 * single.total_macs


class TestPlatformBatching:
    def test_dsa_stays_far_ahead_of_cpu_at_every_batch(self, llm):
        dsa = dscs_dsa()
        cpu = baseline_cpu()
        for batch in (1, 8, 32):
            dsa_per_sample = dsa.compute_latency_seconds(llm, batch=batch) / batch
            cpu_per_sample = cpu.compute_latency_seconds(llm, batch=batch) / batch
            assert dsa_per_sample < cpu_per_sample / 5

    def test_dsa_batching_amortises_weight_stream(self, llm):
        dsa = dscs_dsa()
        single = dsa.compute_latency_seconds(llm, batch=1)
        per_sample_at_8 = dsa.compute_latency_seconds(llm, batch=8) / 8
        assert per_sample_at_8 < single / 2

    def test_cpu_gain_bounded_by_max_batch_speedup(self):
        cpu = baseline_cpu()
        graph = resnet50()
        gain = cpu.compute_latency_seconds(graph) / (
            cpu.compute_latency_seconds(graph, batch=64) / 64
        )
        assert gain <= cpu.max_batch_speedup + 0.01

    def test_batch_one_is_reference(self):
        cpu = baseline_cpu()
        graph = resnet50()
        assert cpu.compute_latency_seconds(graph, batch=1) == pytest.approx(
            cpu.compute_latency_seconds(graph)
        )
