"""Percentile/CDF/summary helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.stats import cdf_points, geometric_mean, percentile, summarize


def test_percentile_median_of_range():
    assert percentile(range(1, 101), 50) == pytest.approx(50.5)


def test_percentile_bounds_checked():
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)


def test_percentile_empty_rejected():
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_cdf_points_sorted_and_normalized():
    values, probs = cdf_points([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert probs[-1] == 1.0
    assert np.all(np.diff(probs) > 0)


def test_cdf_points_empty_rejected():
    with pytest.raises(ConfigurationError):
        cdf_points([])


def test_summary_fields():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.maximum == 4.0
    assert summary.p50 == pytest.approx(2.5)


def test_summary_as_row_keys():
    row = summarize([1.0]).as_row()
    assert set(row) == {"count", "mean", "p50", "p95", "p99", "max"}


def test_summary_percentiles_ordered():
    rng = np.random.default_rng(0)
    summary = summarize(rng.lognormal(0, 1, 5000))
    assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


def test_geometric_mean_basic():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)


def test_geometric_mean_rejects_non_positive():
    with pytest.raises(ConfigurationError):
        geometric_mean([1.0, 0.0])


def test_geometric_mean_rejects_empty():
    with pytest.raises(ConfigurationError):
        geometric_mean([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000), min_size=1, max_size=50))
def test_cdf_last_probability_is_one(values):
    _, probs = cdf_points(values)
    assert probs[-1] == pytest.approx(1.0)


# --------------------------------------------------------------------------
# QuantileSketch: mergeable constant-memory percentiles
# --------------------------------------------------------------------------


def make_sketch(values=(), **kwargs):
    from repro.sim.stats import QuantileSketch

    sketch = QuantileSketch(**kwargs)
    if len(values):
        sketch.add(np.asarray(values, dtype=np.float64))
    return sketch


def test_sketch_rejects_bad_config():
    from repro.sim.stats import QuantileSketch

    with pytest.raises(ConfigurationError):
        QuantileSketch(lo=0.0)
    with pytest.raises(ConfigurationError):
        QuantileSketch(lo=1.0, hi=1.0)
    with pytest.raises(ConfigurationError):
        QuantileSketch(bins_per_decade=0)


def test_sketch_rejects_bad_values():
    sketch = make_sketch()
    with pytest.raises(ConfigurationError):
        sketch.add(np.array([1.0, -0.5]))
    with pytest.raises(ConfigurationError):
        sketch.add(np.array([np.nan]))
    with pytest.raises(ConfigurationError):
        sketch.add(np.array([np.inf]))


def test_sketch_empty_reports_nan():
    sketch = make_sketch()
    assert sketch.count == 0
    assert np.isnan(sketch.percentile(50.0))
    assert np.isnan(sketch.minimum)
    assert np.isnan(sketch.maximum)
    assert np.isnan(sketch.mean)


def test_sketch_percentile_range_checked():
    sketch = make_sketch([1.0, 2.0])
    with pytest.raises(ConfigurationError):
        sketch.percentile(101.0)
    with pytest.raises(ConfigurationError):
        sketch.percentile(-1.0)


def test_sketch_endpoints_are_exact():
    values = [0.003, 0.04, 0.5, 6.0]
    sketch = make_sketch(values)
    assert sketch.percentile(0.0) == 0.003
    assert sketch.percentile(100.0) == 6.0
    assert sketch.minimum == 0.003
    assert sketch.maximum == 6.0
    assert sketch.mean == pytest.approx(np.mean(values))


def test_sketch_tracks_exact_within_documented_bound():
    rng = np.random.default_rng(7)
    values = rng.lognormal(mean=-3.0, sigma=1.2, size=20_000)
    sketch = make_sketch(values)
    bound = sketch.relative_error_bound
    for q in (1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9):
        exact = float(np.percentile(values, q, method="lower"))
        approx = sketch.percentile(q)
        assert abs(approx - exact) <= bound * exact


def test_sketch_merge_equals_single_pass():
    rng = np.random.default_rng(11)
    values = rng.lognormal(mean=-4.0, sigma=1.0, size=9_000)
    whole = make_sketch(values)
    parts = [make_sketch(chunk) for chunk in np.array_split(values, 7)]
    from repro.sim.stats import QuantileSketch

    merged = QuantileSketch.merged(parts)
    assert np.array_equal(merged._counts, whole._counts)
    assert merged.count == whole.count
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum
    for q in (50.0, 95.0, 99.0):
        assert merged.percentile(q) == whole.percentile(q)


def test_sketch_merge_order_invariant():
    rng = np.random.default_rng(3)
    parts = [
        make_sketch(rng.lognormal(-3, 1, 500)) for _ in range(5)
    ]
    from repro.sim.stats import QuantileSketch

    forward = QuantileSketch.merged(parts)
    backward = QuantileSketch.merged(list(reversed(parts)))
    assert np.array_equal(forward._counts, backward._counts)
    assert forward.percentile(99.0) == backward.percentile(99.0)


def test_sketch_merge_rejects_incompatible_config():
    a = make_sketch([1.0])
    b = make_sketch([1.0], bins_per_decade=32)
    with pytest.raises(ConfigurationError):
        a.merge(b)


def test_sketch_merged_rejects_empty_list():
    from repro.sim.stats import QuantileSketch

    with pytest.raises(ConfigurationError):
        QuantileSketch.merged([])


def test_sketch_handles_out_of_range_values():
    # Values under lo land in the underflow bin, over hi in overflow;
    # endpoint percentiles still report the exact extremes.
    sketch = make_sketch([1e-9, 0.5, 1e7], lo=1e-6, hi=1e5)
    assert sketch.count == 3
    assert sketch.minimum == 1e-9
    assert sketch.maximum == 1e7
    assert sketch.percentile(0.0) == 1e-9
    assert sketch.percentile(100.0) == 1e7


def test_sketch_zero_values_counted():
    sketch = make_sketch([0.0, 0.0, 1.0])
    assert sketch.count == 3
    assert sketch.minimum == 0.0
    assert sketch.percentile(0.0) == 0.0


def test_sketch_as_dict_round_trip_fields():
    sketch = make_sketch([0.01, 0.1, 1.0])
    payload = sketch.as_dict()
    assert payload["count"] == 3
    assert payload["lo"] == sketch.config[0]
    assert payload["hi"] == sketch.config[1]
    assert payload["bins_per_decade"] == sketch.config[2]
    assert payload["relative_error_bound"] == sketch.relative_error_bound


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.floats(min_value=1e-5, max_value=1e4),
        min_size=1,
        max_size=200,
    )
)
def test_sketch_percentile_within_bound_property(values):
    sketch = make_sketch(values)
    bound = sketch.relative_error_bound
    for q in (50.0, 99.0):
        exact = float(np.percentile(values, q, method="lower"))
        assert abs(sketch.percentile(q) - exact) <= bound * exact
