"""Percentile/CDF/summary helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.stats import cdf_points, geometric_mean, percentile, summarize


def test_percentile_median_of_range():
    assert percentile(range(1, 101), 50) == pytest.approx(50.5)


def test_percentile_bounds_checked():
    with pytest.raises(ConfigurationError):
        percentile([1.0], 101)
    with pytest.raises(ConfigurationError):
        percentile([1.0], -1)


def test_percentile_empty_rejected():
    with pytest.raises(ConfigurationError):
        percentile([], 50)


def test_cdf_points_sorted_and_normalized():
    values, probs = cdf_points([3.0, 1.0, 2.0])
    assert list(values) == [1.0, 2.0, 3.0]
    assert probs[-1] == 1.0
    assert np.all(np.diff(probs) > 0)


def test_cdf_points_empty_rejected():
    with pytest.raises(ConfigurationError):
        cdf_points([])


def test_summary_fields():
    summary = summarize([1.0, 2.0, 3.0, 4.0])
    assert summary.count == 4
    assert summary.mean == pytest.approx(2.5)
    assert summary.maximum == 4.0
    assert summary.p50 == pytest.approx(2.5)


def test_summary_as_row_keys():
    row = summarize([1.0]).as_row()
    assert set(row) == {"count", "mean", "p50", "p95", "p99", "max"}


def test_summary_percentiles_ordered():
    rng = np.random.default_rng(0)
    summary = summarize(rng.lognormal(0, 1, 5000))
    assert summary.p50 <= summary.p95 <= summary.p99 <= summary.maximum


def test_geometric_mean_basic():
    assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)


def test_geometric_mean_rejects_non_positive():
    with pytest.raises(ConfigurationError):
        geometric_mean([1.0, 0.0])


def test_geometric_mean_rejects_empty():
    with pytest.raises(ConfigurationError):
        geometric_mean([])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    gm = geometric_mean(values)
    assert min(values) - 1e-9 <= gm <= max(values) + 1e-9


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1000), min_size=1, max_size=50))
def test_cdf_last_probability_is_one(values):
    _, probs = cdf_points(values)
    assert probs[-1] == pytest.approx(1.0)
