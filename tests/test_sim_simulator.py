"""Discrete-event Simulator clock and scheduling semantics."""

import pytest

from repro.errors import SimulationError
from repro.sim.simulator import Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_advances_clock_to_last_event():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.run() == 5.0
    assert sim.events_fired == 2


def test_events_fire_in_order():
    sim = Simulator()
    order = []
    sim.schedule(2.0, lambda: order.append("late"))
    sim.schedule(1.0, lambda: order.append("early"))
    sim.run()
    assert order == ["early", "late"]


def test_event_can_schedule_followup():
    sim = Simulator()
    seen = []

    def first():
        seen.append(sim.now)
        sim.schedule(1.5, lambda: seen.append(sim.now))

    sim.schedule(1.0, first)
    sim.run()
    assert seen == [1.0, 2.5]


def test_run_until_horizon_stops_early():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    end = sim.run(until=5.0)
    assert end == 5.0
    assert fired == [1]
    assert sim.pending == 1


def test_run_until_advances_even_with_empty_queue():
    sim = Simulator()
    assert sim.run(until=7.0) == 7.0
    assert sim.now == 7.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    sim.cancel(handle)
    sim.run()
    assert fired == []


def test_max_events_guard():
    sim = Simulator()

    def storm():
        sim.schedule(0.001, storm)

    sim.schedule(0.0, storm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_payload_delivered_to_action():
    sim = Simulator()
    got = []
    sim.schedule(1.0, got.append, payload="data")
    sim.run()
    assert got == ["data"]
