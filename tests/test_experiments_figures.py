"""Integration tests: every figure harness reproduces the paper's shape.

These assert orderings, crossovers, and rough magnitudes — the reproduction
contract — with reduced sample counts so the suite stays fast.  The full
runs live in benchmarks/.
"""

import numpy as np
import pytest

from repro.experiments import (
    calibration,
    fig03,
    fig04,
    fig09,
    fig11,
    fig12,
    fig14,
    fig15,
    fig16,
    fig17,
)
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context


@pytest.fixture(scope="module")
def context():
    return build_context()


@pytest.fixture(scope="module")
def speedups(context):
    return fig09.run(count=800, context=context)


class TestFig03:
    @pytest.fixture(scope="class")
    def cdfs(self):
        return fig03.run(samples=4000)

    def test_all_benchmarks_present(self, cdfs):
        assert len(cdfs) == 8

    def test_reads_in_paper_band(self, cdfs):
        for result in cdfs.values():
            assert 0.01 < result.median < 0.25

    def test_tail_ratio_near_paper(self, cdfs):
        ratio = fig03.average_tail_ratio(cdfs)
        assert 1.5 < ratio < 2.8  # paper: ~2.1

    def test_cdf_monotone(self, cdfs):
        for result in cdfs.values():
            assert np.all(np.diff(result.values) >= 0)
            assert result.probabilities[-1] == pytest.approx(1.0)

    def test_larger_inputs_read_slower(self, cdfs):
        assert (
            cdfs["PPE Detection"].median
            > cdfs["Conversational Chatbot"].median
        )


class TestFig04:
    @pytest.fixture(scope="class")
    def shares(self):
        return fig04.run(averages_of=16)

    def test_communication_dominates_on_average(self, shares):
        avg = fig04.average_communication_share(shares)
        assert avg > calibration.PAPER_MIN_AVG_COMMUNICATION_SHARE

    def test_high_comm_benchmarks(self, shares):
        # Paper: >= 0.70; our system-stack constant is slightly larger, so
        # the three data-heavy benchmarks sit a few points lower.
        for name in calibration.PAPER_HIGH_COMM_BENCHMARKS:
            assert shares[name].communication > 0.60
        # They remain the three most communication-bound workloads apart
        # from Remote Sensing.
        ranked = sorted(shares, key=lambda n: shares[n].communication, reverse=True)
        assert set(calibration.PAPER_HIGH_COMM_BENCHMARKS) <= set(ranked[:4])

    def test_amdahl_cap_near_paper(self, shares):
        cap = fig04.average_compute_cap(shares)
        assert 1.2 < cap < 1.8  # paper: 1.52

    def test_shares_sum_to_one(self, shares):
        for result in shares.values():
            total = result.compute + result.communication + result.system_stack
            assert total == pytest.approx(1.0, abs=0.02)


class TestFig09:
    def test_dscs_speedup_near_paper(self, speedups):
        geomean = speedups.geomean(DSCS_NAME)
        assert 3.0 < geomean < 4.5  # paper: 3.6

    def test_dscs_beats_every_other_platform(self, speedups):
        dscs = speedups.geomean(DSCS_NAME)
        for platform in speedups.speedups:
            if platform != DSCS_NAME:
                assert dscs > speedups.geomean(platform)

    def test_gpu_capped_by_communication(self, speedups):
        # Fig. 4's Amdahl bound: GPU gains stay well below its raw
        # compute advantage.
        assert speedups.geomean("GPU") < 1.6

    def test_fpga_and_ns_arm_near_or_below_baseline(self, speedups):
        # Paper: both slightly below 1.0; ours land within ~15% of parity.
        assert speedups.geomean("FPGA") < 1.1
        assert speedups.geomean("NS-ARM") < 1.25

    def test_ns_fpga_second_best(self, speedups):
        ns_fpga = speedups.geomean("NS-FPGA")
        others = [
            speedups.geomean(p)
            for p in speedups.speedups
            if p not in (DSCS_NAME, "NS-FPGA")
        ]
        assert all(ns_fpga > o for o in others)

    def test_relative_ratios_near_paper(self, speedups):
        assert 2.2 < speedups.relative(DSCS_NAME, "GPU") < 4.0  # paper 2.7
        assert 1.3 < speedups.relative(DSCS_NAME, "NS-FPGA") < 2.2  # paper 1.7
        assert 2.8 < speedups.relative(DSCS_NAME, "NS-ARM") < 5.0  # paper 3.7

    def test_credit_risk_least_dscs_speedup(self, speedups):
        dscs = speedups.speedups[DSCS_NAME]
        credit = dscs["Credit Risk Assessment"]
        assert credit == min(dscs.values())

    def test_ppe_highest_dscs_speedup(self, speedups):
        dscs = speedups.speedups[DSCS_NAME]
        assert dscs["PPE Detection"] == max(dscs.values())


class TestFig11:
    @pytest.fixture(scope="class")
    def energy(self, context):
        return fig11.run(averages_of=8, context=context)

    def test_dscs_energy_reduction_near_paper(self, energy):
        assert 3.0 < energy.geomean(DSCS_NAME) < 4.5  # paper: 3.5

    def test_dscs_vs_ns_fpga(self, energy):
        assert 1.3 < energy.relative(DSCS_NAME, "NS-FPGA") < 2.3  # paper 1.9

    def test_ppe_max_credit_min(self, energy):
        dscs = energy.reductions[DSCS_NAME]
        assert dscs[calibration.PAPER_ENERGY_MAX_BENCHMARK] == max(dscs.values())
        assert dscs[calibration.PAPER_ENERGY_MIN_BENCHMARK] == min(dscs.values())

    def test_gpu_no_better_than_baseline_on_energy(self, energy):
        assert energy.geomean("GPU") < 1.2


class TestFig12:
    @pytest.fixture(scope="class")
    def cost(self, context):
        return fig12.run(count=500, context=context)

    def test_dscs_most_cost_efficient(self, cost):
        assert cost.normalized[DSCS_NAME] == max(cost.normalized.values())

    def test_dscs_near_paper_value(self, cost):
        assert 2.5 < cost.normalized[DSCS_NAME] < 4.5  # paper: 3.4

    def test_ns_fpga_second(self, cost):
        ranked = sorted(cost.normalized, key=cost.normalized.get, reverse=True)
        assert ranked[0] == DSCS_NAME
        assert ranked[1] == "NS-FPGA"

    def test_fpga_least_cost_efficient(self, cost):
        assert cost.normalized["FPGA"] == min(cost.normalized.values())


class TestFig14:
    @pytest.fixture(scope="class")
    def batch(self, context):
        return fig14.run(batches=(1, 8, 64), count=200, context=context)

    def test_speedup_grows_with_batch(self, batch):
        values = [batch.geomean(b) for b in batch.batches]
        assert values == sorted(values)

    def test_batch1_near_paper(self, batch):
        assert 3.0 < batch.geomean(1) < 4.5

    def test_batch64_amplified(self, batch):
        assert batch.geomean(64) > 2.5 * batch.geomean(1)  # paper: 15.8/3.6

    def test_every_benchmark_gains_from_batching(self, batch):
        # Paper highlights the language models' weight reuse; in our model
        # every workload amortises weights and communication with batch —
        # the language models gain substantially (>2.5x) though the purely
        # communication-bound apps gain even more (documented delta).
        gains = {
            app: batch.speedups[64][app] / batch.speedups[1][app]
            for app in batch.speedups[1]
        }
        assert all(g > 1.5 for g in gains.values())
        assert gains["Conversational Chatbot"] > 2.5
        assert gains["Document Translation"] > 2.5


class TestFig15:
    @pytest.fixture(scope="class")
    def tails(self):
        return fig15.run(tail_ratios=(2.1, 4.0), percentiles=(50.0, 99.0),
                         count=1500)

    def test_p99_speedup_exceeds_p50(self, tails):
        assert tails.at(2.1, 99.0) > tails.at(2.1, 50.0)

    def test_paper_band(self, tails):
        assert 2.5 < tails.at(2.1, 50.0) < 4.0  # paper: 3.1
        assert 3.5 < tails.at(2.1, 99.0) < 6.5  # paper: 5.0

    def test_heavier_tails_widen_gap(self, tails):
        assert tails.at(4.0, 99.0) > tails.at(2.1, 99.0)


class TestFig16:
    @pytest.fixture(scope="class")
    def functions(self, context):
        return fig16.run(extras=(0, 3), count=200, context=context)

    def test_more_accelerated_functions_more_speedup(self, functions):
        assert functions.geomean(3) > functions.geomean(0)

    def test_plus_three_band(self, functions):
        assert 5.0 < functions.geomean(3) < 11.0  # paper: 8.1


class TestFig17:
    @pytest.fixture(scope="class")
    def cold(self, context):
        return fig17.run(count=400, context=context)

    def test_cold_lower_than_warm(self, cold):
        assert cold.cold_geomean < cold.warm_geomean

    def test_paper_bands(self, cold):
        assert 3.0 < cold.warm_geomean < 4.5  # paper: 3.6
        assert 2.0 < cold.cold_geomean < 3.2  # paper: 2.6
