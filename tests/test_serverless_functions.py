"""Functions, applications, and deployment manifests."""

import pytest

from repro.errors import DeploymentError
from repro.models.zoo import logistic_regression, resnet50
from repro.serverless.application import Application
from repro.serverless.deployment import DeploymentManifest, FunctionConfig
from repro.serverless.function import FunctionRole, ServerlessFunction
from repro.units import KB, MB


def make_app():
    functions = (
        ServerlessFunction(
            name="app/pre",
            role=FunctionRole.PREPROCESS,
            graph=logistic_regression(rows=64, features=8),
            acceleratable=True,
        ),
        ServerlessFunction(
            name="app/infer",
            role=FunctionRole.INFERENCE,
            graph=resnet50(),
            acceleratable=True,
        ),
        ServerlessFunction(
            name="app/notify", role=FunctionRole.NOTIFICATION, graph=None
        ),
    )
    return Application.chain(
        "app", functions, input_bytes=4 * MB, edge_bytes=(150 * KB, 4 * KB, 1 * KB)
    )


class TestServerlessFunction:
    def test_acceleratable_requires_graph(self):
        with pytest.raises(DeploymentError):
            ServerlessFunction(
                name="f", role=FunctionRole.NOTIFICATION, acceleratable=True
            )

    def test_input_bytes_from_graph(self):
        function = ServerlessFunction(
            name="f", role=FunctionRole.INFERENCE, graph=resnet50()
        )
        assert function.input_bytes == resnet50().input.size_bytes

    def test_notification_default_input(self):
        function = ServerlessFunction(name="f", role=FunctionRole.NOTIFICATION)
        assert function.input_bytes == 1024
        assert function.weight_bytes == 0

    def test_empty_name_rejected(self):
        with pytest.raises(DeploymentError):
            ServerlessFunction(name="", role=FunctionRole.NOTIFICATION)


class TestApplication:
    def test_edge_payload_lookup(self):
        app = make_app()
        assert app.function_input_bytes(0) == 4 * MB
        assert app.function_input_bytes(1) == 150 * KB
        assert app.function_output_bytes(2) == 1 * KB

    def test_accelerated_functions(self):
        assert len(make_app().accelerated_functions) == 2

    def test_inference_function_found(self):
        assert make_app().inference_function.role is FunctionRole.INFERENCE

    def test_edge_count_validated(self):
        functions = make_app().functions
        with pytest.raises(DeploymentError):
            Application.chain("bad", functions, 4 * MB, edge_bytes=(1, 2))

    def test_extra_inference_stages(self):
        app = make_app()
        extended = app.with_extra_inference_stages(2)
        assert len(extended.functions) == 5
        inference_count = sum(
            1 for f in extended.functions if f.role is FunctionRole.INFERENCE
        )
        assert inference_count == 3

    def test_extra_stage_edges_carry_tensor_payload(self):
        app = make_app()
        extended = app.with_extra_inference_stages(1)
        # The duplicated stage consumes the inference input payload size.
        assert extended.edge_bytes[1] == app.function_input_bytes(1)
        # Final notification edge unchanged.
        assert extended.edge_bytes[-1] == app.edge_bytes[-1]

    def test_zero_extra_stages_identity(self):
        app = make_app()
        assert app.with_extra_inference_stages(0) is app

    def test_negative_extras_rejected(self):
        with pytest.raises(DeploymentError):
            make_app().with_extra_inference_stages(-1)


class TestDeployment:
    def test_manifest_marks_acceleratable(self):
        manifest = DeploymentManifest.for_application(make_app())
        assert manifest.config_for("app/infer").wants_dsa
        assert not manifest.config_for("app/notify").wants_dsa

    def test_manifest_disable_acceleration(self):
        manifest = DeploymentManifest.for_application(make_app(), accelerate=False)
        assert not manifest.config_for("app/infer").wants_dsa

    def test_container_image_includes_weights(self):
        manifest = DeploymentManifest.for_application(make_app())
        image = manifest.config_for("app/infer").container_image_bytes
        assert image > resnet50().stats().weight_bytes

    def test_config_round_trip(self):
        config = FunctionConfig(
            function_name="f", accelerator="dsa", timeout_seconds=10.0
        )
        restored = FunctionConfig.from_dict(config.to_dict())
        assert restored == config

    def test_config_from_malformed_dict(self):
        with pytest.raises(DeploymentError):
            FunctionConfig.from_dict({"timeout": 10})

    def test_unknown_function_lookup(self):
        manifest = DeploymentManifest.for_application(make_app())
        with pytest.raises(DeploymentError):
            manifest.config_for("ghost")

    def test_config_validation(self):
        with pytest.raises(DeploymentError):
            FunctionConfig(function_name="f", timeout_seconds=0)
