"""Control-plane units: knob validation, the controller state machine,
warmup accounting, and simulation routing.

The bit-identity of the two control engines lives in
``tests/test_control_equivalence.py``; this file pins the pieces those
engines share — :class:`ControllerState` decisions, policy knob
validation, and the routing rules in :class:`RackSimulation`.
"""

import math

import numpy as np
import pytest

from repro.cluster.control import (
    SCALING_POLICIES,
    AutoscalerPolicy,
    ControllerState,
    ControlPlane,
    OverloadPolicy,
    observer_plane,
    warmup_from_coldstart,
)
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu
from repro.serverless.coldstart import ColdStartModel
from repro.storage.drive import DSCSDrive
from repro.units import MB_DEC


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def model():
    return ServerlessExecutionModel(platform=baseline_cpu())


def small_trace(suite, scale=0.02, seed=1):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(r * scale for r in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


class TestKnobValidation:
    def test_unknown_scaling_policy(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(policy="predictive")

    def test_scaling_policies_are_the_known_set(self):
        assert SCALING_POLICIES == ("target_utilization", "queue_depth")

    @pytest.mark.parametrize("minimum", [0, -3])
    def test_min_instances_floor(self, minimum):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_instances=minimum)

    def test_initial_below_min_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(min_instances=4, initial_instances=2)

    @pytest.mark.parametrize("target", [0.0, 1.5, -0.1])
    def test_target_utilization_range(self, target):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(target_utilization=target)

    def test_non_positive_queue_per_instance(self):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(queue_per_instance=0.0)

    @pytest.mark.parametrize(
        "knob",
        [
            "scale_up_cooldown_seconds",
            "scale_down_cooldown_seconds",
            "warmup_seconds",
        ],
    )
    @pytest.mark.parametrize("value", [-1.0, float("nan"), float("inf")])
    def test_autoscaler_time_knobs(self, knob, value):
        with pytest.raises(ConfigurationError):
            AutoscalerPolicy(**{knob: value})

    @pytest.mark.parametrize(
        "knob",
        [
            "admission_rate_rps",
            "queue_delay_target_seconds",
            "latency_slo_seconds",
            "breaker_failure_threshold",
        ],
    )
    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan")])
    def test_overload_optional_knobs_must_be_positive(self, knob, value):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(**{knob: value})

    def test_breaker_threshold_is_a_fraction(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(breaker_failure_threshold=1.5)

    def test_non_positive_burst(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(admission_burst_seconds=0.0)

    @pytest.mark.parametrize("fraction", [-0.1, 1.1])
    def test_shed_fraction_range(self, fraction):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(shed_fraction=fraction)

    def test_negative_min_shed_priority(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(min_shed_priority=-1)

    def test_breaker_min_failures_floor(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(breaker_min_failures=0)

    def test_non_positive_breaker_open(self):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(breaker_open_seconds=0.0)

    @pytest.mark.parametrize("interval", [0.0, -1.0, float("nan")])
    def test_control_interval(self, interval):
        with pytest.raises(ConfigurationError):
            ControlPlane(control_interval_seconds=interval)


class TestActivation:
    def test_inert_plane_is_inactive(self):
        assert not ControlPlane().active
        assert not OverloadPolicy().active

    def test_plane_with_inactive_overload_is_inactive(self):
        assert not ControlPlane(overload=OverloadPolicy()).active

    def test_autoscaler_activates(self):
        assert ControlPlane(autoscaler=AutoscalerPolicy()).active

    @pytest.mark.parametrize(
        "knobs",
        [
            {"admission_rate_rps": 10.0},
            {"queue_delay_target_seconds": 0.5},
            {"latency_slo_seconds": 1.0},
            {"breaker_failure_threshold": 0.5},
        ],
    )
    def test_each_overload_mechanism_activates(self, knobs):
        policy = OverloadPolicy(**knobs)
        assert policy.active
        assert ControlPlane(overload=policy).active

    def test_priorities_frozen_against_caller_mutation(self):
        ranks = {"b": 1, "a": 0}
        policy = OverloadPolicy(
            queue_delay_target_seconds=0.5, priorities=ranks
        )
        ranks["a"] = 99
        assert policy.priorities == (("a", 0), ("b", 1))
        assert policy.priority_map() == {"a": 0, "b": 1}


class TestWarmupFromColdstart:
    def test_without_drive_pays_full_cold_start(self):
        coldstart = ColdStartModel()
        image = 120 * MB_DEC
        assert warmup_from_coldstart(coldstart, image) == pytest.approx(
            coldstart.cold_start_seconds(image)
        )

    def test_with_drive_uses_p2p_reload(self):
        coldstart = ColdStartModel()
        drive = DSCSDrive()
        image = 120 * MB_DEC
        warmup = warmup_from_coldstart(coldstart, image, drive=drive)
        assert warmup == pytest.approx(
            coldstart.p2p_reload_seconds(image, drive)
        )
        assert warmup < coldstart.cold_start_seconds(image)


def state_for(plane, max_instances=10, apps=("a", "b", "c")):
    return ControllerState(plane, max_instances, list(apps))


class TestControllerScaling:
    def test_initial_live_defaults_to_min(self):
        state = state_for(
            ControlPlane(autoscaler=AutoscalerPolicy(min_instances=3))
        )
        assert state.live == 3
        assert state.live_log == [(0.0, 3)]

    def test_initial_instances_respected_and_clamped(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=2, initial_instances=50
                )
            ),
            max_instances=8,
        )
        assert state.live == 8

    def test_no_autoscaler_pins_live_to_ceiling(self):
        state = state_for(
            ControlPlane(overload=OverloadPolicy(admission_rate_rps=5.0)),
            max_instances=7,
        )
        assert state.live == 7
        state.on_tick(1.0, busy=7, queue_len=100, head_wait=None)
        assert state.live == 7 and state.scale_ups == 0

    def test_target_utilization_scale_up_immediate(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=1, target_utilization=0.5
                )
            )
        )
        shed, activation = state.on_tick(
            1.0, busy=4, queue_len=0, head_wait=None
        )
        assert shed == 0 and activation is None
        assert state.live == 8  # ceil(4 / 0.5)
        assert state.scale_ups == 1
        assert state.live_log[-1] == (1.0, 8)

    def test_queue_depth_formula(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    policy="queue_depth",
                    min_instances=1,
                    queue_per_instance=4.0,
                    scale_down_cooldown_seconds=0.0,
                )
            ),
            max_instances=100,
        )
        state.on_tick(1.0, busy=3, queue_len=10, head_wait=None)
        assert state.live == 3 + math.ceil(10 / 4.0)

    def test_desired_clamped_to_ceiling(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=1, target_utilization=0.5
                )
            ),
            max_instances=6,
        )
        state.on_tick(1.0, busy=100, queue_len=0, head_wait=None)
        assert state.live == 6

    def test_scale_down_cooldown(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=1,
                    target_utilization=0.5,
                    scale_down_cooldown_seconds=5.0,
                )
            )
        )
        state.on_tick(0.0, busy=4, queue_len=0, head_wait=None)
        assert state.live == 8
        state.on_tick(1.0, busy=2, queue_len=0, head_wait=None)
        assert state.live == 4 and state.scale_downs == 1
        # Inside the cooldown window: the lower desired is ignored.
        state.on_tick(2.0, busy=1, queue_len=0, head_wait=None)
        assert state.live == 4 and state.scale_downs == 1
        state.on_tick(6.5, busy=1, queue_len=0, head_wait=None)
        assert state.live == 2 and state.scale_downs == 2

    def test_warmup_defers_scale_up(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=2,
                    target_utilization=0.5,
                    warmup_seconds=3.0,
                )
            )
        )
        _, activation = state.on_tick(
            1.0, busy=3, queue_len=0, head_wait=None
        )
        assert activation == (4.0, 6)
        assert state.live == 2  # nothing serves until the warmup expires
        assert state.live_target == 6
        state.activate(4.0, 6)
        assert state.live == 6
        assert state.live_log[-1] == (4.0, 6)

    def test_scale_down_during_warmup_wins(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=2,
                    target_utilization=0.5,
                    warmup_seconds=3.0,
                    scale_down_cooldown_seconds=0.0,
                )
            )
        )
        _, activation = state.on_tick(
            1.0, busy=4, queue_len=0, head_wait=None
        )
        assert activation == (4.0, 8)
        state.on_tick(2.0, busy=2, queue_len=0, head_wait=None)
        assert state.live_target == 4
        state.activate(4.0, 8)
        assert state.live == 4  # clamped by the newer, lower target

    def test_activate_never_shrinks(self):
        state = state_for(
            ControlPlane(
                autoscaler=AutoscalerPolicy(
                    min_instances=2, target_utilization=0.5
                )
            )
        )
        state.on_tick(1.0, busy=4, queue_len=0, head_wait=None)
        assert state.live == 8
        state.activate(2.0, 5)  # stale smaller activation
        assert state.live == 8


class TestControllerGating:
    def tokens_plane(self, rate=2.0, burst=2.0, interval=1.0):
        return ControlPlane(
            overload=OverloadPolicy(
                admission_rate_rps=rate, admission_burst_seconds=burst
            ),
            control_interval_seconds=interval,
        )

    def test_bucket_starts_full_and_sheds_when_empty(self):
        state = state_for(self.tokens_plane())
        admitted = [state.admit(0) for _ in range(5)]
        assert admitted == [True, True, True, True, False]
        assert state.tokens == pytest.approx(0.0)

    def test_refill_quantized_to_ticks_and_capped(self):
        state = state_for(self.tokens_plane(rate=2.0, burst=2.0))
        for _ in range(4):
            assert state.admit(0)
        state.on_tick(1.0, busy=0, queue_len=0, head_wait=None)
        assert state.tokens == pytest.approx(2.0)
        state.on_tick(2.0, busy=0, queue_len=0, head_wait=None)
        state.on_tick(3.0, busy=0, queue_len=0, head_wait=None)
        assert state.tokens == pytest.approx(4.0)  # capped at the bucket

    def test_gate_mask_matches_sequential_admit(self):
        sequential = state_for(self.tokens_plane(rate=3.0, burst=1.0))
        vectorized = state_for(self.tokens_plane(rate=3.0, burst=1.0))
        arrivals = np.array([0, 1, 2, 0, 1, 2], dtype=np.int64)

        expected = [sequential.admit(int(app)) for app in arrivals]
        mask = vectorized.gate_mask(arrivals)
        assert mask.tolist() == expected
        # gate_mask is pure; the balance moves only on consume().
        assert vectorized.tokens == pytest.approx(3.0)
        vectorized.consume(int(mask.sum()))
        assert vectorized.tokens == pytest.approx(sequential.tokens)

    def test_gate_mask_respects_blocked_apps(self):
        state = state_for(self.tokens_plane(rate=100.0))
        state.app_blocked[1] = True
        mask = state.gate_mask(np.array([0, 1, 2, 1], dtype=np.int64))
        assert mask.tolist() == [True, False, True, False]
        assert not state.admit(1)

    def test_codel_shed_count(self):
        plane = ControlPlane(
            overload=OverloadPolicy(
                queue_delay_target_seconds=0.5, shed_fraction=0.25
            )
        )
        state = state_for(plane)
        shed, _ = state.on_tick(1.0, busy=0, queue_len=10, head_wait=1.0)
        assert shed == 3  # max(1, ceil(0.25 * 10))
        shed, _ = state.on_tick(2.0, busy=0, queue_len=10, head_wait=0.2)
        assert shed == 0
        # At least one victim whenever the delay target is breached,
        # even when the fraction rounds to zero.
        shed, _ = state.on_tick(3.0, busy=0, queue_len=2, head_wait=1.0)
        assert shed == 1

    def test_brownout_ladder_walks_and_recovers(self):
        plane = ControlPlane(
            overload=OverloadPolicy(
                queue_delay_target_seconds=0.5,
                priorities={"a": 0, "b": 1, "c": 2},
                min_shed_priority=1,
            )
        )
        state = state_for(plane)
        assert not state.app_blocked.any()

        state.on_tick(1.0, busy=0, queue_len=4, head_wait=1.0)
        assert state.app_blocked.tolist() == [False, False, True]
        state.on_tick(2.0, busy=0, queue_len=4, head_wait=1.0)
        assert state.app_blocked.tolist() == [False, True, True]
        # The floor: criticality 0 is never shed, however long the
        # overload persists — brownout, not blackout.
        state.on_tick(3.0, busy=0, queue_len=4, head_wait=1.0)
        assert state.app_blocked.tolist() == [False, True, True]

        state.on_tick(4.0, busy=0, queue_len=0, head_wait=None)
        assert state.app_blocked.tolist() == [False, False, True]
        state.on_tick(5.0, busy=0, queue_len=0, head_wait=None)
        assert not state.app_blocked.any()

    def test_breaker_trips_and_reopens(self):
        plane = ControlPlane(
            overload=OverloadPolicy(
                breaker_failure_threshold=0.5,
                breaker_min_failures=2,
                breaker_open_seconds=10.0,
            )
        )
        state = state_for(plane)
        state.record_failure(0)
        state.record_failure(0)
        state.record_completion(0, 0.1)
        state.record_completion(1, 0.1)
        state.on_tick(0.0, busy=0, queue_len=0, head_wait=None)
        assert state.breaker_trips == 1
        assert state.app_blocked.tolist() == [True, False, False]
        assert not state.admit(0) and state.admit(1)

        # Healthy window after the open period: the app is readmitted.
        state.on_tick(11.0, busy=0, queue_len=0, head_wait=None)
        assert not state.app_blocked.any()

    def test_breaker_needs_both_count_and_fraction(self):
        plane = ControlPlane(
            overload=OverloadPolicy(
                breaker_failure_threshold=0.5, breaker_min_failures=5
            )
        )
        state = state_for(plane)
        state.record_failure(0)
        state.record_failure(0)
        state.on_tick(0.0, busy=0, queue_len=0, head_wait=None)
        assert state.breaker_trips == 0  # 2 failures < min_failures

        # Windows reset each tick: old failures don't accumulate.
        for _ in range(3):
            state.record_failure(0)
        state.on_tick(1.0, busy=0, queue_len=0, head_wait=None)
        assert state.breaker_trips == 0  # 3 < 5 in this window

    def test_gating_disabled_admits_everything(self):
        state = state_for(
            ControlPlane(autoscaler=AutoscalerPolicy(min_instances=2))
        )
        assert not state.gating_active
        assert all(state.admit(app) for app in (0, 1, 2))
        assert state.gate_mask(np.array([0, 1, 2], dtype=np.int64)).all()


class TestShedVictims:
    def test_picks_largest_keys_worst_first(self):
        entries = [
            (0, (5, 0)),
            (1, (2, 1)),
            (2, (9, 2)),
            (3, (9, 3)),
        ]
        assert ControllerState.shed_victims(entries, 2) == [3, 2]

    def test_zero_count_and_empty_queue(self):
        assert ControllerState.shed_victims([(0, (1, 0))], 0) == []
        assert ControllerState.shed_victims([], 5) == []

    def test_count_beyond_queue_sheds_all(self):
        entries = [(0, (1, 0)), (1, (2, 1))]
        assert ControllerState.shed_victims(entries, 10) == [1, 0]


class TestRouting:
    def test_inert_plane_changes_nothing(self, suite, model):
        trace = small_trace(suite)

        def run(control):
            return RackSimulation(
                model, suite, max_instances=8, seed=3, control=control
            ).run(trace)

        inert = RackSimulation(
            model, suite, max_instances=8, seed=3, control=ControlPlane()
        )
        assert not inert._control_active()
        assert run(ControlPlane()).identical_to(run(None))

    def test_control_requires_keyed_policy(self, suite, model):
        class NotKeyed:
            pass

        class StubFactory:
            def build(self):
                return NotKeyed()

        simulation = RackSimulation(
            model,
            suite,
            max_instances=8,
            seed=3,
            policy=StubFactory(),
            control=observer_plane(8),
        )
        with pytest.raises(ConfigurationError, match="keyed policy"):
            simulation.run(small_trace(suite))

    def test_control_series_carries_telemetry(self, suite, model):
        trace = small_trace(suite)
        series = RackSimulation(
            model,
            suite,
            max_instances=8,
            seed=3,
            control=ControlPlane(
                autoscaler=AutoscalerPolicy(min_instances=2)
            ),
        ).run(trace)
        assert len(series.live_instances) == len(series.sample_times)
        assert series.app_catalog  # the catalog names every trace app
        assert set(trace.app_names) <= set(series.app_catalog)
        assert len(series.completed_app_ids) == len(series.completed_times)

    def test_completed_latencies_for_apps_partitions_total(
        self, suite, model
    ):
        trace = small_trace(suite)
        series = RackSimulation(
            model,
            suite,
            max_instances=8,
            seed=3,
            control=observer_plane(8),
        ).run(trace)
        per_app = [
            len(series.completed_latencies_for_apps([name]))
            for name in series.app_catalog
        ]
        assert sum(per_app) == len(series.completed_latency_seconds)

    def test_latencies_for_apps_empty_without_record(self, suite, model):
        series = RackSimulation(model, suite, max_instances=8, seed=3).run(
            small_trace(suite)
        )
        assert len(series.completed_latencies_for_apps(list(suite))) == 0
