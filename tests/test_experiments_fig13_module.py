"""The Fig. 13 experiment module at reduced scale."""

import numpy as np
import pytest

from repro.experiments import fig13
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context


@pytest.fixture(scope="module")
def study():
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    # 1/40th of the paper's request rates against 1/40th of the fleet:
    # the same saturation regime, seconds instead of minutes to run.
    return fig13.run(max_instances=5, context=context, rate_scale=0.025)


def test_trace_matches_paper_duration(study):
    assert study.trace.duration_seconds == pytest.approx(20 * 60)


def test_all_requests_complete(study):
    assert (
        len(study.baseline.completed_latency_seconds)
        + study.baseline.dropped_requests
        == study.baseline.total_requests
    )
    assert len(study.dscs.completed_latency_seconds) == study.dscs.total_requests


def test_baseline_queues_dscs_does_not(study):
    assert study.baseline_peak_queue > 10
    assert study.dscs_peak_queue <= study.baseline_peak_queue / 5


def test_baseline_latency_climbs_under_burst(study):
    base = study.baseline.mean_latency_per_bucket(60.0)
    dscs = study.dscs.mean_latency_per_bucket(60.0)
    base_valid = base[~np.isnan(base)]
    dscs_valid = dscs[~np.isnan(dscs)]
    # The baseline's worst minute is far above its best; DSCS stays flat.
    assert base_valid.max() > 2 * base_valid.min()
    assert dscs_valid.max() < 1.5 * dscs_valid.min()


def test_dscs_mean_latency_much_lower(study):
    assert (
        study.dscs.mean_latency_seconds
        < study.baseline.mean_latency_seconds / 3
    )


def test_requests_per_second_series_shape(study):
    rps = study.trace.requests_per_second(60.0)
    assert len(rps) == 20  # one bucket per minute
    assert rps.max() > rps.min()


class TestPolicySweep:
    @pytest.fixture(scope="class")
    def context(self):
        return build_context(platform_names=[BASELINE_NAME, DSCS_NAME])

    def test_policy_grid_covers_all_policies(self, context):
        results = fig13.policy_sweep(
            rate_scales=(0.02,),
            max_instances=(3,),
            seed=5,
            context=context,
        )
        cells = {(r.scenario.platform, r.scenario.policy) for r in results}
        assert len(cells) == 8  # 2 platforms x 4 policies
        total = results[0].series.total_requests
        for result in results:
            assert result.series.total_requests == total

    def test_explicit_priorities_change_criticality_cells(self, context):
        target = sorted(context.applications)[-1]  # last alphabetically
        kwargs = dict(
            rate_scales=(0.02,),
            max_instances=(2,),
            policies=("criticality",),
            seed=5,
            context=context,
        )
        default = fig13.policy_sweep(**kwargs)
        boosted = fig13.policy_sweep(priorities=(f"{target}=0",), **kwargs)
        # Boosting the alphabetically-last app genuinely reorders the
        # congested queue relative to the alphabetical default ranking.
        assert not np.array_equal(
            default[0].series.completed_latency_seconds,
            boosted[0].series.completed_latency_seconds,
        )

    def test_bad_priority_pairs_rejected(self, context):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig13.policy_sweep(
                rate_scales=(0.02,),
                max_instances=(2,),
                priorities=("no-separator",),
                context=context,
            )
        with pytest.raises(ConfigurationError):
            fig13.policy_sweep(
                rate_scales=(0.02,),
                max_instances=(2,),
                priorities=("app=not-an-int",),
                context=context,
            )
