"""Storage-node interference and multi-CSD fan-out."""

import numpy as np
import pytest

from repro.cluster.interference import (
    CoLocatedFunctionLoad,
    StorageNodeCPU,
    StorageTrafficProfile,
    dscs_co_located_load,
    ns_cpu_co_located_load,
)
from repro.core.fanout import FanoutExecution
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import build_application
from repro.platforms.registry import dscs_dsa


class TestInterference:
    def test_traffic_profile_load(self):
        traffic = StorageTrafficProfile(
            requests_per_second=1000, cpu_seconds_per_request=1e-3
        )
        assert traffic.offered_load == pytest.approx(1.0)

    def test_dscs_barely_inflates_storage_latency(self):
        cpu = StorageNodeCPU(cores=8)
        traffic = StorageTrafficProfile()
        dscs = dscs_co_located_load(invocations_per_second=10)
        result = cpu.interference(traffic, dscs)
        assert result.latency_inflation < 1.05  # <5% impact (paper §3 claim)

    def test_ns_cpu_platform_inflates_substantially(self):
        cpu = StorageNodeCPU(cores=8)
        traffic = StorageTrafficProfile()
        # An NS-ARM-style platform runs ~400 ms of compute per invocation
        # on the node's cores.
        ns = ns_cpu_co_located_load(
            invocations_per_second=10, compute_seconds_per_invocation=0.4
        )
        result = cpu.interference(traffic, ns)
        assert result.latency_inflation > 1.5

    def test_overload_reported_as_saturation(self):
        cpu = StorageNodeCPU(cores=2)
        traffic = StorageTrafficProfile()
        ns = ns_cpu_co_located_load(
            invocations_per_second=20, compute_seconds_per_invocation=0.4
        )
        result = cpu.interference(traffic, ns)
        assert result.saturated
        assert result.latency_inflation == float("inf")

    def test_baseline_saturation_rejected(self):
        cpu = StorageNodeCPU(cores=1)
        traffic = StorageTrafficProfile(
            requests_per_second=20_000, cpu_seconds_per_request=120e-6
        )
        with pytest.raises(ConfigurationError):
            cpu.interference(traffic, dscs_co_located_load(1))

    def test_dscs_impact_below_ns_impact(self):
        cpu = StorageNodeCPU(cores=8)
        traffic = StorageTrafficProfile()
        rate = 8.0
        dscs = cpu.interference(traffic, dscs_co_located_load(rate))
        ns = cpu.interference(
            traffic,
            ns_cpu_co_located_load(rate, compute_seconds_per_invocation=0.3),
        )
        assert dscs.latency_inflation < ns.latency_inflation

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            StorageNodeCPU(cores=0)
        with pytest.raises(ConfigurationError):
            CoLocatedFunctionLoad(-1, 0.1)
        with pytest.raises(ConfigurationError):
            StorageTrafficProfile(cpu_seconds_per_request=0)


class TestFanout:
    @pytest.fixture(scope="class")
    def app(self):
        return build_application("Content Moderation")  # largest payloads

    @pytest.fixture(scope="class")
    def model(self):
        return ServerlessExecutionModel(platform=dscs_dsa())

    def test_fanout_reduces_latency_for_data_heavy_app(self, app, model):
        rng = np.random.default_rng(0)
        single = model.invoke(app, rng).latency_seconds
        fanout = FanoutExecution(model=model, num_drives=4).invoke(
            app, np.random.default_rng(0)
        )
        assert fanout.latency_seconds < single

    def test_fanout_energy_counts_all_shards(self, app, model):
        rng = np.random.default_rng(1)
        two = FanoutExecution(model=model, num_drives=2).invoke(app, rng)
        four = FanoutExecution(model=model, num_drives=4).invoke(
            app, np.random.default_rng(1)
        )
        # More shards, more total compute energy (merge is host-side).
        assert four.energy.compute_j > 0
        assert two.energy.compute_j > 0

    def test_fanout_platform_label(self, app, model):
        result = FanoutExecution(model=model, num_drives=3).invoke(
            app, np.random.default_rng(2)
        )
        assert result.platform.endswith("x3")

    def test_single_drive_fanout_close_to_plain(self, app, model):
        rng = np.random.default_rng(3)
        plain = model.invoke(app, np.random.default_rng(3)).latency_seconds
        one = FanoutExecution(model=model, num_drives=1).invoke(app, rng)
        assert one.latency_seconds == pytest.approx(plain, rel=0.2)

    def test_invalid_drive_count_rejected(self, model):
        with pytest.raises(ConfigurationError):
            FanoutExecution(model=model, num_drives=0)

    def test_diminishing_returns(self, app, model):
        latencies = []
        for k in (1, 2, 8):
            result = FanoutExecution(model=model, num_drives=k).invoke(
                app, np.random.default_rng(4)
            )
            latencies.append(result.latency_seconds)
        assert latencies[1] < latencies[0]
        gain_12 = latencies[0] / latencies[1]
        gain_28 = latencies[1] / latencies[2]
        assert gain_28 < gain_12 * 4  # sublinear scaling
