"""The chaos engines must be bit-identical — and inert configs free.

The fault-injection layer has two execution paths: the event-driven
chaos oracle and the vectorized chaos engine.  Everything the oracle
produces — series, latencies, drop times *and reasons*, retry/timeout/
kill/hedge counters, RNG end state, service-pool state — must match the
vectorized engine exactly, across seeds, fault mixes, and both policy
families (FCFS and keyed).  And a zero-fault schedule must degrade to
today's fault-free engines bit for bit, including the recorded
``BENCH_rack.json`` check hash.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.faults import FaultSchedule, FaultTimeline, RetryPolicy
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu, dscs_dsa

SEEDS = (1, 2, 3)

PLATFORM_BUILDERS = {
    "baseline": baseline_cpu,
    "dscs": dscs_dsa,
}

# Every failure process and every retry feature at once: instance
# crashes, correlated node outages, slowdown windows, queue timeouts,
# bounded retries with jittered backoff, and hedged dispatch.
FULL_FAULTS = FaultSchedule(
    instance_mtbf_seconds=120.0,
    instance_mttr_seconds=10.0,
    node_outage_mtbf_seconds=300.0,
    node_mttr_seconds=20.0,
    node_size=2,
    slowdown_rate_per_minute=4.0,
    slowdown_multiplier=2.5,
    slowdown_duration_seconds=5.0,
    seed=7,
)
FULL_RETRY = RetryPolicy(
    timeout_seconds=3.0,
    max_retries=2,
    backoff_base_seconds=0.2,
    backoff_cap_seconds=2.0,
    jitter=0.5,
    hedge_after_seconds=1.5,
)


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def models():
    return {
        name: ServerlessExecutionModel(platform=builder())
        for name, builder in PLATFORM_BUILDERS.items()
    }


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def policy_for(name, suite, models):
    if name == "fcfs":
        return None
    if name == "sjf":
        estimates = {
            app_name: float(
                np.mean(
                    models["baseline"].sample_latencies(
                        app, np.random.default_rng(0), 64
                    )
                )
            )
            for app_name, app in suite.items()
        }
        return PolicyFactory("sjf", service_estimates=estimates)
    if name == "dag":
        return PolicyFactory("dag", applications=suite)
    raise AssertionError(name)


def run_both(model, suite, trace, **kwargs):
    """One fresh simulation per engine; returns (sim, series) pairs."""
    runs = {}
    for engine in ("event", "vectorized"):
        sim = RackSimulation(model, suite, **kwargs)
        runs[engine] = (sim, sim.run(trace, engine=engine))
    return runs


def assert_bit_identical(runs):
    event_sim, event_series = runs["event"]
    fast_sim, fast_series = runs["vectorized"]
    assert event_series.identical_to(fast_series)
    # Identity must extend to simulator state: the same RNG stream was
    # consumed in the same order, leaving the same pools behind.
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )
    assert event_sim._service_cursor == fast_sim._service_cursor
    assert set(event_sim._service_samples) == set(fast_sim._service_samples)
    for name, pool in event_sim._service_samples.items():
        assert np.array_equal(pool, fast_sim._service_samples[name])


@pytest.mark.parametrize("policy", ("fcfs", "sjf"))
@pytest.mark.parametrize("seed", SEEDS)
def test_chaos_engines_identical_full_config(suite, models, policy, seed):
    """Everything on at once: crashes, outages, slowdowns, retries,
    timeouts, hedging — both policy families, several seeds."""
    trace = make_trace(suite, 0.05, seed)
    runs = run_both(
        models["baseline"],
        suite,
        trace,
        max_instances=4,
        queue_depth=30,
        seed=seed,
        policy=policy_for(policy, suite, models),
        faults=FULL_FAULTS,
        retry=FULL_RETRY,
    )
    assert_bit_identical(runs)
    series = runs["event"][1]
    # The perturbation genuinely fired (otherwise this test is vacuous).
    assert series.retries > 0
    assert series.timeouts > 0
    assert series.dropped_requests > 0
    assert sum(series.drop_breakdown().values()) == series.dropped_requests


@pytest.mark.parametrize("seed", SEEDS)
def test_node_outages_with_hedging_identical(suite, models, seed):
    """Correlated node loss + hedged dispatch on the keyed engine."""
    trace = make_trace(suite, 0.3, seed)
    runs = run_both(
        models["baseline"],
        suite,
        trace,
        max_instances=16,
        queue_depth=50,
        seed=seed,
        policy=policy_for("sjf", suite, models),
        faults=FaultSchedule(
            node_outage_mtbf_seconds=60.0,
            node_mttr_seconds=60.0,
            node_size=8,
            seed=11,
        ),
        retry=RetryPolicy(hedge_after_seconds=0.2),
    )
    assert_bit_identical(runs)
    series = runs["event"][1]
    assert series.crash_kills > 0
    assert series.hedges_launched > 0
    assert series.hedge_wins > 0


@pytest.mark.parametrize("seed", SEEDS)
def test_retry_only_identical(suite, models, seed):
    """No faults at all: the retry layer alone must stay bit-identical
    (queue-full rejections re-enter through the DAG policy's key)."""
    trace = make_trace(suite, 0.05, seed)
    runs = run_both(
        models["baseline"],
        suite,
        trace,
        max_instances=1,
        queue_depth=5,
        seed=seed,
        policy=policy_for("dag", suite, models),
        retry=RetryPolicy(
            max_retries=2, backoff_base_seconds=0.1, jitter=0.0
        ),
    )
    assert_bit_identical(runs)
    assert runs["event"][1].retries > 0


def test_slowdown_only_identical(suite, models):
    """Slowdown windows without capacity churn or a retry policy."""
    trace = make_trace(suite, 0.05, 1)
    runs = run_both(
        models["baseline"],
        suite,
        trace,
        max_instances=4,
        seed=1,
        faults=FaultSchedule(
            slowdown_rate_per_minute=6.0,
            slowdown_multiplier=3.0,
            slowdown_duration_seconds=4.0,
            seed=5,
        ),
    )
    assert_bit_identical(runs)
    # Slowdowns stretch service times, so latencies must differ from a
    # fault-free run — the windows genuinely applied.
    clean = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1
    ).run(trace, engine="vectorized")
    assert not np.array_equal(
        runs["event"][1].completed_latency_seconds,
        clean.completed_latency_seconds,
    )


@pytest.mark.parametrize("policy", ("fcfs", "sjf"))
def test_zero_fault_chaos_engines_reproduce_fault_free(
    suite, models, policy
):
    """The chaos engines run on an empty timeline + inert retry policy
    must equal today's fault-free engines bit for bit."""
    from repro.cluster.chaos_engine import (
        run_chaos_event,
        run_chaos_vectorized,
    )

    trace = make_trace(suite, 0.05, 2)
    factory = policy_for(policy, suite, models)

    def chaos_run(runner):
        sim = RackSimulation(
            models["baseline"],
            suite,
            max_instances=4,
            seed=2,
            policy=factory,
        )
        queue = factory.build() if factory else None
        if queue is None:
            from repro.cluster.schedulers import FCFSPolicy

            queue = FCFSPolicy()
        series = runner(
            sim, queue, trace, 1.0, FaultTimeline.empty(4), RetryPolicy()
        )
        return sim, series

    baseline_sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=2, policy=factory
    )
    baseline = baseline_sim.run(trace, engine="vectorized")
    for runner in (run_chaos_event, run_chaos_vectorized):
        sim, series = chaos_run(runner)
        assert series.identical_to(baseline)
        assert repr(sim._rng.bit_generator.state) == repr(
            baseline_sim._rng.bit_generator.state
        )
        assert series.retries == 0
        assert series.crash_kills == 0


def test_inert_config_routes_to_fault_free_engines(suite, models):
    """faults/retry objects that change nothing must not change the
    execution path either — the run stays on the vectorized engines."""
    trace = make_trace(suite, 0.05, 3)
    perturbed = RackSimulation(
        models["baseline"],
        suite,
        max_instances=4,
        seed=3,
        faults=FaultSchedule(),  # no process enabled
        retry=RetryPolicy(),  # no timeout, no retries, no hedging
    )
    plain = RackSimulation(models["baseline"], suite, max_instances=4, seed=3)
    assert not perturbed._chaos_active()
    assert perturbed.run(trace).identical_to(plain.run(trace))


def test_unsorted_trace_chaos_falls_back_to_event_engine(suite, models):
    """Chaos + an unsorted trace must route to the chaos oracle."""
    base = make_trace(suite, 0.05, 1)
    shuffled = RequestTrace(
        arrival_seconds=base.arrival_seconds[::-1].copy(),
        app_names=tuple(reversed(base.app_names)),
        duration_seconds=base.duration_seconds,
    )

    def run(engine):
        return RackSimulation(
            models["baseline"],
            suite,
            max_instances=4,
            queue_depth=30,
            seed=1,
            faults=FULL_FAULTS,
            retry=FULL_RETRY,
        ).run(shuffled, engine=engine)

    assert run("vectorized").identical_to(run("event"))


# ----------------------------------------------------------------------
# Zero-fault reproduction of the recorded benchmark hash.


def _digest(*parts) -> str:
    """``scripts/bench_common.digest`` re-stated (tests do not import
    from scripts/)."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return f"sha256:{hasher.hexdigest()}"


def _series_digest(series_by_platform) -> str:
    """``scripts/bench_common.series_digest`` re-stated: the full series,
    drop times *and reasons*, availability counters, and the per-reason
    drop breakdown (including ``shed``)."""
    parts = []
    for name in sorted(series_by_platform):
        series = series_by_platform[name]
        parts.extend(
            [
                name,
                series.completed_latency_seconds.tobytes(),
                series.completed_times.tobytes(),
                series.queue_depth.tobytes(),
                series.busy_instances.tobytes(),
                series.dropped_times.tobytes(),
                series.dropped_reasons.tobytes(),
                series.dropped_requests,
                series.total_requests,
                series.retries,
                series.timeouts,
                series.crash_kills,
                tuple(sorted(series.drop_breakdown().items())),
            ]
        )
    return _digest(*parts)


def test_zero_fault_run_reproduces_bench_rack_hash():
    """The full Fig. 13 workload with inert fault/retry objects attached
    must reproduce the recorded ``BENCH_rack.json`` check hash — the
    availability layer costs nothing and changes nothing until enabled."""
    from repro.cluster.trace import DEFAULT_RATE_ENVELOPE
    from repro.experiments.common import (
        BASELINE_NAME,
        DSCS_NAME,
        build_context,
    )

    bench_path = Path(__file__).resolve().parent.parent / "BENCH_rack.json"
    recorded = json.loads(bench_path.read_text())

    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    generator = TraceGenerator(
        context.app_names, rate_envelope=DEFAULT_RATE_ENVELOPE
    )
    trace = generator.generate(np.random.default_rng(13))
    assert len(trace) == recorded["workload"]["num_requests"]

    series = {}
    for name in (BASELINE_NAME, DSCS_NAME):
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=200,
            seed=13,
            faults=FaultSchedule(),
            retry=RetryPolicy(),
        )
        series[name] = simulation.run(trace, engine="vectorized")
    assert _series_digest(series) == recorded["check_hash"]
