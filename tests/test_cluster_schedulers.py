"""Scheduling policies (paper §5.3 + its future-work directions)."""

import numpy as np
import pytest

from repro.cluster.schedulers import (
    CriticalityPolicy,
    DAGAwarePolicy,
    FCFSPolicy,
    PolicyFactory,
    QueuedRequest,
    ShortestJobFirstPolicy,
)
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.errors import SchedulingError
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu


def request(app, seq, arrival=0.0):
    return QueuedRequest(arrival=arrival, app_name=app, sequence=seq)


class TestFCFS:
    def test_strict_arrival_order(self):
        policy = FCFSPolicy()
        for i, app in enumerate(("a", "b", "c")):
            policy.push(request(app, i))
        assert [policy.pop().app_name for _ in range(3)] == ["a", "b", "c"]

    def test_empty_pop_raises(self):
        with pytest.raises(SchedulingError):
            FCFSPolicy().pop()

    def test_len(self):
        policy = FCFSPolicy()
        policy.push(request("a", 0))
        assert len(policy) == 1


class TestSJF:
    def test_shortest_estimate_first(self):
        policy = ShortestJobFirstPolicy({"slow": 1.0, "fast": 0.1})
        policy.push(request("slow", 0))
        policy.push(request("fast", 1))
        assert policy.pop().app_name == "fast"
        assert policy.pop().app_name == "slow"

    def test_ties_break_by_sequence(self):
        policy = ShortestJobFirstPolicy({"a": 0.5})
        policy.push(request("a", 1))
        policy.push(request("a", 0))
        assert policy.pop().sequence == 0

    def test_unknown_app_sorts_last(self):
        policy = ShortestJobFirstPolicy({"known": 5.0})
        policy.push(request("mystery", 0))
        policy.push(request("known", 1))
        assert policy.pop().app_name == "known"

    def test_unknown_apps_collected_and_logged_once(self, caplog):
        policy = ShortestJobFirstPolicy({"known": 5.0})
        with caplog.at_level("WARNING", logger="repro.cluster.schedulers"):
            policy.push(request("mystery", 0))
            policy.push(request("mystery", 1))
            policy.push(request("ghost", 2))
            policy.push(request("known", 3))
        assert policy.unknown_apps == ("ghost", "mystery")
        logged = [r for r in caplog.records if "no service estimate" in r.message]
        assert len(logged) == 2  # once per unknown app, not per request

    def test_full_coverage_leaves_unknowns_empty(self):
        policy = ShortestJobFirstPolicy({"a": 1.0, "b": 2.0})
        policy.push(request("a", 0))
        policy.push(request("b", 1))
        assert policy.unknown_apps == ()

    def test_rejects_bad_estimates(self):
        with pytest.raises(SchedulingError):
            ShortestJobFirstPolicy({})
        with pytest.raises(SchedulingError):
            ShortestJobFirstPolicy({"a": 0.0})


class TestCriticality:
    def test_critical_class_first(self):
        policy = CriticalityPolicy({"wildfire": 0, "batch": 5})
        policy.push(request("batch", 0))
        policy.push(request("wildfire", 1))
        assert policy.pop().app_name == "wildfire"

    def test_fcfs_within_class(self):
        policy = CriticalityPolicy({"a": 1})
        policy.push(request("a", 0))
        policy.push(request("a", 1))
        assert policy.pop().sequence == 0

    def test_default_priority_for_unknown(self):
        policy = CriticalityPolicy({"vip": 0}, default_priority=9)
        assert policy.priority_of("stranger") == 9

    def test_empty_priorities_rejected(self):
        # An empty priority map silently degenerates to FCFS — reject it.
        with pytest.raises(SchedulingError):
            CriticalityPolicy({})

    def test_non_integer_priorities_rejected(self):
        with pytest.raises(SchedulingError):
            CriticalityPolicy({"vip": 1.5})
        with pytest.raises(SchedulingError):
            CriticalityPolicy({"vip": True})
        with pytest.raises(SchedulingError):
            CriticalityPolicy({"vip": 0}, default_priority=2.5)


class TestDAGAware:
    def test_prefers_deeper_pipelines(self):
        suite = benchmark_suite()
        deep = suite["Remote Sensing"].with_extra_inference_stages(3)
        apps = {"shallow": suite["Credit Risk Assessment"], "deep": deep}
        policy = DAGAwarePolicy(apps)
        policy.push(request("shallow", 0))
        policy.push(request("deep", 1))
        assert policy.pop().app_name == "deep"

    def test_requires_applications(self):
        with pytest.raises(SchedulingError):
            DAGAwarePolicy({})


class TestPolicyFactory:
    def test_builds_each_policy(self):
        suite = benchmark_suite()
        assert isinstance(PolicyFactory("fcfs").build(), FCFSPolicy)
        assert isinstance(
            PolicyFactory("sjf", service_estimates={"a": 1.0}).build(),
            ShortestJobFirstPolicy,
        )
        assert isinstance(
            PolicyFactory("criticality", priorities={"a": 0}).build(),
            CriticalityPolicy,
        )
        assert isinstance(
            PolicyFactory("dag", applications=suite).build(), DAGAwarePolicy
        )

    def test_unknown_policy_rejected(self):
        with pytest.raises(SchedulingError):
            PolicyFactory("lottery").build()

    def test_sjf_requires_estimates(self):
        with pytest.raises(SchedulingError):
            PolicyFactory("sjf").build()

    def test_criticality_requires_priorities(self):
        # No/empty priorities used to silently build a slow FCFS queue.
        with pytest.raises(SchedulingError):
            PolicyFactory("criticality").build()
        with pytest.raises(SchedulingError):
            PolicyFactory("criticality", priorities={}).build()

    def test_criticality_priorities_must_be_ints(self):
        with pytest.raises(SchedulingError):
            PolicyFactory("criticality", priorities={"a": "high"}).build()


class TestPoliciesAtScale:
    @pytest.fixture(scope="class")
    def setup(self):
        suite = benchmark_suite()
        model = ServerlessExecutionModel(platform=baseline_cpu())
        generator = TraceGenerator(
            list(suite), rate_envelope=(8.0, 16.0, 8.0), segment_seconds=20.0
        )
        trace = generator.generate(np.random.default_rng(3))
        return suite, model, trace

    def _mean_latency(self, setup, policy):
        suite, model, trace = setup
        sim = RackSimulation(
            model, suite, max_instances=2, seed=11, policy=policy
        )
        return sim.run(trace).mean_latency_seconds

    def test_sjf_beats_fcfs_on_mean_latency(self, setup):
        suite, model, _ = setup
        estimates = {
            name: model.invoke(app, np.random.default_rng(0)).latency_seconds
            for name, app in suite.items()
        }
        fcfs = self._mean_latency(setup, PolicyFactory("fcfs"))
        sjf = self._mean_latency(
            setup, PolicyFactory("sjf", service_estimates=estimates)
        )
        # SJF minimises mean waiting time in a single queue (classic result).
        assert sjf < fcfs

    def test_criticality_prioritises_chosen_app(self, setup):
        suite, model, trace = setup
        target = "Remote Sensing"
        boosted = RackSimulation(
            model,
            suite,
            max_instances=2,
            seed=11,
            policy=PolicyFactory("criticality", priorities={target: 0}),
        ).run(trace)
        plain = RackSimulation(
            model, suite, max_instances=2, seed=11, policy=PolicyFactory("fcfs")
        ).run(trace)
        # All requests complete either way; the boosted run is valid.
        assert len(boosted.completed_latency_seconds) == len(trace)
        assert len(plain.completed_latency_seconds) == len(trace)
