"""Model-zoo sanity: every Table 1 model builds with credible footprints."""

import pytest

from repro.models.zoo import (
    frame_stack_cnn,
    gpt2_decoder,
    image_preprocess,
    inception_v3,
    logistic_regression,
    mlp,
    resnet50,
    tabular_preprocess,
    text_preprocess,
    transformer_seq2seq,
    vit,
    yolo_detector,
)

ALL_MODELS = [
    logistic_regression,
    resnet50,
    inception_v3,
    yolo_detector,
    frame_stack_cnn,
    gpt2_decoder,
    transformer_seq2seq,
    vit,
]


@pytest.mark.parametrize("builder", ALL_MODELS)
def test_model_builds_and_validates(builder):
    graph = builder()
    assert len(graph) > 0
    assert graph.stats().total_flops > 0


def test_resnet50_workload_magnitude():
    stats = resnet50().stats()
    # ~2-8 GMACs and ~20-30M int8 parameters for the folded model.
    assert 2e9 < stats.total_macs < 8e9
    assert 15e6 < stats.weight_bytes < 40e6


def test_inception_v3_magnitude():
    stats = inception_v3().stats()
    assert 2e9 < stats.total_macs < 8e9


def test_yolo_is_heaviest_cnn():
    assert yolo_detector(416).stats().total_macs > resnet50().stats().total_macs


def test_yolo_resolution_scales_work():
    assert yolo_detector(416).stats().total_macs > yolo_detector(320).stats().total_macs


def test_gpt2_weights_dominate_activations():
    stats = gpt2_decoder(seq=64, dim=768, layers=12, heads=12).stats()
    assert stats.weight_bytes > 50e6  # >50M parameters (int8 bytes)
    assert stats.weight_bytes > stats.input_bytes * 100


def test_gpt2_layers_scale_macs():
    small = gpt2_decoder(seq=64, dim=768, layers=6, heads=12).stats().total_macs
    large = gpt2_decoder(seq=64, dim=768, layers=12, heads=12).stats().total_macs
    assert large > 1.5 * small


def test_seq2seq_has_encoder_and_decoder_work():
    stats = transformer_seq2seq(
        src_seq=128, tgt_seq=128, dim=512, encoder_layers=4, decoder_layers=4, heads=8
    ).stats()
    assert stats.total_macs > 1e9


def test_vit_patch_divisibility_enforced():
    with pytest.raises(ValueError):
        vit(image_size=225, patch=16)


def test_vit_base_magnitude():
    stats = vit(224).stats()
    # ViT-Base: ~86M params, ~17 GMACs.
    assert 60e6 < stats.weight_bytes < 120e6
    assert 10e9 < stats.total_macs < 25e9


def test_frame_stack_scales_with_frames():
    two = frame_stack_cnn(frames=2).stats().total_macs
    four = frame_stack_cnn(frames=4).stats().total_macs
    assert four == pytest.approx(2 * two, rel=0.05)


def test_logistic_regression_is_tiny():
    stats = logistic_regression().stats()
    assert stats.total_macs < 1e6


def test_mlp_builds_with_hidden_layers():
    graph = mlp(rows=16, features=8, hidden=(32, 16), classes=4)
    assert graph.output.shape == (16, 4)


@pytest.mark.parametrize(
    "builder,args",
    [
        (image_preprocess, (224,)),
        (text_preprocess, (128,)),
        (tabular_preprocess, (256, 32)),
    ],
)
def test_preprocess_graphs_are_vector_only(builder, args):
    graph = builder(*args)
    assert graph.stats().num_matrix_ops == 0
    assert graph.stats().total_vector_elements > 0


def test_image_preprocess_quantizes_output():
    graph = image_preprocess(224, raw_size=512)
    assert graph.output.dtype.num_bytes == 1


def test_image_preprocess_output_shape():
    graph = image_preprocess(128, raw_size=256, channels=3)
    assert graph.output.shape == (1, 3, 128, 128)
