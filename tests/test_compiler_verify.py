"""Independent verification of compiled programs."""

import pytest

from repro.accelerator.config import DSAConfig, paper_design_point
from repro.accelerator.isa import GemmTile, Halt, LoadTile, Program
from repro.compiler import compile_graph
from repro.compiler.codegen import generate
from repro.compiler.verify import verify_program
from repro.errors import CompilationError
from repro.models.builder import GraphBuilder
from repro.models.tensor import DType, TensorSpec
from repro.models.zoo import gpt2_decoder, image_preprocess, resnet50, vit


def simple_graph():
    builder = GraphBuilder("simple", TensorSpec("x", (32, 64), DType.INT8))
    builder.linear(48).relu().linear(16).softmax()
    return builder.build()


@pytest.mark.parametrize(
    "graph_builder",
    [
        simple_graph,
        resnet50,
        lambda: gpt2_decoder(seq=64, dim=768, layers=4, heads=12),
        lambda: vit(dim=384, layers=4, heads=6),
        lambda: image_preprocess(224),
    ],
)
def test_generated_programs_verify_clean(graph_builder):
    graph = graph_builder()
    config = paper_design_point()
    report = verify_program(graph, generate(graph, config), config)
    assert report.ok, report.problems
    assert "mac_conservation" in report.checks_passed
    assert "traffic_floor" in report.checks_passed
    assert "load_before_compute" in report.checks_passed


def test_verification_across_design_points():
    graph = simple_graph()
    for dims in ((16, 16), (64, 32), (256, 256)):
        config = DSAConfig(pe_rows=dims[0], pe_cols=dims[1])
        report = verify_program(graph, generate(graph, config), config)
        assert report.ok, (dims, report.problems)


def test_detects_mac_loss():
    graph = simple_graph()
    config = paper_design_point()
    program = generate(graph, config)
    truncated = Program(
        graph.name,
        [i for i in program if not isinstance(i, GemmTile)],
    )
    report = verify_program(graph, truncated, config)
    assert not report.ok
    assert any("MACs" in problem for problem in report.problems)


def test_detects_compute_before_load():
    graph = simple_graph()
    config = paper_design_point()
    rogue = Program(
        graph.name,
        [GemmTile("orphan", m=1, n=1, k=1), Halt("end")],
    )
    report = verify_program(graph, rogue, config)
    assert any("before any load" in problem for problem in report.problems)


def test_detects_oversized_tiles():
    graph = simple_graph()
    small = DSAConfig(pe_rows=8, pe_cols=8)
    big_tile_program = Program(
        graph.name,
        [
            LoadTile("op", num_bytes=1024),
            GemmTile("op", m=1, n=16, k=16),
            Halt("end"),
        ],
    )
    report = verify_program(graph, big_tile_program, small)
    assert any("exceed the array" in problem for problem in report.problems)


def test_require_ok_raises_with_context():
    graph = simple_graph()
    config = paper_design_point()
    bad = Program(graph.name, [Halt("end")])
    report = verify_program(graph, bad, config)
    with pytest.raises(CompilationError):
        report.require_ok()


def test_compile_graph_verify_flag():
    exe = compile_graph(simple_graph(), paper_design_point(), verify=True)
    assert exe.simulate().latency_s > 0
