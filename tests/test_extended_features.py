"""Extended features: chain fusion, extended zoo, roofline analysis."""

import numpy as np
import pytest

from repro.accelerator.config import DDR4, DSAConfig, HBM2, paper_design_point
from repro.analysis.roofline import analyze
from repro.core.breakdown import Component
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import build_application
from repro.models.zoo import bert_encoder, dlrm, gpt2_decoder, resnet50, unet
from repro.platforms.registry import dscs_dsa


class TestChainFusion:
    """Paper §5.3: chained functions on the same DSA skip the P2P hop."""

    @pytest.fixture(scope="class")
    def app(self):
        return build_application("Asset Damage Detection")

    def test_fusion_reduces_p2p_traffic_time(self, app):
        plain = ServerlessExecutionModel(platform=dscs_dsa())
        fused = ServerlessExecutionModel(
            platform=dscs_dsa(), fuse_chained_functions=True
        )
        # Matched congestion draws isolate the fusion effect.
        plain_result = plain.invoke(app, np.random.default_rng(0))
        fused_result = fused.invoke(app, np.random.default_rng(0))
        assert fused_result.latency.get(Component.P2P_WRITE) < plain_result.latency.get(
            Component.P2P_WRITE
        )
        assert fused_result.latency_seconds <= plain_result.latency_seconds

    def test_fusion_keeps_first_read_and_last_write(self, app):
        rng = np.random.default_rng(0)
        fused = ServerlessExecutionModel(
            platform=dscs_dsa(), fuse_chained_functions=True
        )
        result = fused.invoke(app, rng)
        # f1 still reads the request from flash; f2 still writes its result.
        assert result.latency.get(Component.P2P_READ) > 0
        assert result.latency.get(Component.P2P_WRITE) > 0

    def test_fusion_gain_grows_with_extra_stages(self, app):
        extended = app.with_extra_inference_stages(3)
        plain = ServerlessExecutionModel(platform=dscs_dsa())
        fused = ServerlessExecutionModel(
            platform=dscs_dsa(), fuse_chained_functions=True
        )
        gain_base = (
            plain.invoke(app, np.random.default_rng(0)).latency_seconds
            - fused.invoke(app, np.random.default_rng(0)).latency_seconds
        )
        gain_ext = (
            plain.invoke(extended, np.random.default_rng(0)).latency_seconds
            - fused.invoke(extended, np.random.default_rng(0)).latency_seconds
        )
        assert gain_ext > gain_base


class TestExtendedZoo:
    def test_bert_builds_with_plausible_size(self):
        stats = bert_encoder().stats()
        assert 60e6 < stats.weight_bytes < 160e6  # ~110M params
        assert stats.total_macs > 5e9

    def test_unet_builds_and_downsamples(self):
        graph = unet(image_size=128, depth=3)
        assert graph.stats().num_matrix_ops > 10
        assert graph.output.shape[1] == 2  # class maps

    def test_unet_rejects_indivisible_size(self):
        with pytest.raises(ValueError):
            unet(image_size=100, depth=4)

    def test_dlrm_is_embedding_dominated(self):
        stats = dlrm().stats()
        from repro.models.ops import Embedding

        table_bytes = sum(
            op.weight_bytes() for op in dlrm() if isinstance(op, Embedding)
        )
        assert table_bytes > 0.8 * stats.weight_bytes

    def test_extended_models_compile_and_simulate(self):
        from repro.compiler import compile_graph

        for graph in (bert_encoder(seq=64, layers=4), unet(image_size=64, depth=2),
                      dlrm(embedding_rows=10_000)):
            report = compile_graph(graph, paper_design_point()).simulate()
            assert report.latency_s > 0


class TestRoofline:
    def test_gpt2_is_bandwidth_bound_on_ddr4(self):
        point = analyze(
            gpt2_decoder(seq=64, dim=768, layers=12, heads=12),
            DSAConfig(memory=DDR4),
        )
        assert not point.compute_bound

    def test_gpt2_nears_compute_bound_on_hbm2(self):
        ddr4 = analyze(
            gpt2_decoder(seq=64, dim=768, layers=12, heads=12),
            DSAConfig(memory=DDR4),
        )
        hbm = analyze(
            gpt2_decoder(seq=64, dim=768, layers=12, heads=12),
            DSAConfig(memory=HBM2),
        )
        # Same traffic, much lower ridge: HBM2 moves it toward compute-bound.
        assert hbm.ridge_intensity < ddr4.ridge_intensity
        assert hbm.operational_intensity == pytest.approx(
            ddr4.operational_intensity, rel=0.01
        )

    def test_efficiency_in_unit_interval(self):
        point = analyze(resnet50(), paper_design_point())
        assert 0 < point.roofline_efficiency <= 1.0

    def test_ceiling_never_exceeds_peak(self):
        point = analyze(resnet50(), paper_design_point())
        assert point.roofline_bound_macs_per_s <= point.peak_macs_per_s

    def test_intensity_positive(self):
        point = analyze(resnet50(), paper_design_point())
        assert point.operational_intensity > 0
        assert point.ridge_intensity > 0
