"""Latency-distribution tests, including hypothesis property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.sim.distributions import (
    ConstantDistribution,
    ExponentialDistribution,
    LognormalDistribution,
    ShiftedLognormal,
    UniformDistribution,
)


def rng():
    return np.random.default_rng(42)


class TestConstant:
    def test_sample_returns_value(self):
        assert ConstantDistribution(0.5).sample(rng()) == 0.5

    def test_sample_many_is_uniform(self):
        samples = ConstantDistribution(0.25).sample_many(rng(), 10)
        assert np.all(samples == 0.25)

    def test_median(self):
        assert ConstantDistribution(1.5).median() == 1.5

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            ConstantDistribution(-1.0)


class TestUniform:
    def test_samples_within_bounds(self):
        dist = UniformDistribution(1.0, 2.0)
        samples = dist.sample_many(rng(), 1000)
        assert samples.min() >= 1.0 and samples.max() <= 2.0

    def test_median_is_midpoint(self):
        assert UniformDistribution(2.0, 4.0).median() == 3.0

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDistribution(2.0, 1.0)


class TestExponential:
    def test_mean_close_to_parameter(self):
        samples = ExponentialDistribution(0.1).sample_many(rng(), 20000)
        assert samples.mean() == pytest.approx(0.1, rel=0.05)

    def test_median_analytic(self):
        dist = ExponentialDistribution(1.0)
        assert dist.median() == pytest.approx(np.log(2))

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ConfigurationError):
            ExponentialDistribution(0.0)


class TestLognormal:
    def test_median_is_exp_mu(self):
        assert LognormalDistribution(0.0, 1.0).median() == 1.0

    def test_empirical_median(self):
        dist = LognormalDistribution(np.log(0.05), 0.4)
        samples = dist.sample_many(rng(), 20000)
        assert np.median(samples) == pytest.approx(0.05, rel=0.05)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigurationError):
            LognormalDistribution(0.0, -0.1)


class TestShiftedLognormal:
    def test_median_matches_target(self):
        dist = ShiftedLognormal(floor=0.002, median_total=0.012, p99_over_median=2.1)
        samples = dist.sample_many(rng(), 50000)
        assert np.median(samples) == pytest.approx(0.012, rel=0.03)

    def test_p99_matches_tail_ratio(self):
        dist = ShiftedLognormal(floor=0.002, median_total=0.012, p99_over_median=2.1)
        samples = dist.sample_many(rng(), 200000)
        assert np.percentile(samples, 99) == pytest.approx(
            2.1 * 0.012, rel=0.05
        )

    def test_samples_exceed_floor(self):
        dist = ShiftedLognormal(floor=0.002, median_total=0.012, p99_over_median=2.1)
        assert dist.sample_many(rng(), 1000).min() > 0.002

    def test_analytic_p99(self):
        dist = ShiftedLognormal(floor=0.001, median_total=0.01, p99_over_median=3.0)
        assert dist.p99() == pytest.approx(0.03)

    def test_scaled_preserves_tail_ratio(self):
        dist = ShiftedLognormal(floor=0.002, median_total=0.012, p99_over_median=2.1)
        scaled = dist.scaled(2.0)
        assert scaled.median() == pytest.approx(0.024)
        assert scaled.p99_over_median == 2.1

    def test_rejects_median_below_floor(self):
        with pytest.raises(ConfigurationError):
            ShiftedLognormal(floor=0.01, median_total=0.005, p99_over_median=2.0)

    def test_rejects_tail_ratio_at_most_one(self):
        with pytest.raises(ConfigurationError):
            ShiftedLognormal(floor=0.0, median_total=0.01, p99_over_median=1.0)

    def test_rejects_bad_scale(self):
        dist = ShiftedLognormal(floor=0.002, median_total=0.012, p99_over_median=2.1)
        with pytest.raises(ConfigurationError):
            dist.scaled(0.0)


@settings(max_examples=40, deadline=None)
@given(
    floor=st.floats(min_value=0.0, max_value=0.01),
    extra=st.floats(min_value=0.001, max_value=0.1),
    ratio=st.floats(min_value=1.1, max_value=5.0),
)
def test_shifted_lognormal_samples_are_positive(floor, extra, ratio):
    dist = ShiftedLognormal(
        floor=floor, median_total=floor + extra, p99_over_median=ratio
    )
    samples = dist.sample_many(np.random.default_rng(0), 50)
    assert np.all(samples >= floor)


@settings(max_examples=40, deadline=None)
@given(
    mu=st.floats(min_value=-5, max_value=2),
    sigma=st.floats(min_value=0.0, max_value=2.0),
)
def test_lognormal_median_analytic_property(mu, sigma):
    dist = LognormalDistribution(mu, sigma)
    assert dist.median() == pytest.approx(np.exp(mu))
