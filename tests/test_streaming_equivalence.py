"""The streaming engine must be bit-identical at every chunk size.

The chunked execution path re-implements every vectorized family —
FCFS, keyed policies, chaos, control — folding bounded chunks into
running telemetry instead of materializing whole-trace arrays.  The
contract under test:

- for chunk sizes smaller than a busy period, a non-divisor of the
  trace length, and larger than the whole trace, the streamed result is
  bit-identical to the materialized vectorized engine *and* the
  event-driven oracle: series, drop times and reasons, availability and
  scaling counters, quantile sketch, RNG end state, service-pool
  cursors;
- a generator-backed :class:`StreamedTrace` source reproduces
  ``generate()`` exactly while the engine retains only bounded
  service-pool windows (the windowed-replay path);
- sketch percentiles track the exact order statistics within the
  sketch's documented ``relative_error_bound``;
- ``chunk_requests`` is validated, and streamed sources are rejected by
  materialized engines;
- the fleet runner streams per-rack: worker- and chunk-invariant, with
  merged sketches identical to the materialized stitch.
"""

import numpy as np
import pytest

from repro.cluster.control import (
    AutoscalerPolicy,
    ControlPlane,
    OverloadPolicy,
)
from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.fleet import FleetTopology
from repro.cluster.fleet_engine import FleetRunner
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.streaming import StreamedSeries
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import benchmark_suite
from repro.experiments.common import BASELINE_NAME, build_context
from repro.platforms.registry import baseline_cpu

# Smaller than a busy period / a non-divisor of the trace / larger than
# the whole trace: the three chunk regimes the fold must not observe.
CHUNKS = (7, 997, 10**6)

CHAOS_FAULTS = FaultSchedule(
    instance_mtbf_seconds=120.0,
    instance_mttr_seconds=10.0,
    node_outage_mtbf_seconds=300.0,
    node_mttr_seconds=20.0,
    node_size=2,
    slowdown_rate_per_minute=4.0,
    slowdown_multiplier=2.5,
    slowdown_duration_seconds=5.0,
    seed=7,
)
CHAOS_RETRY = RetryPolicy(
    timeout_seconds=3.0,
    max_retries=2,
    backoff_base_seconds=0.2,
    backoff_cap_seconds=2.0,
    jitter=0.5,
    hedge_after_seconds=1.5,
)


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def model():
    return ServerlessExecutionModel(platform=baseline_cpu())


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def sjf_policy(model, suite):
    estimates = {
        name: float(
            np.mean(
                model.sample_latencies(app, np.random.default_rng(0), 64)
            )
        )
        for name, app in suite.items()
    }
    return PolicyFactory("sjf", service_estimates=estimates)


def family_kwargs(family, model, suite):
    """Simulation kwargs for one engine family (fresh policy objects)."""
    if family == "fcfs":
        return dict(max_instances=4, queue_depth=30, seed=1)
    if family == "keyed-sjf":
        return dict(
            max_instances=4,
            queue_depth=30,
            seed=1,
            policy=sjf_policy(model, suite),
        )
    if family == "chaos-fcfs":
        return dict(
            max_instances=4,
            queue_depth=30,
            seed=1,
            faults=CHAOS_FAULTS,
            retry=CHAOS_RETRY,
        )
    if family == "chaos-sjf":
        return dict(
            max_instances=4,
            queue_depth=30,
            seed=1,
            policy=sjf_policy(model, suite),
            faults=CHAOS_FAULTS,
            retry=CHAOS_RETRY,
        )
    if family == "control-sjf":
        return dict(
            max_instances=8,
            queue_depth=30,
            seed=1,
            policy=sjf_policy(model, suite),
            control=ControlPlane(
                autoscaler=AutoscalerPolicy(
                    policy="queue_depth",
                    min_instances=4,
                    warmup_seconds=1.0,
                ),
                overload=OverloadPolicy(
                    admission_rate_rps=9.0, admission_burst_seconds=1.0
                ),
            ),
        )
    if family == "control-chaos-dag":
        return dict(
            max_instances=8,
            queue_depth=30,
            seed=2,
            policy=PolicyFactory("dag", applications=suite),
            faults=CHAOS_FAULTS,
            retry=CHAOS_RETRY,
            control=ControlPlane(
                autoscaler=AutoscalerPolicy(
                    policy="target_utilization",
                    min_instances=4,
                    scale_down_cooldown_seconds=5.0,
                    warmup_seconds=2.5,
                ),
            ),
        )
    raise AssertionError(family)


FAMILIES = (
    "fcfs",
    "keyed-sjf",
    "chaos-fcfs",
    "chaos-sjf",
    "control-sjf",
    "control-chaos-dag",
)


def run_streamed(model, suite, trace, chunk, **kwargs):
    simulation = RackSimulation(model, suite, **kwargs)
    series = simulation.run(
        trace, engine="streaming", chunk_requests=chunk
    )
    return simulation, series


# ----------------------------------------------------------------------
# Chunk-size invariance against both materialized engines.


@pytest.mark.parametrize("family", FAMILIES)
def test_chunk_invariant_vs_materialized_and_oracle(family, model, suite):
    """Every chunk regime reproduces the vectorized engine and the
    event oracle bit for bit — including RNG end state and service-pool
    cursors, so a longer simulation would stay on the same stream."""
    trace = make_trace(suite, 0.05, 1)
    references = {}
    for engine in ("vectorized", "event"):
        simulation = RackSimulation(
            model, suite, **family_kwargs(family, model, suite)
        )
        series = simulation.run(trace, engine=engine)
        references[engine] = (
            simulation,
            StreamedSeries.from_series(series),
        )
    for chunk in CHUNKS:
        streamed_sim, streamed = run_streamed(
            model,
            suite,
            trace,
            chunk,
            **family_kwargs(family, model, suite),
        )
        for engine, (ref_sim, reference) in references.items():
            assert streamed.identical_to(reference), (family, chunk, engine)
            assert repr(streamed_sim._rng.bit_generator.state) == repr(
                ref_sim._rng.bit_generator.state
            ), (family, chunk, engine)
            assert (
                streamed_sim._service_cursor == ref_sim._service_cursor
            ), (family, chunk, engine)


# ----------------------------------------------------------------------
# Generator-backed sources: identity plus bounded pool windows.


def test_streamed_trace_source_reproduces_generate(model, suite):
    """``generator.stream(rng)`` fed straight into the streaming engine
    matches generating the full trace first, and leaves the trace RNG in
    the ``generate()`` end state."""
    generator = TraceGenerator(
        list(suite), rate_envelope=(10, 40, 10), segment_seconds=20.0
    )
    trace = generator.generate(np.random.default_rng(5))
    materialized_sim = RackSimulation(
        model, suite, max_instances=4, queue_depth=30, seed=3
    )
    reference = StreamedSeries.from_series(
        materialized_sim.run(trace, engine="vectorized")
    )

    stream_rng = np.random.default_rng(5)
    streamed_sim = RackSimulation(
        model, suite, max_instances=4, queue_depth=30, seed=3
    )
    streamed = streamed_sim.run(
        generator.stream(stream_rng), engine="streaming", chunk_requests=123
    )
    assert streamed.identical_to(reference)
    assert repr(streamed_sim._rng.bit_generator.state) == repr(
        materialized_sim._rng.bit_generator.state
    )
    generate_rng = np.random.default_rng(5)
    generator.generate(generate_rng)
    assert repr(stream_rng.bit_generator.state) == repr(
        generate_rng.bit_generator.state
    )


@pytest.mark.parametrize("chunk", (512, 8192))
@pytest.mark.parametrize(
    "family", ("fcfs", "keyed-sjf", "chaos-sjf", "control-sjf")
)
def test_windowed_pools_stay_on_stream(family, chunk, model, suite):
    """Past the service-pool window, streamed sources re-materialize
    pending draw blocks by replaying a cloned bit generator: the series,
    live RNG, cursors, and the retained pool tail must all match the
    unwindowed materialized run."""
    names = list(suite)[:2]
    apps = {name: suite[name] for name in names}

    def make_kwargs():
        # Enough servable load that each app consumes ~10k service draws
        # — several growth blocks past the 4096-sample replay window.
        kwargs = family_kwargs(family, model, apps)
        kwargs.update(max_instances=64, queue_depth=2000, seed=3)
        if family == "control-sjf":
            kwargs["control"] = ControlPlane(
                autoscaler=AutoscalerPolicy(
                    policy="queue_depth",
                    min_instances=8,
                    warmup_seconds=1.0,
                )
            )
        return kwargs

    def generator():
        return TraceGenerator(
            names, rate_envelope=(300.0, 900.0, 300.0), segment_seconds=20.0
        )

    materialized_sim = RackSimulation(model, apps, **make_kwargs())
    reference = StreamedSeries.from_series(
        materialized_sim.run(
            generator().generate(np.random.default_rng(5)),
            engine="vectorized",
        )
    )
    streamed_sim = RackSimulation(model, apps, **make_kwargs())
    streamed = streamed_sim.run(
        generator().stream(np.random.default_rng(5)),
        engine="streaming",
        chunk_requests=chunk,
    )
    assert streamed.identical_to(reference), (family, chunk)
    assert repr(streamed_sim._rng.bit_generator.state) == repr(
        materialized_sim._rng.bit_generator.state
    )
    assert streamed_sim._service_cursor == materialized_sim._service_cursor
    # ~15k draws per app crosses several growth blocks: compaction must
    # have trimmed consumed samples, and what physically remains must be
    # the tail of the materialized pool at the same logical offsets.
    assert any(
        streamed_sim._service_trim.get(name, 0) > 0 for name in names
    )
    for name, pool in streamed_sim._service_samples.items():
        trim = streamed_sim._service_trim.get(name, 0)
        full = materialized_sim._service_samples.get(name)
        assert full is not None
        assert np.array_equal(pool, full[trim : trim + len(pool)]), name


# ----------------------------------------------------------------------
# Sketch accuracy against exact order statistics.


def test_sketch_percentiles_within_documented_bound(model, suite):
    trace = make_trace(suite, 0.05, 1)
    materialized = RackSimulation(
        model, suite, max_instances=4, queue_depth=30, seed=1
    ).run(trace, engine="vectorized")
    _, streamed = run_streamed(
        model, suite, trace, 997, max_instances=4, queue_depth=30, seed=1
    )
    latencies = materialized.completed_latency_seconds
    bound = streamed.sketch.relative_error_bound
    for q in (50.0, 90.0, 95.0, 99.0, 99.9):
        exact = float(np.percentile(latencies, q, method="lower"))
        estimate = streamed.latency_percentile(q)
        assert abs(estimate - exact) <= bound * exact, q


# ----------------------------------------------------------------------
# Validation.


def test_chunk_requests_validation(model, suite):
    trace = make_trace(suite, 0.01, 1)
    for bad in (0, -1, 2.5, True):
        with pytest.raises(ConfigurationError):
            RackSimulation(model, suite, seed=1).run(
                trace, engine="streaming", chunk_requests=bad
            )
    with pytest.raises(ConfigurationError):
        RackSimulation(model, suite, seed=1).run(
            trace, engine="vectorized", chunk_requests=4
        )


def test_streamed_source_gating(model, suite):
    generator = TraceGenerator(
        list(suite), rate_envelope=(10, 40, 10), segment_seconds=20.0
    )
    source = generator.stream(np.random.default_rng(1))
    with pytest.raises(ConfigurationError):
        RackSimulation(model, suite, seed=1).run(
            source, engine="vectorized"
        )
    # a consumed stream cannot be run twice
    consumed = generator.stream(np.random.default_rng(1))
    RackSimulation(model, suite, seed=1).run(
        consumed, engine="streaming", chunk_requests=64
    )
    with pytest.raises(ConfigurationError):
        RackSimulation(model, suite, seed=1).run(
            consumed, engine="streaming", chunk_requests=64
        )


def test_unsorted_trace_rejected(model, suite):
    name = list(suite)[0]
    bad = RequestTrace(np.array([2.0, 1.0]), (name, name), 40.0)
    with pytest.raises(ConfigurationError):
        RackSimulation(model, suite, seed=1).run(
            bad, engine="streaming", chunk_requests=8
        )


# ----------------------------------------------------------------------
# Fleet: streamed racks stitch identically.


def test_fleet_streaming_worker_and_chunk_invariant():
    """Streaming racks are worker- and chunk-invariant (bit-identical
    fleet stitch), and agree with the materialized stitch on every
    cross-engine comparable: request accounting, drop breakdowns, and
    the merged quantile sketch accumulators.  (The per-rack check hashes
    deliberately cover different projections — the streaming hash folds
    telemetry the engine never materializes as vectors — so the two
    engine families are compared on shared aggregates, not hashes.)"""
    context = build_context(platform_names=[BASELINE_NAME])
    envelope = tuple(
        rate * 0.04
        for rate in (250, 320, 420, 560, 700, 800, 780, 650, 520, 430)
    )
    generator = TraceGenerator(
        context.app_names, rate_envelope=envelope, segment_seconds=30.0
    )
    trace = generator.generate(np.random.default_rng(13))
    topology = FleetTopology.uniform(
        4, BASELINE_NAME, max_instances=8, seed=13
    )
    materialized = FleetRunner(context, engine="vectorized").run(
        topology, trace, workers=1
    )
    serial = FleetRunner(
        context, engine="streaming", chunk_requests=997
    ).run(topology, trace, workers=1)
    sharded = FleetRunner(
        context, engine="streaming", chunk_requests=64
    ).run(topology, trace, workers=4)

    assert serial.identical_to(sharded)
    assert serial.fleet_hash == sharded.fleet_hash
    assert serial.merged_sketch.identical_to(sharded.merged_sketch)
    for a, b in zip(serial.racks, sharded.racks):
        assert a.check_hash == b.check_hash

    assert serial.merged_sketch.identical_to(materialized.merged_sketch)
    assert serial.total_requests == materialized.total_requests
    assert serial.completed == materialized.completed
    assert serial.dropped == materialized.dropped
    assert serial.drop_breakdown() == materialized.drop_breakdown()
    for streamed_rack, rack in zip(serial.racks, materialized.racks):
        assert streamed_rack.name == rack.name
        assert streamed_rack.seed == rack.seed
        assert streamed_rack.requests == rack.requests
        assert streamed_rack.completed == rack.completed
        assert streamed_rack.dropped == rack.dropped
        assert streamed_rack.drop_breakdown == rack.drop_breakdown
        assert streamed_rack.sketch.identical_to(rack.sketch)


def test_fleet_streaming_rejects_materialized_only_modes():
    context = build_context(platform_names=[BASELINE_NAME])
    with pytest.raises(ConfigurationError):
        FleetRunner(context, engine="streaming", keep_latencies=True)
    with pytest.raises(ConfigurationError):
        FleetRunner(context, engine="vectorized", chunk_requests=8)
