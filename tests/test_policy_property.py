"""Property tests: heap-backed policies == the old linear-min policies.

The scheduling refactor replaced the imperative ``min(queue) +
list.remove`` policies with :class:`~repro.cluster.schedulers.KeyedPolicy`
instances over a heap-backed :class:`~repro.cluster.policy_keys.KeyedQueue`.
The *old* implementations are kept verbatim in
:mod:`repro.cluster.linear_policies` as reference oracles; randomized
push/pop streams must pop in exactly the same order from both.
"""

import numpy as np
import pytest

from repro.cluster.linear_policies import (
    LinearCriticalityPolicy as LinearCriticality,
    LinearDAGAwarePolicy as LinearDAGAware,
    LinearFCFSPolicy as LinearFCFS,
    LinearShortestJobFirstPolicy as LinearSJF,
)
from repro.cluster.schedulers import (
    CriticalityPolicy,
    DAGAwarePolicy,
    FCFSPolicy,
    QueuedRequest,
    ShortestJobFirstPolicy,
)
from repro.experiments.benchmarks import benchmark_suite

# ---------------------------------------------------------------------------
# The randomized push/pop equivalence property.
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


def policy_pairs(suite, estimates, priorities):
    """(new heap-backed policy, old linear oracle) pairs, freshly built."""
    return [
        (FCFSPolicy(), LinearFCFS()),
        (ShortestJobFirstPolicy(estimates), LinearSJF(estimates)),
        (
            CriticalityPolicy(priorities, default_priority=7),
            LinearCriticality(priorities, default_priority=7),
        ),
        (DAGAwarePolicy(suite), LinearDAGAware(suite)),
    ]


def random_stream(rng, apps, length):
    """A random interleaving of pushes and pops (never popping empty)."""
    ops = []
    depth = 0
    for seq in range(length):
        if depth and rng.random() < 0.45:
            ops.append(("pop", None))
            depth -= 1
        else:
            app = apps[int(rng.integers(0, len(apps)))]
            ops.append(("push", QueuedRequest(float(seq), app, seq)))
            depth += 1
    ops.extend(("pop", None) for _ in range(depth))
    return ops


@pytest.mark.parametrize("seed", range(8))
def test_heap_policies_match_linear_oracles(suite, seed):
    rng = np.random.default_rng(seed)
    # Mix known apps with strangers so default keys are exercised, and
    # collide estimates/priorities so tie-breaks are exercised too.
    apps = list(suite)[:4] + ["stranger-a", "stranger-b"]
    estimates = {apps[0]: 0.5, apps[1]: 0.5, apps[2]: 2.0}
    priorities = {apps[0]: 0, apps[1]: 3, apps[2]: 3}
    stream = random_stream(rng, apps, length=600)
    for new_policy, oracle in policy_pairs(suite, estimates, priorities):
        for op, request in stream:
            if op == "push":
                new_policy.push(request)
                oracle.push(request)
            else:
                assert new_policy.pop() == oracle.pop()
            assert len(new_policy) == len(oracle)


def test_bursty_pop_storms_match(suite):
    """Long push phases followed by full drains (worst case for min+remove)."""
    estimates = {name: float(i + 1) for i, name in enumerate(suite)}
    priorities = {name: i % 3 for i, name in enumerate(suite)}
    rng = np.random.default_rng(99)
    apps = list(suite)
    seq = 0
    for new_policy, oracle in policy_pairs(suite, estimates, priorities):
        for _ in range(3):
            for _ in range(150):
                app = apps[int(rng.integers(0, len(apps)))]
                request = QueuedRequest(float(seq), app, seq)
                new_policy.push(request)
                oracle.push(request)
                seq += 1
            while len(oracle):
                assert new_policy.pop() == oracle.pop()
