"""Power, area, and technology-scaling models."""

import pytest

from repro.accelerator.area import AreaModel
from repro.accelerator.config import DSAConfig
from repro.accelerator.power import PowerModel
from repro.accelerator.scaling import TechNode, scale_area, scale_energy, scale_power
from repro.errors import ConfigurationError
from repro.units import MB


class TestScaling:
    def test_45nm_is_identity(self):
        assert scale_area(100.0, 45) == 100.0
        assert scale_power(10.0, 45) == 10.0

    def test_14nm_shrinks_area_about_10x(self):
        assert scale_area(100.0, 14) == pytest.approx(10.5, rel=0.01)

    def test_14nm_power_scaling(self):
        assert scale_power(10.0, 14) == pytest.approx(3.0, rel=0.01)

    def test_energy_scales_like_power(self):
        assert scale_energy(1.0, 14) == scale_power(1.0, 14)

    def test_monotonic_across_nodes(self):
        areas = [scale_area(100.0, node.nm) for node in TechNode]
        assert areas == sorted(areas, reverse=True)

    def test_unknown_node_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_area(1.0, 28)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            scale_power(-1.0, 14)


class TestArea:
    def test_area_grows_with_pes(self):
        small = AreaModel(DSAConfig(pe_rows=32, pe_cols=32)).total_mm2()
        large = AreaModel(DSAConfig(pe_rows=256, pe_cols=256)).total_mm2()
        assert large > 10 * small

    def test_area_grows_with_buffer(self):
        small = AreaModel(DSAConfig(buffer_bytes=1 * MB)).total_mm2()
        large = AreaModel(DSAConfig(buffer_bytes=32 * MB)).total_mm2()
        assert large > small

    def test_paper_point_in_plausible_band(self):
        # Fig. 8 places Dim128-4MB low on the frontier (order 100s of mm^2
        # at 45 nm).
        area = AreaModel(DSAConfig()).total_mm2()
        assert 50 < area < 400

    def test_1024_array_reaches_thousands_mm2(self):
        area = AreaModel(
            DSAConfig(pe_rows=1024, pe_cols=1024, buffer_bytes=32 * MB)
        ).total_mm2()
        assert area > 3000  # Fig. 8 tops out near 8000 mm^2

    def test_breakdown_sums_to_total(self):
        model = AreaModel(DSAConfig())
        breakdown = model.breakdown()
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.mpu_mm2
            + breakdown.vpu_mm2
            + breakdown.sram_mm2
            + breakdown.overhead_mm2
        )

    def test_tech_scaling_applied(self):
        at_45 = AreaModel(DSAConfig(tech_node_nm=45)).total_mm2()
        at_14 = AreaModel(DSAConfig(tech_node_nm=14)).total_mm2()
        assert at_14 == pytest.approx(0.105 * at_45, rel=0.01)


class TestPower:
    def test_sram_energy_grows_with_capacity(self):
        small = PowerModel(DSAConfig(buffer_bytes=1 * MB)).sram_pj_per_byte()
        large = PowerModel(DSAConfig(buffer_bytes=16 * MB)).sram_pj_per_byte()
        assert large > small

    def test_leakage_scales_with_area(self):
        small = PowerModel(DSAConfig(pe_rows=32, pe_cols=32)).leakage_watts()
        large = PowerModel(DSAConfig(pe_rows=512, pe_cols=512)).leakage_watts()
        assert large > small

    def test_leakage_drops_at_14nm(self):
        at_45 = PowerModel(DSAConfig(tech_node_nm=45)).leakage_watts()
        at_14 = PowerModel(DSAConfig(tech_node_nm=14)).leakage_watts()
        assert at_14 < at_45

    def test_execution_energy_components_positive(self):
        model = PowerModel(DSAConfig())
        breakdown = model.execution_energy(
            macs=10**9,
            vector_element_ops=10**7,
            dram_bytes=10**7,
            sram_bytes=10**7,
            latency_s=1e-3,
        )
        assert breakdown.mac_j > 0
        assert breakdown.dram_j > 0
        assert breakdown.total_j > breakdown.mac_j

    def test_dram_energy_does_not_scale_with_node(self):
        kwargs = dict(
            macs=0, vector_element_ops=0, dram_bytes=10**8, sram_bytes=0,
            latency_s=1e-3,
        )
        at_45 = PowerModel(DSAConfig(tech_node_nm=45)).execution_energy(**kwargs)
        at_14 = PowerModel(DSAConfig(tech_node_nm=14)).execution_energy(**kwargs)
        assert at_45.dram_j == pytest.approx(at_14.dram_j)

    def test_average_power_includes_leakage(self):
        model = PowerModel(DSAConfig())
        breakdown = model.execution_energy(
            macs=10**8, vector_element_ops=0, dram_bytes=0, sram_bytes=0,
            latency_s=1e-3,
        )
        avg = model.average_power_watts(breakdown, 1e-3)
        dyn = model.dynamic_power_watts(breakdown, 1e-3)
        assert avg > dyn
