"""The control engines must be bit-identical — and an inert plane free.

The closed-loop layer has two execution paths: the event-driven control
oracle and the vectorized control-epoch engine.  Everything the oracle
produces — series (incl. live-capacity and per-completion app records),
latencies, drop times *and reasons* (incl. ``shed``), scaling/retry/
timeout/kill/hedge counters, RNG end state, service-pool state — must
match the vectorized engine exactly, across scaling policies, shedding
configs, seeds, and fault mixes.  A disabled controller must degrade to
the recorded ``BENCH_rack.json`` and ``BENCH_faults.json`` check hashes
bit for bit, and the ``fig15-overload`` study must show brownout (p99 of
admitted criticality-0 traffic within 2x of the uncongested baseline at
4x overload) where the uncontrolled run collapses.
"""

import hashlib
import json
from pathlib import Path

import numpy as np
import pytest

from repro.cluster.control import (
    AutoscalerPolicy,
    ControlPlane,
    OverloadPolicy,
    observer_plane,
)
from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu

SEEDS = (1, 2, 3)

# Instance churn + slowdowns + retries + hedging: the control loop must
# stay bit-identical while composing with the full chaos layer.
CHAOS_FAULTS = FaultSchedule(
    instance_mtbf_seconds=120.0,
    instance_mttr_seconds=10.0,
    slowdown_rate_per_minute=4.0,
    slowdown_multiplier=2.5,
    slowdown_duration_seconds=5.0,
    seed=7,
)
CHAOS_RETRY = RetryPolicy(
    timeout_seconds=3.0,
    max_retries=2,
    backoff_base_seconds=0.2,
    backoff_cap_seconds=2.0,
    jitter=0.5,
    hedge_after_seconds=1.5,
)

SCALERS = {
    "target_utilization": AutoscalerPolicy(
        policy="target_utilization",
        min_instances=4,
        scale_down_cooldown_seconds=5.0,
        warmup_seconds=2.5,
    ),
    "queue_depth": AutoscalerPolicy(
        policy="queue_depth", min_instances=4, warmup_seconds=1.0
    ),
}
SHEDDERS = {
    "tokens": OverloadPolicy(
        admission_rate_rps=9.0, admission_burst_seconds=1.0
    ),
    "codel+brownout+breaker": OverloadPolicy(
        queue_delay_target_seconds=0.2,
        latency_slo_seconds=1.0,
        priorities={},  # filled per-suite by the fixture below
        breaker_failure_threshold=0.5,
        breaker_min_failures=3,
        breaker_open_seconds=4.0,
    ),
}


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def model():
    return ServerlessExecutionModel(platform=baseline_cpu())


@pytest.fixture(scope="module")
def shedders(suite):
    priorities = {name: i % 3 for i, name in enumerate(sorted(suite))}
    configured = dict(SHEDDERS)
    configured["codel+brownout+breaker"] = OverloadPolicy(
        queue_delay_target_seconds=0.2,
        latency_slo_seconds=1.0,
        priorities=priorities,
        breaker_failure_threshold=0.5,
        breaker_min_failures=3,
        breaker_open_seconds=4.0,
    )
    return configured


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def run_both(model, suite, trace, **kwargs):
    """One fresh simulation per engine; returns (sim, series) pairs."""
    runs = {}
    for engine in ("event", "vectorized"):
        sim = RackSimulation(model, suite, **kwargs)
        runs[engine] = (sim, sim.run(trace, engine=engine))
    return runs


def assert_bit_identical(runs):
    event_sim, event_series = runs["event"]
    fast_sim, fast_series = runs["vectorized"]
    assert event_series.identical_to(fast_series)
    # Identity must extend to simulator state: the same RNG stream was
    # consumed in the same order, leaving the same pools behind.
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )
    assert event_sim._service_cursor == fast_sim._service_cursor
    assert set(event_sim._service_samples) == set(fast_sim._service_samples)
    for name, pool in event_sim._service_samples.items():
        assert np.array_equal(pool, fast_sim._service_samples[name])


# ----------------------------------------------------------------------
# The equivalence matrix: scaling policies x shedding configs x seeds.


@pytest.mark.parametrize("scaler", sorted(SCALERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_autoscaler_engines_identical(suite, model, scaler, seed):
    """Each scaling policy alone, under full chaos, across seeds."""
    trace = make_trace(suite, 0.04, seed)
    runs = run_both(
        model,
        suite,
        trace,
        max_instances=12,
        queue_depth=60,
        seed=seed,
        policy=PolicyFactory("dag", applications=suite),
        faults=CHAOS_FAULTS,
        retry=CHAOS_RETRY,
        control=ControlPlane(autoscaler=SCALERS[scaler]),
    )
    assert_bit_identical(runs)
    series = runs["event"][1]
    # The loop genuinely closed: capacity moved both ways.
    assert series.scale_ups > 0
    assert series.scale_downs > 0
    assert len(series.live_instances) == len(series.sample_times)
    assert series.live_instances.min() >= SCALERS[scaler].min_instances
    assert series.live_instances.max() <= 12


@pytest.mark.parametrize("shedder", sorted(SHEDDERS))
@pytest.mark.parametrize("seed", SEEDS)
def test_shedding_engines_identical(suite, model, shedders, shedder, seed):
    """Each overload config, composed with an autoscaler, across seeds."""
    trace = make_trace(suite, 0.04, seed)
    runs = run_both(
        model,
        suite,
        trace,
        max_instances=12,
        queue_depth=60,
        seed=seed,
        policy=PolicyFactory("dag", applications=suite),
        faults=CHAOS_FAULTS,
        retry=CHAOS_RETRY,
        control=ControlPlane(
            autoscaler=SCALERS["queue_depth"], overload=shedders[shedder]
        ),
    )
    assert_bit_identical(runs)
    series = runs["event"][1]
    breakdown = series.drop_breakdown()
    assert breakdown["shed"] > 0  # the protection genuinely fired
    assert sum(breakdown.values()) == series.dropped_requests


def test_fault_free_control_engines_identical(suite, model, shedders):
    """No chaos at all: the control loop alone must stay bit-identical
    (sheds recorded, nothing retried, no RNG spent on shed arrivals)."""
    trace = make_trace(suite, 0.04, 1)
    runs = run_both(
        model,
        suite,
        trace,
        max_instances=8,
        queue_depth=40,
        seed=1,
        policy=PolicyFactory("dag", applications=suite),
        control=ControlPlane(
            autoscaler=SCALERS["target_utilization"],
            overload=shedders["tokens"],
        ),
    )
    assert_bit_identical(runs)
    series = runs["event"][1]
    assert series.drop_breakdown()["shed"] > 0
    assert series.retries == 0
    assert series.crash_kills == 0


def test_unsorted_trace_control_falls_back_to_event_engine(suite, model):
    """Control + an unsorted trace must route to the control oracle."""
    from repro.cluster.trace import RequestTrace

    base = make_trace(suite, 0.04, 1)
    shuffled = RequestTrace(
        arrival_seconds=base.arrival_seconds[::-1].copy(),
        app_names=tuple(reversed(base.app_names)),
        duration_seconds=base.duration_seconds,
    )

    def run(engine):
        return RackSimulation(
            model,
            suite,
            max_instances=8,
            queue_depth=40,
            seed=1,
            control=ControlPlane(autoscaler=SCALERS["queue_depth"]),
        ).run(shuffled, engine=engine)

    assert run("vectorized").identical_to(run("event"))


# ----------------------------------------------------------------------
# Observer plane: routes through the control engines, changes nothing.


def test_observer_plane_matches_uncontrolled_run(suite, model):
    """An observer plane (floor pinned to the ceiling) must reproduce
    the chaos engines' results exactly on every shared field — it adds
    the per-app completion record without touching the dynamics."""
    trace = make_trace(suite, 0.04, 2)

    def run(control):
        return RackSimulation(
            model,
            suite,
            max_instances=8,
            queue_depth=40,
            seed=2,
            faults=CHAOS_FAULTS,
            retry=CHAOS_RETRY,
            control=control,
        ).run(trace, engine="vectorized")

    observed = run(observer_plane(8))
    plain = run(None)
    assert np.array_equal(observed.queue_depth, plain.queue_depth)
    assert np.array_equal(observed.busy_instances, plain.busy_instances)
    assert np.array_equal(
        observed.completed_latency_seconds, plain.completed_latency_seconds
    )
    assert np.array_equal(observed.completed_times, plain.completed_times)
    assert np.array_equal(observed.dropped_times, plain.dropped_times)
    assert np.array_equal(observed.dropped_reasons, plain.dropped_reasons)
    assert observed.retries == plain.retries
    assert observed.crash_kills == plain.crash_kills
    assert observed.hedges_launched == plain.hedges_launched
    # ... and the record the observer adds is actually there.
    assert observed.scale_ups == 0 and observed.scale_downs == 0
    assert np.all(observed.live_instances == 8)
    assert len(observed.completed_app_ids) == len(observed.completed_times)
    assert len(plain.completed_app_ids) == 0


# ----------------------------------------------------------------------
# Controller-disabled reproduction of the recorded benchmark hashes.


def _digest(*parts) -> str:
    """``scripts/bench_common.digest`` re-stated (tests do not import
    from scripts/)."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return f"sha256:{hasher.hexdigest()}"


def _series_digest(series_by_platform) -> str:
    """``scripts/bench_common.series_digest`` re-stated: the full
    series, drop times *and reasons*, availability counters, and the
    per-reason drop breakdown (including ``shed``)."""
    parts = []
    for name in sorted(series_by_platform):
        series = series_by_platform[name]
        parts.extend(
            [
                name,
                series.completed_latency_seconds.tobytes(),
                series.completed_times.tobytes(),
                series.queue_depth.tobytes(),
                series.busy_instances.tobytes(),
                series.dropped_times.tobytes(),
                series.dropped_reasons.tobytes(),
                series.dropped_requests,
                series.total_requests,
                series.retries,
                series.timeouts,
                series.crash_kills,
                tuple(sorted(series.drop_breakdown().items())),
            ]
        )
    return _digest(*parts)


def _bench_workload(bench_name):
    from repro.cluster.trace import DEFAULT_RATE_ENVELOPE
    from repro.experiments.common import (
        BASELINE_NAME,
        DSCS_NAME,
        build_context,
    )

    bench_path = Path(__file__).resolve().parent.parent / bench_name
    recorded = json.loads(bench_path.read_text())
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    generator = TraceGenerator(
        context.app_names, rate_envelope=DEFAULT_RATE_ENVELOPE
    )
    trace = generator.generate(np.random.default_rng(13))
    assert len(trace) == recorded["workload"]["num_requests"]
    return recorded, context, trace, (BASELINE_NAME, DSCS_NAME)


def test_disabled_controller_reproduces_bench_rack_hash():
    """The full Fig. 13 workload with an inert ``ControlPlane()``
    attached must reproduce the recorded ``BENCH_rack.json`` check hash
    — a disabled controller costs nothing and changes nothing."""
    recorded, context, trace, platforms = _bench_workload("BENCH_rack.json")
    series = {}
    for name in platforms:
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=200,
            seed=13,
            control=ControlPlane(),
        )
        assert not simulation._control_active()
        series[name] = simulation.run(trace, engine="vectorized")
    assert _series_digest(series) == recorded["check_hash"]


def test_disabled_controller_reproduces_bench_faults_hash():
    """Same, under the ``BENCH_faults.json`` chaos workload: the inert
    plane must leave the chaos engines' recorded hash untouched."""
    recorded, context, trace, platforms = _bench_workload(
        "BENCH_faults.json"
    )
    workload = recorded["workload"]
    faults = FaultSchedule(
        instance_mtbf_seconds=workload["faults"]["instance_mtbf_s"],
        instance_mttr_seconds=workload["faults"]["instance_mttr_s"],
        slowdown_rate_per_minute=workload["faults"][
            "slowdown_rate_per_minute"
        ],
        slowdown_multiplier=2.0,
        slowdown_duration_seconds=5.0,
        seed=workload["faults"]["fault_seed"],
    )
    retry = RetryPolicy(
        timeout_seconds=workload["retry"]["timeout_s"],
        max_retries=workload["retry"]["max_retries"],
    )
    series = {}
    for name in platforms:
        simulation = RackSimulation(
            context.models[name],
            context.applications,
            max_instances=200,
            seed=13,
            faults=faults,
            retry=retry,
            control=ControlPlane(),
        )
        assert not simulation._control_active()
        series[name] = simulation.run(trace, engine="vectorized")
    assert _series_digest(series) == recorded["check_hash"]


# ----------------------------------------------------------------------
# The acceptance criterion: brownout, not collapse.


def test_overload_brownout_vs_collapse():
    """fig15-overload at 4x: the shedding controller keeps the p99 of
    admitted criticality-0 traffic within 2x of the uncongested
    baseline, while the uncontrolled run collapses past that bound."""
    from repro.experiments.registry import REGISTRY, load_all

    load_all()
    study = REGISTRY.run("fig15-overload", profile="fast").study

    platform = "Baseline (CPU)"
    baseline_p99 = study.class_p99(1.0, False, platform, 0)
    controlled_p99 = study.class_p99(4.0, True, platform, 0)
    uncontrolled_p99 = study.class_p99(4.0, False, platform, 0)

    assert np.isfinite(baseline_p99) and baseline_p99 > 0
    assert controlled_p99 <= 2.0 * baseline_p99
    assert uncontrolled_p99 > 2.0 * baseline_p99
    # Collapse is not marginal: the uncontrolled tail is an order of
    # magnitude past the brownout tail.
    assert uncontrolled_p99 > 10.0 * controlled_p99

    # Graceful degradation: the controller converts indiscriminate
    # queue-overflow loss into targeted sheds of low-criticality work.
    controlled = study.at(4.0, True, platform)
    uncontrolled = study.at(4.0, False, platform)
    assert controlled.series.drop_breakdown()["shed"] > 0
    assert (
        controlled.series.drop_breakdown()["queue_full"]
        < uncontrolled.series.drop_breakdown()["queue_full"]
    )
    # Criticality 0 is never shed, so its admitted volume survives.
    crit0 = [
        name for name, rank in study.priorities.items() if rank == 0
    ]
    admitted = controlled.series.completed_latencies_for_apps(crit0)
    baseline_admitted = study.at(
        1.0, False, platform
    ).series.completed_latencies_for_apps(crit0)
    assert len(admitted) > 0
    assert len(admitted) >= len(baseline_admitted)
