"""Design-space enumeration and exploration (paper §4.2)."""

import pytest

from repro.accelerator.config import DSAConfig
from repro.dse.explorer import DSEExplorer
from repro.dse.space import design_space, paper_search_space_size
from repro.errors import ConfigurationError
from repro.models.zoo import logistic_regression, mlp
from repro.units import MB


def tiny_explorer():
    """Explorer with tiny models so sweeps stay fast in tests."""
    return DSEExplorer(
        eval_models=[
            mlp(rows=64, features=64, hidden=(128,), classes=16),
            logistic_regression(rows=256, features=32),
        ]
    )


class TestSpace:
    def test_full_space_exceeds_paper_size(self):
        assert paper_search_space_size() > 650

    def test_square_subset_smaller(self):
        assert len(design_space(square_only=True)) < paper_search_space_size()

    def test_dims_within_paper_range(self):
        for config in design_space(square_only=True):
            assert 4 <= config.pe_rows <= 1024
            assert 4 <= config.pe_cols <= 1024

    def test_buffers_capped_at_32mb(self):
        for config in design_space():
            assert config.buffer_bytes <= 32 * MB

    def test_three_memory_technologies_present(self):
        memories = {c.memory.name for c in design_space(square_only=True)}
        assert memories == {"DDR4", "DDR5", "HBM2"}

    def test_aspect_ratio_bounded(self):
        for config in design_space():
            aspect = max(config.pe_rows, config.pe_cols) / min(
                config.pe_rows, config.pe_cols
            )
            assert aspect <= 8

    def test_no_duplicate_labels(self):
        labels = [c.label for c in design_space()]
        assert len(labels) == len(set(labels))

    def test_paper_point_in_space(self):
        labels = {c.label for c in design_space(square_only=True)}
        assert "Dim128-4MB-DDR5" in labels


class TestExplorer:
    def test_evaluate_caches(self):
        explorer = tiny_explorer()
        config = DSAConfig()
        assert explorer.evaluate(config) is explorer.evaluate(config)

    def test_throughput_positive(self):
        result = tiny_explorer().evaluate(DSAConfig())
        assert result.throughput_fps > 0
        assert result.dynamic_power_watts >= 0
        assert result.area_mm2 > 0

    def test_sweep_returns_all(self):
        explorer = tiny_explorer()
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (8, 32, 128)]
        results = explorer.sweep(configs)
        assert len(results) == 3

    def test_sweep_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            tiny_explorer().sweep([])

    def test_pareto_fronts_subset_of_results(self):
        explorer = tiny_explorer()
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (8, 16, 64, 256)]
        results = explorer.sweep(configs)
        power_front = explorer.power_pareto(results)
        area_front = explorer.area_pareto(results)
        labels = {r.label for r in results}
        assert {r.label for r in power_front} <= labels
        assert {r.label for r in area_front} <= labels

    def test_huge_array_infeasible_under_budget(self):
        explorer = tiny_explorer()
        huge = explorer.evaluate(
            DSAConfig(pe_rows=1024, pe_cols=1024, buffer_bytes=32 * MB)
        )
        assert not huge.feasible

    def test_paper_point_feasible(self):
        result = tiny_explorer().evaluate(DSAConfig())
        assert result.feasible

    def test_best_feasible_respects_budget(self):
        explorer = tiny_explorer()
        configs = [
            DSAConfig(pe_rows=d, pe_cols=d, buffer_bytes=4 * MB)
            for d in (32, 128, 512)
        ]
        results = explorer.sweep(configs)
        best = explorer.best_feasible(results)
        assert best.feasible

    def test_power_grows_with_array(self):
        explorer = tiny_explorer()
        small = explorer.evaluate(DSAConfig(pe_rows=16, pe_cols=16))
        large = explorer.evaluate(DSAConfig(pe_rows=256, pe_cols=256))
        assert large.total_power_watts > small.total_power_watts


class TestParallelSweep:
    def test_parallel_matches_serial(self):
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (8, 16, 32, 64)]
        serial = tiny_explorer().sweep(configs)
        parallel = tiny_explorer().sweep(configs, workers=2)
        assert [r.label for r in parallel] == [r.label for r in serial]
        for a, b in zip(serial, parallel):
            assert a == b

    def test_parallel_preserves_input_order(self):
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (64, 8, 32)]
        results = tiny_explorer().sweep(configs, workers=2)
        assert [r.config.pe_rows for r in results] == [64, 8, 32]

    def test_parallel_fills_local_cache(self):
        explorer = tiny_explorer()
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (8, 16)]
        results = explorer.sweep(configs, workers=2)
        # A repeat sweep must reuse the folded-back results.
        assert explorer.sweep(configs) == results

    def test_worker_count_invariant(self):
        """Results are a pure function of configs — not of the pool size."""
        configs = [DSAConfig(pe_rows=d, pe_cols=d) for d in (8, 16, 32, 64)]
        one = tiny_explorer().sweep(configs, workers=1)
        four = tiny_explorer().sweep(configs, workers=4)
        assert one == four

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ConfigurationError):
            tiny_explorer().sweep([DSAConfig()], workers=0)

    def test_scalar_engine_oracle_agrees(self):
        config = DSAConfig(pe_rows=32, pe_cols=32)
        fast = DSEExplorer(
            eval_models=tiny_explorer().eval_models, engine="packed"
        ).evaluate(config)
        oracle = DSEExplorer(
            eval_models=tiny_explorer().eval_models, engine="scalar"
        ).evaluate(config)
        assert fast == oracle

    def test_unknown_engine_rejected(self):
        with pytest.raises(ConfigurationError):
            DSEExplorer(engine="quantum")
