"""Platform models: roofline family, DSA family, Table 2 registry."""

import pytest

from repro.errors import ConfigurationError
from repro.models.zoo import logistic_regression, resnet50
from repro.platforms.base import AnalyticalPlatform, PlatformKind
from repro.platforms.dsa import DSAPlatform
from repro.platforms.registry import (
    PLATFORM_BUILDERS,
    baseline_cpu,
    dscs_dsa,
    fpga_u280,
    gpu_2080ti,
    ns_arm,
    ns_fpga_smartssd,
    ns_mobile_gpu,
    table2_platforms,
)


class TestAnalyticalPlatform:
    def test_latency_positive(self):
        assert baseline_cpu().compute_latency_seconds(resnet50()) > 0

    def test_heavier_model_slower(self):
        cpu = baseline_cpu()
        light = cpu.compute_latency_seconds(logistic_regression())
        heavy = cpu.compute_latency_seconds(resnet50())
        assert heavy > light

    def test_batching_improves_per_sample_latency(self):
        cpu = baseline_cpu()
        single = cpu.compute_latency_seconds(resnet50(), batch=1)
        batched = cpu.compute_latency_seconds(resnet50(), batch=16)
        assert batched / 16 < single

    def test_batch_gain_saturates(self):
        cpu = baseline_cpu()
        g64 = cpu._batch_efficiency(64)
        assert g64 <= cpu.max_batch_speedup

    def test_faster_platform_lower_latency(self):
        slow = ns_arm()
        fast = baseline_cpu()
        assert fast.compute_latency_seconds(resnet50()) < slow.compute_latency_seconds(
            resnet50()
        )

    def test_energy_is_power_times_latency(self):
        cpu = baseline_cpu()
        latency = cpu.compute_latency_seconds(resnet50())
        assert cpu.compute_energy_joules(resnet50()) == pytest.approx(
            cpu.active_power_watts * latency
        )

    def test_invalid_batch_rejected(self):
        with pytest.raises(ConfigurationError):
            baseline_cpu().compute_latency_seconds(resnet50(), batch=0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigurationError):
            AnalyticalPlatform(effective_flops=0)

    def test_cpu_is_not_accelerator(self):
        assert not baseline_cpu().is_accelerator
        assert gpu_2080ti().is_accelerator


class TestDSAPlatform:
    def test_reports_cached_per_graph_and_batch(self):
        platform = dscs_dsa()
        first = platform.execution_report(resnet50())
        second = platform.execution_report(resnet50())
        assert first is second

    def test_compute_derate_applies(self):
        fast = dscs_dsa()
        graph = resnet50()
        base = fast.compute_latency_seconds(graph)
        derated = DSAPlatform(
            name="x", dsa_config=fast.dsa_config, compute_derate=2.0
        ).compute_latency_seconds(graph)
        assert derated == pytest.approx(2 * base, rel=1e-6)

    def test_derate_below_one_rejected(self):
        with pytest.raises(ConfigurationError):
            DSAPlatform(compute_derate=0.5)

    def test_fixed_power_used_for_fpga_energy(self):
        fpga = ns_fpga_smartssd()
        graph = logistic_regression()
        energy = fpga.compute_energy_joules(graph)
        latency = fpga.compute_latency_seconds(graph)
        assert energy == pytest.approx(25.0 * latency)

    def test_asic_energy_from_cycle_simulation(self):
        dscs = dscs_dsa()
        report = dscs.execution_report(resnet50())
        assert dscs.compute_energy_joules(resnet50()) == pytest.approx(
            report.energy_j
        )

    def test_active_power_small_for_asic(self):
        # The paper quotes ~4.2 W for the in-storage DSA.
        assert 1.0 < dscs_dsa().active_power_watts < 10.0


class TestRegistry:
    def test_seven_platforms(self):
        platforms = table2_platforms()
        assert len(platforms) == 7
        assert len({p.name for p in platforms}) == 7

    def test_builders_match_names(self):
        for name, builder in PLATFORM_BUILDERS.items():
            assert builder().name == name

    def test_kinds(self):
        assert baseline_cpu().kind is PlatformKind.TRADITIONAL
        assert gpu_2080ti().kind is PlatformKind.TRADITIONAL
        assert fpga_u280().kind is PlatformKind.TRADITIONAL
        assert ns_arm().kind is PlatformKind.NEAR_STORAGE
        assert ns_mobile_gpu().kind is PlatformKind.NEAR_STORAGE
        assert ns_fpga_smartssd().kind is PlatformKind.NEAR_STORAGE
        assert dscs_dsa().kind is PlatformKind.DSCS

    def test_gpu_power_is_250w(self):
        assert gpu_2080ti().active_power_watts == 250.0

    def test_dscs_runs_paper_design_point(self):
        config = dscs_dsa().dsa_config
        assert (config.pe_rows, config.pe_cols) == (128, 128)
        assert config.memory.name == "DDR5"
        assert config.tech_node_nm == 14

    def test_fpga_platforms_run_smaller_slower_arrays(self):
        u280 = fpga_u280().dsa_config
        smartssd = ns_fpga_smartssd().dsa_config
        dscs = dscs_dsa().dsa_config
        assert u280.num_pes < dscs.num_pes
        assert smartssd.frequency_hz < dscs.frequency_hz

    def test_raw_compute_ordering_on_resnet(self):
        # Pure device compute: DSA fastest, ARM slowest.
        graph = resnet50()
        dscs = dscs_dsa().compute_latency_seconds(graph)
        gpu = gpu_2080ti().compute_latency_seconds(graph)
        cpu = baseline_cpu().compute_latency_seconds(graph)
        arm = ns_arm().compute_latency_seconds(graph)
        assert dscs < gpu < cpu < arm
