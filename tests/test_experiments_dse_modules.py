"""Figs. 7/8/10 experiment modules with reduced, fast configurations."""

import pytest

from repro.accelerator.config import DSAConfig
from repro.core.breakdown import Component
from repro.dse.explorer import DSEExplorer
from repro.experiments import fig07, fig08, fig10
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context
from repro.models.zoo import logistic_regression, mlp
from repro.units import MB


@pytest.fixture(scope="module")
def tiny_explorer():
    return DSEExplorer(
        eval_models=[
            mlp(rows=64, features=64, hidden=(128,), classes=16),
            logistic_regression(rows=256, features=32),
        ]
    )


@pytest.fixture(scope="module")
def tiny_configs():
    return [
        DSAConfig(pe_rows=d, pe_cols=d, buffer_bytes=b * MB)
        for d in (16, 64, 128, 512)
        for b in (1, 4)
    ]


class TestFig07Module:
    def test_frontier_is_subset_and_nonempty(self, tiny_explorer, tiny_configs):
        study = fig07.run(configs=tiny_configs, explorer=tiny_explorer)
        assert study.num_points == len(tiny_configs)
        assert 0 < len(study.frontier) <= study.num_points
        labels = {r.label for r in study.results}
        assert set(study.frontier_labels()) <= labels

    def test_best_feasible_is_feasible(self, tiny_explorer, tiny_configs):
        study = fig07.run(configs=tiny_configs, explorer=tiny_explorer)
        assert study.best_feasible.feasible

    def test_frontier_monotone_tradeoff(self, tiny_explorer, tiny_configs):
        study = fig07.run(configs=tiny_configs, explorer=tiny_explorer)
        front = sorted(study.frontier, key=lambda r: r.throughput_fps)
        powers = [r.dynamic_power_watts for r in front]
        # Along the frontier, more throughput never costs less power.
        assert powers == sorted(powers)


class TestFig08Module:
    def test_area_frontier_monotone(self, tiny_explorer, tiny_configs):
        study = fig08.run(configs=tiny_configs, explorer=tiny_explorer)
        front = sorted(study.frontier, key=lambda r: r.throughput_fps)
        areas = [r.area_mm2 for r in front]
        assert areas == sorted(areas)

    def test_shares_results_shape_with_fig07(self, tiny_explorer, tiny_configs):
        a = fig07.run(configs=tiny_configs, explorer=tiny_explorer)
        b = fig08.run(configs=tiny_configs, explorer=tiny_explorer)
        assert {r.label for r in a.results} == {r.label for r in b.results}


class TestFig10Module:
    @pytest.fixture(scope="class")
    def breakdowns(self):
        context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
        return fig10.run(averages_of=4, context=context)

    def test_covers_all_pairs(self, breakdowns):
        assert set(breakdowns) == {BASELINE_NAME, DSCS_NAME}
        assert len(breakdowns[BASELINE_NAME]) == 8

    def test_fractions_sum_to_one(self, breakdowns):
        for per_app in breakdowns.values():
            for entry in per_app.values():
                total = sum(
                    entry.fraction(component)
                    for component in Component
                )
                assert total == pytest.approx(1.0, abs=0.01)

    def test_bottleneck_migration(self, breakdowns):
        """Fig. 10's story: DSCS moves time out of remote I/O into the
        system stack."""
        for app in breakdowns[BASELINE_NAME]:
            cpu_entry = breakdowns[BASELINE_NAME][app]
            dscs_entry = breakdowns[DSCS_NAME][app]
            cpu_remote = cpu_entry.fraction(Component.REMOTE_READ)
            dscs_remote = dscs_entry.fraction(Component.REMOTE_READ)
            assert dscs_entry.total_seconds < cpu_entry.total_seconds
            assert dscs_remote * dscs_entry.total_seconds < (
                cpu_remote * cpu_entry.total_seconds
            )
