"""Network, serialisation, and RPC stack models."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.network.latency import NetworkModel
from repro.network.rpc import RPCStack
from repro.network.serialization import SerializationModel
from repro.units import MB


def rng():
    return np.random.default_rng(3)


class TestNetworkModel:
    def test_transfer_time_linear_in_bytes(self):
        net = NetworkModel()
        assert net.transfer_seconds(2 * MB) == pytest.approx(
            2 * net.transfer_seconds(1 * MB), rel=1e-6
        )

    def test_sample_includes_rtt_floor(self):
        net = NetworkModel()
        samples = net.sample_latency_many(0, rng(), 1000)
        assert samples.min() > net.rtt.floor

    def test_median_latency_analytic(self):
        net = NetworkModel()
        samples = net.sample_latency_many(1 * MB, rng(), 50_000)
        assert np.median(samples) == pytest.approx(
            net.median_latency(1 * MB), rel=0.05
        )

    def test_tail_ratio_honored(self):
        net = NetworkModel()
        samples = net.sample_latency_many(0, rng(), 200_000)
        ratio = np.percentile(samples, 99) / np.median(samples)
        assert ratio == pytest.approx(2.1, rel=0.1)

    def test_with_tail_ratio_changes_p99_only(self):
        net = NetworkModel()
        heavy = net.with_tail_ratio(4.0)
        assert heavy.rtt.median() == net.rtt.median()
        assert heavy.rtt.p99() > net.rtt.p99()

    def test_rejects_bad_bandwidth(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth_bytes_per_s=0)

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel().transfer_seconds(-1)


class TestSerialization:
    def test_cost_scales_with_bytes(self):
        ser = SerializationModel()
        assert ser.serialize_seconds(10 * MB) > ser.serialize_seconds(1 * MB)

    def test_per_message_floor(self):
        ser = SerializationModel()
        assert ser.serialize_seconds(0) == ser.per_message_seconds

    def test_round_trip_counts_both_sides(self):
        ser = SerializationModel()
        rt = ser.round_trip_seconds(512, 1 * MB)
        one_side = ser.serialize_seconds(512) + ser.deserialize_seconds(1 * MB)
        assert rt == pytest.approx(2 * one_side, rel=0.2)

    def test_rejects_negative_payload(self):
        with pytest.raises(ConfigurationError):
            SerializationModel().serialize_seconds(-5)


class TestRPCStack:
    def test_request_exceeds_pure_network(self):
        stack = RPCStack()
        assert stack.median_request(1 * MB) > stack.network.median_latency(1 * MB)

    def test_sample_many_matches_single_distribution(self):
        stack = RPCStack()
        many = stack.sample_request_many(1 * MB, rng(), 20_000)
        assert np.median(many) == pytest.approx(
            stack.median_request(1 * MB), rel=0.05
        )

    def test_payload_monotonicity(self):
        stack = RPCStack()
        assert stack.median_request(16 * MB) > stack.median_request(1 * MB)

    def test_with_tail_ratio_preserves_median(self):
        stack = RPCStack()
        heavy = stack.with_tail_ratio(4.0)
        assert heavy.median_request(MB) == pytest.approx(
            stack.median_request(MB), rel=1e-6
        )

    def test_fig3_band_for_typical_payloads(self):
        # Multi-MB S3-style reads should land in the paper's 0.02-0.2 s band.
        stack = RPCStack()
        for payload in (1 * MB, 4 * MB, 8 * MB):
            median = stack.median_request(payload)
            assert 0.015 < median < 0.2

    def test_negative_payload_rejected(self):
        with pytest.raises(ConfigurationError):
            RPCStack().sample_request(-1, rng())
