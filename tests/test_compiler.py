"""Compiler stack: fusion, tiling, codegen, executables."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.accelerator.config import DSAConfig, paper_design_point
from repro.accelerator.isa import GemmTile, LoadTile, StoreTile, Sync, VectorOp
from repro.compiler import compile_graph, fuse, plan_gemm
from repro.compiler.codegen import generate
from repro.errors import CompilationError
from repro.models.builder import GraphBuilder
from repro.models.tensor import DType, TensorSpec
from repro.models.zoo import image_preprocess, resnet50
from repro.units import MB


def simple_graph():
    builder = GraphBuilder("simple", TensorSpec("x", (64, 128), DType.INT8))
    builder.linear(256).relu().linear(64).softmax()
    return builder.build()


class TestFusion:
    def test_vector_ops_fuse_after_matrix(self):
        groups = fuse(simple_graph())
        assert len(groups) == 2
        assert groups[0].matrix_op is not None
        assert [op.name for op in groups[0].vector_ops] != []

    def test_vector_only_graph_forms_one_group(self):
        groups = fuse(image_preprocess(224))
        assert all(g.is_vector_only for g in groups)

    def test_group_io_shapes(self):
        groups = fuse(simple_graph())
        assert groups[0].input.shape == (64, 128)
        assert groups[-1].output.shape == (64, 64)

    def test_resnet_fuses_bn_relu_into_convs(self):
        groups = fuse(resnet50())
        matrix_groups = [g for g in groups if not g.is_vector_only]
        # Every conv should carry at least its BN (and usually ReLU).
        fused_counts = [len(g.vector_ops) for g in matrix_groups]
        assert sum(fused_counts) > len(matrix_groups)

    def test_empty_group_rejected(self):
        from repro.compiler.frontend import FusionGroup

        with pytest.raises(CompilationError):
            FusionGroup(matrix_op=None, vector_ops=[])


class TestTiling:
    def test_tiles_clipped_to_array(self):
        plan = plan_gemm(1000, 1000, 1000, 1, paper_design_point())
        assert plan.tile_k <= 128
        assert plan.tile_n <= 128

    def test_tiles_cover_all_dims(self):
        plan = plan_gemm(300, 200, 150, 1, paper_design_point())
        assert plan.m_tiles * plan.tile_m >= 300
        assert plan.n_tiles * plan.tile_n >= 200
        assert plan.k_tiles * plan.tile_k >= 150

    def test_small_gemm_single_tile(self):
        plan = plan_gemm(8, 8, 8, 1, paper_design_point())
        assert plan.num_weight_tiles == 1
        assert plan.m_tiles == 1

    def test_double_buffering_feasible_on_paper_point(self):
        plan = plan_gemm(196, 256, 2304, 1, paper_design_point())
        assert plan.double_buffered

    def test_tiny_buffer_defeats_double_buffering(self):
        config = DSAConfig(pe_rows=1024, pe_cols=1024, buffer_bytes=256 * 1024)
        plan = plan_gemm(2048, 2048, 2048, 4, config)
        assert not plan.double_buffered

    def test_activation_residency(self):
        config = paper_design_point()
        small = plan_gemm(64, 512, 64, 1, config)
        assert small.activations_resident
        huge = plan_gemm(100_000, 512, 512, 1, config)
        assert not huge.activations_resident

    def test_non_resident_activations_multiply_traffic(self):
        config = paper_design_point()
        huge = plan_gemm(100_000, 512, 512, 1, config)
        assert huge.activation_load_passes == huge.n_tiles

    def test_traffic_accounts_weights_activations_outputs(self):
        plan = plan_gemm(64, 64, 64, 1, paper_design_point())
        expected = 64 * 64 + 64 * 64 + 64 * 64
        assert plan.total_dram_traffic_bytes() == expected

    def test_invalid_dims_rejected(self):
        with pytest.raises(CompilationError):
            plan_gemm(0, 1, 1, 1, paper_design_point())


class TestCodegen:
    def test_program_structure(self):
        program = generate(simple_graph(), paper_design_point())
        kinds = [type(i).__name__ for i in program]
        assert kinds[-1] == "Halt"
        assert any(isinstance(i, GemmTile) for i in program)
        assert any(isinstance(i, VectorOp) for i in program)
        assert any(isinstance(i, LoadTile) for i in program)
        assert any(isinstance(i, StoreTile) for i in program)

    def test_gemm_tiles_respect_array_bounds(self):
        config = DSAConfig(pe_rows=32, pe_cols=32)
        program = generate(simple_graph(), config)
        for instruction in program:
            if isinstance(instruction, GemmTile):
                assert instruction.k <= 32
                assert instruction.n <= 32

    def test_total_macs_preserved(self):
        graph = simple_graph()
        program = generate(graph, paper_design_point())
        macs, _, _ = program.totals()
        assert macs == graph.stats().total_macs

    def test_weight_traffic_at_least_weight_bytes(self):
        graph = simple_graph()
        program = generate(graph, paper_design_point())
        _, _, dma = program.totals()
        assert dma >= graph.stats().weight_bytes

    def test_serial_op_emits_syncs(self):
        config = DSAConfig(pe_rows=512, pe_cols=512, buffer_bytes=256 * 1024)
        builder = GraphBuilder("big", TensorSpec("x", (512, 2048), DType.FP32))
        builder.linear(2048)
        program = generate(builder.build(), config)
        assert any(isinstance(i, Sync) for i in program)

    def test_fused_vector_ops_marked(self):
        program = generate(simple_graph(), paper_design_point())
        fused_flags = [i.fused for i in program if isinstance(i, VectorOp)]
        assert all(fused_flags)  # relu/softmax both fuse to their GeMMs


class TestExecutable:
    def test_compile_and_simulate(self):
        exe = compile_graph(simple_graph(), paper_design_point())
        report = exe.simulate()
        assert report.latency_s > 0
        assert exe.latency_s == report.latency_s

    def test_simulation_memoised(self):
        exe = compile_graph(simple_graph(), paper_design_point())
        assert exe.simulate() is exe.simulate()
        assert exe.simulate(force=True) is not None

    def test_weight_bytes_exposed(self):
        exe = compile_graph(simple_graph(), paper_design_point())
        assert exe.weight_bytes == simple_graph().stats().weight_bytes

    def test_bigger_array_not_slower_for_large_gemm(self):
        builder = GraphBuilder("big", TensorSpec("x", (2048, 1024), DType.INT8))
        builder.linear(1024)
        graph = builder.build()
        small = compile_graph(graph, DSAConfig(pe_rows=32, pe_cols=32)).latency_s
        large = compile_graph(graph, DSAConfig(pe_rows=128, pe_cols=128)).latency_s
        assert large < small


@settings(max_examples=30, deadline=None)
@given(
    m=st.integers(min_value=1, max_value=2048),
    n=st.integers(min_value=1, max_value=2048),
    k=st.integers(min_value=1, max_value=2048),
    dtype_bytes=st.sampled_from([1, 2, 4]),
)
def test_tiling_invariants_property(m, n, k, dtype_bytes):
    plan = plan_gemm(m, n, k, dtype_bytes, paper_design_point())
    assert 1 <= plan.tile_m <= m
    assert 1 <= plan.tile_n <= min(n, 128)
    assert 1 <= plan.tile_k <= min(k, 128)
    assert plan.total_dram_traffic_bytes() >= (k * n + m * n) * dtype_bytes


class TestProgramCache:
    def test_shared_tiling_reuses_compilation(self):
        from repro.accelerator.config import DDR4, HBM2
        from repro.compiler import ProgramCache
        from repro.compiler.executable import compile_graph as compile_cached

        cache = ProgramCache()
        graph = simple_graph()
        ddr = compile_cached(graph, DSAConfig(memory=DDR4), cache=cache)
        hbm = compile_cached(graph, DSAConfig(memory=HBM2), cache=cache)
        # Memory technology is not tiling-relevant: one compile, one hit.
        assert ddr.program is hbm.program
        assert ddr.packed is hbm.packed
        assert cache.misses == 1
        assert cache.hits == 1

    def test_distinct_tiling_compiles_separately(self):
        from repro.compiler import ProgramCache

        cache = ProgramCache()
        graph = simple_graph()
        a = compile_graph(graph, DSAConfig(pe_rows=32, pe_cols=32), cache=cache)
        b = compile_graph(graph, DSAConfig(pe_rows=64, pe_cols=64), cache=cache)
        assert a.program is not b.program
        assert cache.misses == 2

    def test_rebuilt_graph_hits_by_fingerprint(self):
        from repro.compiler import ProgramCache

        cache = ProgramCache()
        compile_graph(simple_graph(), DSAConfig(), cache=cache)
        compile_graph(simple_graph(), DSAConfig(), cache=cache)
        assert cache.hits == 1

    def test_lru_bound_respected(self):
        from repro.compiler import ProgramCache

        cache = ProgramCache(maxsize=2)
        graph = simple_graph()
        for dim in (16, 32, 64):
            compile_graph(graph, DSAConfig(pe_rows=dim, pe_cols=dim), cache=cache)
        assert len(cache) == 2

    def test_uncached_compile_matches_cached(self):
        from repro.compiler import compile_graph_uncached

        graph = simple_graph()
        config = DSAConfig()
        cached = compile_graph(graph, config)
        cold = compile_graph_uncached(graph, config)
        assert cached.simulate() == cold.simulate()
        assert cold.simulate(force=True, engine="scalar") == cached.simulate()

    def test_tiling_key_fields(self):
        from repro.accelerator.config import DDR4
        from repro.compiler import tiling_key

        base = DSAConfig()
        assert tiling_key(base) == tiling_key(DSAConfig(memory=DDR4))
        assert tiling_key(base) != tiling_key(DSAConfig(buffer_bytes=8 * MB))


class TestGraphFingerprint:
    def test_stable_across_rebuilds(self):
        assert simple_graph().fingerprint() == simple_graph().fingerprint()

    def test_differs_for_different_graphs(self):
        assert resnet50().fingerprint() != simple_graph().fingerprint()

    def test_row_budget_evicts_large_entries(self):
        from repro.compiler import ProgramCache

        graph = simple_graph()
        cache = ProgramCache(maxsize=10, max_rows=1)
        compile_graph(graph, DSAConfig(pe_rows=16, pe_cols=16), cache=cache)
        compile_graph(graph, DSAConfig(pe_rows=32, pe_cols=32), cache=cache)
        # Every entry exceeds the budget, so only the newest survives.
        assert len(cache) == 1

    def test_invalid_engine_rejected_even_when_memoised(self):
        from repro.errors import ConfigurationError

        executable = compile_graph(simple_graph(), DSAConfig())
        executable.simulate()  # memoise
        with pytest.raises(ConfigurationError):
            executable.simulate(engine="scaler")
