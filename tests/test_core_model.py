"""Execution-model behaviour: data paths, breakdowns, sampling, energy."""

import numpy as np
import pytest

from repro.core.breakdown import Component
from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.experiments.benchmarks import build_application
from repro.platforms.registry import (
    baseline_cpu,
    dscs_dsa,
    gpu_2080ti,
    ns_arm,
)


@pytest.fixture(scope="module")
def app():
    return build_application("Asset Damage Detection")


@pytest.fixture(scope="module")
def fabric():
    return StorageFabric()


def rng():
    return np.random.default_rng(17)


class TestTraditionalPath:
    def test_cpu_uses_remote_io_only(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        latency = model.invoke(app, rng()).latency
        assert latency.get(Component.REMOTE_READ) > 0
        assert latency.get(Component.REMOTE_WRITE) > 0
        assert latency.get(Component.P2P_READ) == 0
        assert latency.get(Component.LOCAL_READ) == 0
        assert latency.get(Component.DRIVER) == 0

    def test_gpu_adds_driver_and_copies(self, app, fabric):
        model = ServerlessExecutionModel(platform=gpu_2080ti(), fabric=fabric)
        latency = model.invoke(app, rng()).latency
        assert latency.get(Component.DRIVER) > 0
        assert latency.get(Component.DEVICE_COPY) > 0
        assert latency.get(Component.REMOTE_READ) > 0

    def test_gpu_compute_smaller_than_cpu(self, app, fabric):
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        gpu = ServerlessExecutionModel(platform=gpu_2080ti(), fabric=fabric)
        cpu_compute = cpu.invoke(app, rng()).latency.get(Component.COMPUTE)
        gpu_compute = gpu.invoke(app, rng()).latency.get(Component.COMPUTE)
        assert gpu_compute < cpu_compute


class TestNearStoragePath:
    def test_local_io_replaces_remote_for_model_functions(self, app, fabric):
        model = ServerlessExecutionModel(platform=ns_arm(), fabric=fabric)
        latency = model.invoke(app, rng()).latency
        assert latency.get(Component.LOCAL_READ) > 0
        # f3 (notification) still reads remotely.
        assert latency.get(Component.REMOTE_READ) > 0

    def test_local_io_cheaper_than_remote(self, app, fabric):
        arm = ServerlessExecutionModel(platform=ns_arm(), fabric=fabric)
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        arm_latency = arm.invoke(app, rng()).latency
        cpu_latency = cpu.invoke(app, rng()).latency
        local = arm_latency.get(Component.LOCAL_READ) + arm_latency.get(
            Component.LOCAL_WRITE
        )
        remote = cpu_latency.get(Component.REMOTE_READ) + cpu_latency.get(
            Component.REMOTE_WRITE
        )
        assert local < remote


class TestDSCSPath:
    def test_p2p_replaces_network(self, app, fabric):
        model = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        latency = model.invoke(app, rng()).latency
        assert latency.get(Component.P2P_READ) > 0
        assert latency.get(Component.P2P_WRITE) > 0
        assert latency.get(Component.DRIVER) > 0
        assert latency.get(Component.LOCAL_READ) == 0

    def test_f3_still_pays_network(self, app, fabric):
        model = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        latency = model.invoke(app, rng()).latency
        assert latency.get(Component.REMOTE_READ) > 0

    def test_end_to_end_faster_than_baseline(self, app, fabric):
        dscs = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        assert (
            dscs.invoke(app, rng()).latency_seconds
            < cpu.invoke(app, rng()).latency_seconds
        )

    def test_energy_lower_than_baseline(self, app, fabric):
        dscs = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        assert (
            dscs.invoke(app, rng()).energy_joules
            < cpu.invoke(app, rng()).energy_joules
        )


class TestBatchingAndCold:
    def test_batch_scales_payload_and_compute(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        single = model.invoke(app, rng(), batch=1).latency_seconds
        batched = model.invoke(app, rng(), batch=8).latency_seconds
        assert single < batched < 8 * single

    def test_cold_adds_cold_start_component(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        warm = model.invoke(app, rng(), cold=False).latency
        cold = model.invoke(app, rng(), cold=True).latency
        assert warm.get(Component.COLD_START) == 0
        assert cold.get(Component.COLD_START) > 0

    def test_dscs_cold_cheaper_than_baseline_cold(self, app, fabric):
        dscs = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        dscs_cold = dscs.invoke(app, rng(), cold=True).latency.get(
            Component.COLD_START
        )
        cpu_cold = cpu.invoke(app, rng(), cold=True).latency.get(
            Component.COLD_START
        )
        # DSCS reloads flash-parked images over P2P (paper §5.3).
        assert dscs_cold < cpu_cold

    def test_invalid_batch_rejected(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        with pytest.raises(ConfigurationError):
            model.invoke(app, rng(), batch=0)


class TestSampling:
    def test_sample_count(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        samples = model.sample_latencies(app, rng(), 500)
        assert len(samples) == 500
        assert np.all(samples > 0)

    def test_samples_consistent_with_invoke_scale(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        samples = model.sample_latencies(app, rng(), 2000)
        single = model.invoke(app, rng()).latency_seconds
        assert np.median(samples) == pytest.approx(single, rel=0.5)

    def test_dscs_samples_have_less_variance(self, app, fabric):
        cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        dscs = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
        cpu_samples = cpu.sample_latencies(app, rng(), 2000)
        dscs_samples = dscs.sample_latencies(app, rng(), 2000)
        # DSCS removes the tailed network from f1/f2; relative spread shrinks.
        cpu_spread = np.percentile(cpu_samples, 99) / np.median(cpu_samples)
        dscs_spread = np.percentile(dscs_samples, 99) / np.median(dscs_samples)
        assert dscs_spread < cpu_spread

    def test_invalid_count_rejected(self, app, fabric):
        model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
        with pytest.raises(ConfigurationError):
            model.sample_latencies(app, rng(), 0)


class TestFabric:
    def test_p2p_faster_than_remote(self, fabric):
        from repro.units import MB

        remote = fabric.median_remote_read_seconds(4 * MB)
        p2p = fabric.p2p_read_seconds(4 * MB)
        assert p2p < remote

    def test_local_faster_than_remote(self, fabric):
        from repro.units import MB

        assert fabric.local_read_seconds(4 * MB) < fabric.median_remote_read_seconds(
            4 * MB
        )

    def test_tail_ratio_copy(self, fabric):
        heavy = fabric.with_tail_ratio(4.0)
        assert heavy.rpc.network.rtt.p99_over_median == 4.0
