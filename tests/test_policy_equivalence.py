"""The vectorized keyed-policy engine must be bit-identical to the oracle.

The keyed twin of ``tests/test_rack_equivalence.py``: for every policy
driven by a :class:`~repro.cluster.policy_keys.PolicyKey` (SJF,
criticality, DAG-aware — and FCFS, which the keyed engine also models as
a zero-width key), the index-priority engine in
:mod:`repro.cluster.policy_engine` must reproduce the event-driven
reference exactly — sample times, queue depth, busy instances,
completion times, latencies, drops, RNG end state, and service-pool
state — across seeds, platforms, and congestion/drop regimes.
"""

import numpy as np
import pytest

from repro.cluster import simulation as simulation_module
from repro.cluster.policy_engine import run_keyed
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.registry import baseline_cpu, dscs_dsa

SEEDS = (1, 2, 3)

PLATFORM_BUILDERS = {
    "baseline": baseline_cpu,
    "dscs": dscs_dsa,
}

POLICIES = ("fcfs", "sjf", "criticality", "dag")


@pytest.fixture(scope="module")
def suite():
    return benchmark_suite()


@pytest.fixture(scope="module")
def models():
    return {
        name: ServerlessExecutionModel(platform=builder())
        for name, builder in PLATFORM_BUILDERS.items()
    }


@pytest.fixture(scope="module")
def estimates(suite, models):
    return {
        name: float(
            np.mean(
                models["baseline"].sample_latencies(
                    app, np.random.default_rng(0), 64
                )
            )
        )
        for name, app in suite.items()
    }


def make_factory(policy, suite, estimates):
    if policy == "fcfs":
        return PolicyFactory("fcfs")
    if policy == "sjf":
        return PolicyFactory("sjf", service_estimates=estimates)
    if policy == "criticality":
        priorities = {name: rank % 3 for rank, name in enumerate(sorted(suite))}
        return PolicyFactory("criticality", priorities=priorities)
    return PolicyFactory("dag", applications=suite)


def make_trace(suite, scale, seed):
    generator = TraceGenerator(
        list(suite),
        rate_envelope=tuple(rate * scale for rate in (250, 800, 250)),
        segment_seconds=20.0,
    )
    return generator.generate(np.random.default_rng(seed))


def run_both(model, suite, factory, trace, **kwargs):
    """One fresh simulation per engine; returns (sim, series) pairs."""
    runs = {}
    for engine in ("event", "vectorized"):
        sim = RackSimulation(model, suite, policy=factory, **kwargs)
        runs[engine] = (sim, sim.run(trace, engine=engine))
    return runs


def assert_bit_identical(runs):
    event_sim, event_series = runs["event"]
    fast_sim, fast_series = runs["vectorized"]
    assert event_series.identical_to(fast_series)
    # Identity must extend to simulator state: the same RNG stream was
    # consumed in the same order, leaving the same pools behind.
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )
    assert event_sim._service_cursor == fast_sim._service_cursor
    assert set(event_sim._service_samples) == set(fast_sim._service_samples)
    for name, pool in event_sim._service_samples.items():
        assert np.array_equal(pool, fast_sim._service_samples[name])


@pytest.mark.parametrize("platform", sorted(PLATFORM_BUILDERS))
@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_identical_under_congestion(
    suite, models, estimates, platform, policy, seed
):
    """A 4-instance fleet under a bursty trace: queues build and drain."""
    trace = make_trace(suite, 0.05, seed)
    factory = make_factory(policy, suite, estimates)
    runs = run_both(
        models[platform], suite, factory, trace, max_instances=4, seed=seed
    )
    assert_bit_identical(runs)
    assert runs["event"][1].total_requests == len(trace)
    # The congestion was real: some requests actually queued.
    assert int(runs["event"][1].queue_depth.max()) > 0


@pytest.mark.parametrize("policy", POLICIES)
@pytest.mark.parametrize("seed", SEEDS)
def test_engines_identical_under_drops(suite, models, estimates, policy, seed):
    """Full-queue admission control: same drops, bit for bit."""
    trace = make_trace(suite, 0.05, seed)
    factory = make_factory(policy, suite, estimates)
    runs = run_both(
        models["baseline"],
        suite,
        factory,
        trace,
        max_instances=1,
        queue_depth=5,
        seed=seed,
    )
    assert_bit_identical(runs)
    assert runs["event"][1].dropped_requests > 0


@pytest.mark.parametrize("policy", ("sjf", "dag"))
def test_engines_identical_with_headroom(suite, models, estimates, policy):
    """A fleet that never saturates exercises the contention-free pass."""
    trace = make_trace(suite, 0.02, 1)
    factory = make_factory(policy, suite, estimates)
    runs = run_both(
        models["dscs"], suite, factory, trace, max_instances=50, seed=1
    )
    assert_bit_identical(runs)
    assert runs["event"][1].dropped_requests == 0
    assert int(runs["event"][1].queue_depth.max()) == 0


def test_engines_identical_on_empty_trace(suite, models, estimates):
    trace = RequestTrace(
        arrival_seconds=np.array([]), app_names=(), duration_seconds=60.0
    )
    factory = make_factory("sjf", suite, estimates)
    runs = run_both(
        models["dscs"], suite, factory, trace, max_instances=4, seed=1
    )
    assert_bit_identical(runs)
    assert len(runs["vectorized"][1].sample_times) == 60


def test_engines_identical_across_repeated_runs(suite, models, estimates):
    """Pools persist across run() calls; both engines must agree then too."""
    factory = make_factory("sjf", suite, estimates)
    first = make_trace(suite, 0.02, 1)
    second = make_trace(suite, 0.02, 2)
    event_sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=9, policy=factory
    )
    fast_sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=9, policy=factory
    )
    for trace in (first, second):
        event_series = event_sim.run(trace, engine="event")
        fast_series = fast_sim.run(trace, engine="vectorized")
        assert event_series.identical_to(fast_series)
    assert repr(event_sim._rng.bit_generator.state) == repr(
        fast_sim._rng.bit_generator.state
    )


def test_vectorized_keyed_policy_uses_keyed_engine(
    suite, models, estimates, monkeypatch
):
    """Non-FCFS + sorted trace must actually route to run_keyed."""
    calls = []

    def spying_run_keyed(sim, policy, trace, interval):
        calls.append(policy.key.name)
        return run_keyed(sim, policy, trace, interval)

    monkeypatch.setattr(simulation_module, "run_keyed", spying_run_keyed)
    trace = make_trace(suite, 0.02, 3)
    factory = make_factory("sjf", suite, estimates)
    sim = RackSimulation(
        models["baseline"], suite, max_instances=2, seed=3, policy=factory
    )
    sim.run(trace)  # engine defaults to "auto"
    assert calls == ["sjf"]


def test_unsorted_trace_still_falls_back_to_event(suite, models, estimates):
    """The keyed engine assumes time-ordered arrivals; others fall back."""
    base = make_trace(suite, 0.02, 1)
    shuffled = RequestTrace(
        arrival_seconds=base.arrival_seconds[::-1].copy(),
        app_names=tuple(reversed(base.app_names)),
        duration_seconds=base.duration_seconds,
    )
    factory = make_factory("sjf", suite, estimates)
    sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=factory
    )
    assert not sim._keyed_vectorizable(factory.build(), shuffled)
    fast = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=factory
    ).run(shuffled, engine="vectorized")
    event = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=factory
    ).run(shuffled, engine="event")
    assert fast.identical_to(event)


def test_unknown_app_coverage_matches_across_engines(suite, models):
    """SJF unknown-app accounting is engine-independent."""
    partial = dict(list(suite.items())[:2])
    estimates = {
        name: float(
            np.mean(
                models["baseline"].sample_latencies(
                    app, np.random.default_rng(0), 64
                )
            )
        )
        for name, app in partial.items()
    }
    factory = PolicyFactory("sjf", service_estimates=estimates)
    trace = make_trace(suite, 0.05, 2)
    unknowns = {}
    for engine in ("event", "vectorized"):
        sim = RackSimulation(
            models["baseline"],
            suite,
            max_instances=2,
            seed=2,
            policy=factory,
        )
        sim.run(trace, engine=engine)
        unknowns[engine] = sim.last_policy.unknown_apps
    assert unknowns["event"] == unknowns["vectorized"]
    # Every admitted app outside the estimate set was observed.
    assert set(unknowns["event"]) == set(suite) - set(partial)

    # Coverage accounting must work even when the fleet never congests
    # (every request starts immediately, nothing ever queues).
    for engine in ("event", "vectorized"):
        sim = RackSimulation(
            models["dscs"],
            suite,
            max_instances=500,
            seed=2,
            policy=factory,
        )
        series = sim.run(trace, engine=engine)
        assert int(series.queue_depth.max()) == 0
        assert set(sim.last_policy.unknown_apps) == set(suite) - set(partial)


def test_fcfs_subclass_with_coverage_hook_routes_to_keyed_engine(
    suite, models
):
    """The FCFS fast path has no observe_app calls, so a subclass
    carrying a coverage hook must take the keyed engine instead — same
    results, hook honoured on both engines."""
    from repro.cluster.schedulers import FCFSPolicy

    class ObservingFCFS(FCFSPolicy):
        def __init__(self):
            super().__init__()
            self.seen = set()

        def observe_app(self, app_name):
            self.seen.add(app_name)

    class Factory:
        def build(self):
            return ObservingFCFS()

    trace = make_trace(suite, 0.02, 1)
    sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=Factory()
    )
    assert not sim._vectorizable(ObservingFCFS(), trace)
    assert sim._keyed_vectorizable(ObservingFCFS(), trace)
    series = sim.run(trace, engine="vectorized")
    event_sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=Factory()
    )
    assert series.identical_to(event_sim.run(trace, engine="event"))
    assert sim.last_policy.seen == event_sim.last_policy.seen == set(suite)


def test_pre_hook_external_policy_still_runs(suite, models):
    """Policies written against the old push/pop/len protocol (no
    observe_app) must still run on the event path."""

    class OldProtocolFCFS:
        def __init__(self):
            self._queue = []

        def push(self, request):
            self._queue.append(request)

        def pop(self):
            return self._queue.pop(0)

        def __len__(self):
            return len(self._queue)

    class Factory:
        def build(self):
            return OldProtocolFCFS()

    trace = make_trace(suite, 0.02, 1)
    sim = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1, policy=Factory()
    )
    series = sim.run(trace)  # not a KeyedPolicy: auto falls back to event
    reference = RackSimulation(
        models["baseline"], suite, max_instances=4, seed=1
    ).run(trace, engine="event")
    assert series.identical_to(reference)


def test_keyed_run_on_unknown_application_raises(suite, models, estimates):
    """Both engines fail identically on an app outside the suite."""
    from repro.errors import SchedulingError

    trace = RequestTrace(
        arrival_seconds=np.array([0.0, 0.1]),
        app_names=(next(iter(suite)), "not-a-real-app"),
        duration_seconds=1.0,
    )
    factory = make_factory("sjf", suite, estimates)
    for engine in ("event", "vectorized"):
        sim = RackSimulation(
            models["baseline"], suite, max_instances=4, seed=1, policy=factory
        )
        with pytest.raises(SchedulingError):
            sim.run(trace, engine=engine)
