"""CLI smoke: every registered experiment runs at the ``fast`` fidelity
profile through its auto-generated subcommand, and the emitted JSON
round-trips through ``report.read_json`` with the provenance block intact.

The experiments share the registry's process-wide suite-context cache,
so the parametrized sweep builds models/programs once.
"""

import pytest

from repro import cli
from repro.experiments import report
from repro.experiments.registry import REGISTRY, load_all
from repro.experiments.results import ExperimentResult

ALL_EXPERIMENTS = sorted(load_all().names())


def test_every_harness_is_registered():
    figures = {f"fig{n:02d}" for n in (3, 4, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17)}
    racks = {"fig13-sweep", "fig15-rack", "fig16-rack", "fig17-rack"}
    tables = {"table1", "table2"}
    assert figures | racks | tables | {"dse"} <= set(ALL_EXPERIMENTS)


def test_list_shows_every_experiment(capsys):
    assert cli.main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_EXPERIMENTS:
        assert name in out


@pytest.mark.parametrize("name", ALL_EXPERIMENTS)
def test_fast_profile_runs_and_round_trips(name, tmp_path, capsys):
    target = tmp_path / f"{name}.json"
    assert cli.main(["run", name, "--fast", "--json", str(target)]) == 0
    out = capsys.readouterr().out
    assert f"wrote {target}" in out

    table = report.read_json(target)
    assert isinstance(table, report.ResultTable)
    assert len(table) >= 1
    assert table.experiment == name

    provenance = table.provenance
    assert provenance["profile"] == "fast"
    assert provenance["wall_time_s"] >= 0
    assert provenance["git"]
    assert provenance["python"]

    # Lossless round-trip: re-serialising the parsed document reproduces
    # the original provenance block byte for byte.
    result = ExperimentResult.read_json(target)
    again = result.write_json(tmp_path / f"{name}.again.json")
    retable = report.read_json(again)
    assert retable == table
    assert retable.provenance == provenance
    assert retable.params == table.params
