"""Pareto extraction and the cost-efficiency model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cost import CostModel, SystemCost, system_cost_for
from repro.analysis.pareto import DesignPoint2D, pareto_front, pareto_front_points
from repro.errors import ConfigurationError
from repro.platforms.registry import baseline_cpu, dscs_dsa, ns_arm


class TestPareto:
    def test_dominated_point_excluded(self):
        points = [(10.0, 5.0), (8.0, 6.0), (12.0, 4.0)]
        front = pareto_front(points)
        assert 1 not in front  # dominated by both others
        assert 2 in front

    def test_all_points_on_diagonal_kept(self):
        points = [(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]
        assert pareto_front(points) == [0, 1, 2]

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            pareto_front([])

    def test_design_point_wrapper(self):
        points = [
            DesignPoint2D("a", 10.0, 5.0),
            DesignPoint2D("b", 8.0, 6.0),
        ]
        front = pareto_front_points(points)
        assert [p.label for p in front] == ["a"]

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100),
                st.floats(min_value=0, max_value=100),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_no_front_point_dominated(self, points):
        front = pareto_front(points)
        for i in front:
            for j in range(len(points)):
                if i == j:
                    continue
                strictly_better = (
                    points[j][0] >= points[i][0]
                    and points[j][1] <= points[i][1]
                    and points[j] != points[i]
                )
                if strictly_better:
                    # j dominates i; i must not be on the front unless j is
                    # an exact duplicate in one axis kept by tie-breaking.
                    assert (
                        points[j][0] == points[i][0]
                        or points[j][1] == points[i][1]
                    )


class TestCostModel:
    def test_opex_scales_with_power(self):
        model = CostModel()
        assert model.opex_usd(200.0) == pytest.approx(2 * model.opex_usd(100.0))

    def test_three_year_opex_magnitude(self):
        # 300 W at 30% utilisation for 3 years, PUE 1.5 -> a few hundred $.
        opex = CostModel().opex_usd(300.0)
        assert 200 < opex < 700

    def test_cost_efficiency_prefers_fast_cheap(self):
        model = CostModel()
        cheap = SystemCost("cheap", capex_usd=5000, average_power_watts=100)
        pricey = SystemCost("pricey", capex_usd=20000, average_power_watts=400)
        assert model.cost_efficiency(10.0, cheap) > model.cost_efficiency(10.0, pricey)

    def test_cost_efficiency_scales_with_throughput(self):
        model = CostModel()
        system = SystemCost("s", capex_usd=5000, average_power_watts=100)
        assert model.cost_efficiency(20.0, system) == pytest.approx(
            2 * model.cost_efficiency(10.0, system)
        )

    def test_system_cost_traditional_includes_storage_tier(self):
        cost = system_cost_for(baseline_cpu())
        assert cost.capex_usd > baseline_cpu().capex_usd

    def test_system_cost_dscs_keeps_compute_server(self):
        dscs_cost = system_cost_for(dscs_dsa())
        # DSCS does not eliminate the compute tier (f3 runs there).
        assert dscs_cost.capex_usd > 6500

    def test_ns_systems_comparable_capex_to_baseline(self):
        base = system_cost_for(baseline_cpu()).capex_usd
        arm = system_cost_for(ns_arm()).capex_usd
        assert arm == pytest.approx(base, rel=0.25)

    def test_invalid_inputs_rejected(self):
        model = CostModel()
        with pytest.raises(ConfigurationError):
            model.opex_usd(-1)
        with pytest.raises(ConfigurationError):
            model.cost_efficiency(0.0, SystemCost("s", 1000, 100))
        with pytest.raises(ConfigurationError):
            CostModel(utilization=0.0)
        with pytest.raises(ConfigurationError):
            SystemCost("s", 0, 100)
