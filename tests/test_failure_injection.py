"""Failure injection: full drives, unhealthy nodes, DSA contention.

The paper's fail-over story (§5.3) is that DSCS degrades to conventional
execution, never to an error; these tests inject the failure modes and
assert the degradation paths.
"""

import numpy as np
import pytest

from repro.errors import StorageError
from repro.experiments.benchmarks import build_application
from repro.platforms.registry import baseline_cpu, dscs_dsa
from repro.serverless.function import FunctionRole, ServerlessFunction
from repro.serverless.runtime import ServerlessPlatform
from repro.serverless.scheduler import FunctionPlacer, PlacementTarget
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore
from repro.models.zoo import logistic_regression
from repro.units import MB


def platform_with(nodes):
    return ServerlessPlatform(
        store=ObjectStore(nodes),
        accelerated_platform=dscs_dsa(),
        fallback_platform=baseline_cpu(),
    )


def test_full_drive_rejects_placement_explicitly():
    node = StorageNode(drives=[SSDDrive(capacity_bytes=2 * MB)])
    store = ObjectStore([node], placement=None)
    store.put("a", 1 * MB)
    with pytest.raises(StorageError):
        store.put("b", 2 * MB)


def test_replicas_released_when_object_deleted_after_partial_fill():
    node = StorageNode(drives=[SSDDrive(capacity_bytes=8 * MB)])
    store = ObjectStore([node])
    store.put("a", 3 * MB)
    store.delete("a")
    assert node.drives[0].used_bytes == 0
    # Space is reusable after release.
    store.put("b", 6 * MB)


def test_unhealthy_node_marks_failover_and_recovers():
    nodes = [StorageNode(drives=[SSDDrive()]), StorageNode(drives=[DSCSDrive()])]
    store = ObjectStore(nodes)
    meta = store.put("obj", MB, acceleratable=True)
    placer = FunctionPlacer(store=store)
    function = ServerlessFunction(
        name="f",
        role=FunctionRole.INFERENCE,
        graph=logistic_regression(rows=32, features=8),
        acceleratable=True,
    )
    label = f"storage-node-{meta.accelerated_replica().node.node_id}"

    placer.telemetry.mark_healthy(label, False)
    assert placer.place(function, "obj").target is PlacementTarget.COMPUTE_NODE

    placer.telemetry.mark_healthy(label, True)
    assert placer.place(function, "obj").target is PlacementTarget.IN_STORAGE_DSA


def test_dsa_contention_serialises_to_fallback():
    """Two concurrent requests: one accelerated, one degraded to CPU."""
    app = build_application("Credit Risk Assessment")
    nodes = [StorageNode(drives=[SSDDrive()]), StorageNode(drives=[DSCSDrive()])]
    platform = platform_with(nodes)
    platform.deploy(app)
    key = platform.upload_request(app.name, app.input_bytes)

    meta = platform.store.get_meta(key)
    drive = meta.accelerated_replica().drive
    rng = np.random.default_rng(0)

    drive.mark_busy()  # request A holds the DSA
    degraded = platform.invoke(app.name, key, rng)
    drive.mark_idle()
    accelerated = platform.invoke(app.name, key, rng)

    assert degraded.platform == "Baseline (CPU)"
    assert accelerated.platform == "DSCS-Serverless"


def test_staging_dram_overflow_is_an_error_not_a_hang():
    drive = DSCSDrive(staging_dram_bytes=4 * MB)
    with pytest.raises(StorageError):
        drive.p2p_read_seconds(8 * MB)


def test_queue_overflow_drops_are_bounded():
    """Admission control: drops never exceed arrivals minus capacity."""
    from repro.cluster.simulation import RackSimulation
    from repro.cluster.trace import TraceGenerator
    from repro.core.model import ServerlessExecutionModel
    from repro.experiments.benchmarks import benchmark_suite

    suite = benchmark_suite()
    model = ServerlessExecutionModel(platform=baseline_cpu())
    trace = TraceGenerator(
        list(suite), rate_envelope=(40.0,), segment_seconds=30.0
    ).generate(np.random.default_rng(0))
    series = RackSimulation(
        model, suite, max_instances=1, queue_depth=3
    ).run(trace)
    assert 0 < series.dropped_requests < len(trace)
    assert (
        len(series.completed_latency_seconds) + series.dropped_requests
        == len(trace)
    )
