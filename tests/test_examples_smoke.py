"""Smoke tests: the runnable examples execute end to end.

Each example is imported from its file path and its ``main()`` invoked;
stdout is captured by pytest.  The slower sweeps (DSE, at-scale) have
dedicated benchmark targets instead.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_directory_has_at_least_three_scripts():
    scripts = list(EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert (EXAMPLES_DIR / "quickstart.py").exists()


def test_quickstart_runs(capsys):
    load_example("quickstart").main()
    out = capsys.readouterr().out
    assert "ResNet-50" in out
    assert "speedup" in out


def test_wildfire_example_runs(capsys):
    load_example("wildfire_remote_sensing").main()
    out = capsys.readouterr().out
    assert "Scheduler: in_storage_dsa" in out
    assert "improved" in out


@pytest.mark.slow
def test_dse_example_runs(capsys):
    load_example("design_space_exploration").main()
    out = capsys.readouterr().out
    assert "Pareto frontier" in out


@pytest.mark.slow
def test_at_scale_example_runs(capsys):
    load_example("datacenter_at_scale").main()
    out = capsys.readouterr().out
    assert "peak queue depth" in out
