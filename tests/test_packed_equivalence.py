"""Scalar ↔ packed execution-engine equivalence.

The packed engine must be *bit-identical* to the scalar reference
interpreter: same cycles, same energy, same per-op breakdown — across the
whole model zoo on multiple design points, and on randomized instruction
streams that exercise the Sync/Halt/fused/zero-size edge cases.
"""

import numpy as np
import pytest

from repro.accelerator.config import DDR4, DDR5, HBM2, DSAConfig
from repro.accelerator.isa import (
    GemmTile,
    Halt,
    LoadTile,
    Program,
    StoreTile,
    Sync,
    VectorOp,
)
from repro.accelerator.packed import PackedProgram, pack_program
from repro.accelerator.simulator import CycleSimulator
from repro.compiler.codegen import generate
from repro.errors import SimulationError
from repro.models import zoo
from repro.units import KB, MB

# The full Table 1 model zoo.
ZOO_BUILDERS = {
    "bert_encoder": lambda: zoo.bert_encoder(),
    "dlrm": lambda: zoo.dlrm(),
    "frame_stack_cnn": lambda: zoo.frame_stack_cnn(),
    "gpt2_decoder": lambda: zoo.gpt2_decoder(),
    "image_preprocess": lambda: zoo.image_preprocess(224),
    "inception_v3": lambda: zoo.inception_v3(),
    "logistic_regression": lambda: zoo.logistic_regression(),
    "mlp": lambda: zoo.mlp(),
    "resnet50": lambda: zoo.resnet50(),
    "tabular_preprocess": lambda: zoo.tabular_preprocess(4096, 64),
    "text_preprocess": lambda: zoo.text_preprocess(128),
    "transformer_seq2seq": lambda: zoo.transformer_seq2seq(),
    "unet": lambda: zoo.unet(),
    "vit": lambda: zoo.vit(),
    "yolo_detector": lambda: zoo.yolo_detector(),
}

# Three design points spanning the sweep's behaviours: the paper's chosen
# point (double-buffered), a tiny-scratchpad point that forces the serial
# Sync-per-tile path, and a huge HBM2 array (DMA-rich, few tiles).
DESIGN_POINTS = [
    DSAConfig(),
    DSAConfig(pe_rows=256, pe_cols=256, buffer_bytes=64 * KB, memory=DDR5),
    DSAConfig(pe_rows=512, pe_cols=512, buffer_bytes=32 * MB, memory=HBM2),
]


def assert_reports_identical(scalar, packed):
    assert scalar.cycles == packed.cycles
    assert scalar.latency_s == packed.latency_s
    assert scalar.compute_cycles == packed.compute_cycles
    assert scalar.dma_cycles == packed.dma_cycles
    assert scalar.total_macs == packed.total_macs
    assert scalar.total_vector_ops == packed.total_vector_ops
    assert scalar.dram_bytes == packed.dram_bytes
    assert scalar.energy == packed.energy
    assert scalar.per_op_cycles == packed.per_op_cycles
    assert scalar.mpu_utilization == packed.mpu_utilization
    assert scalar == packed


@pytest.mark.parametrize("model_name", sorted(ZOO_BUILDERS))
@pytest.mark.parametrize(
    "config", DESIGN_POINTS, ids=[c.label for c in DESIGN_POINTS]
)
def test_zoo_equivalence(model_name, config):
    graph = ZOO_BUILDERS[model_name]()
    program = generate(graph, config)
    simulator = CycleSimulator(config)
    assert_reports_identical(
        simulator.run(program), simulator.run_packed(program)
    )


def test_run_packed_accepts_prepacked_program():
    config = DSAConfig()
    program = generate(zoo.mlp(), config)
    packed = pack_program(program)
    assert isinstance(packed, PackedProgram)
    simulator = CycleSimulator(config)
    assert simulator.run_packed(packed) == simulator.run_packed(program)


def test_report_fields_are_plain_ints():
    config = DSAConfig()
    program = generate(zoo.mlp(), config)
    report = CycleSimulator(config).run_packed(program)
    assert type(report.cycles) is int
    assert type(report.compute_cycles) is int
    assert type(report.dma_cycles) is int
    assert all(type(v) is int for v in report.per_op_cycles.values())


def test_oversized_tile_rejected_like_scalar():
    config = DSAConfig(pe_rows=8, pe_cols=8)
    program = Program(
        "bad", [GemmTile("op", m=4, n=16, k=4), Halt("end")]
    )
    simulator = CycleSimulator(config)
    with pytest.raises(SimulationError):
        simulator.run(program)
    with pytest.raises(SimulationError):
        simulator.run_packed(program)


def _random_program(rng: np.random.Generator, config: DSAConfig) -> Program:
    """A random but valid instruction stream with edge cases mixed in."""
    length = int(rng.integers(1, 120))
    instructions = []
    for index in range(length):
        kind = rng.choice(["load", "store", "gemm", "vop", "sync"])
        name = f"op{int(rng.integers(0, 6))}"
        if kind == "load":
            # Zero-byte loads are legal and cost zero DMA cycles.
            num_bytes = int(rng.choice([0, 1, 37, 4096, 1_000_000]))
            instructions.append(LoadTile(name, num_bytes=num_bytes))
        elif kind == "store":
            num_bytes = int(rng.choice([0, 16, 10_000]))
            instructions.append(StoreTile(name, num_bytes=num_bytes))
        elif kind == "gemm":
            # Include boundary tiles that exactly fill the array.
            m = int(rng.choice([1, 7, 64, 500]))
            n = int(rng.choice([1, 3, config.pe_cols]))
            k = int(rng.choice([1, 5, config.pe_rows]))
            instructions.append(GemmTile(name, m=m, n=n, k=k))
        elif kind == "vop":
            elements = int(rng.choice([0, 1, 100, 65_536]))
            cost = int(rng.integers(1, 6))
            fused = bool(rng.integers(0, 2))
            instructions.append(
                VectorOp(
                    name, elements=elements, cost_per_element=cost, fused=fused
                )
            )
        else:
            # Leading, trailing, and repeated Syncs are all legal.
            instructions.append(Sync("barrier"))
    instructions.append(Halt("end"))
    return Program("randomized", instructions)


@pytest.mark.parametrize("seed", range(25))
def test_randomized_stream_equivalence(seed):
    rng = np.random.default_rng(seed)
    config = DSAConfig(
        pe_rows=int(rng.choice([8, 32, 128])),
        pe_cols=int(rng.choice([8, 64, 128])),
        buffer_bytes=int(rng.choice([64 * KB, 4 * MB])),
        memory=rng.choice([DDR4, DDR5, HBM2]),
    )
    program = _random_program(rng, config)
    simulator = CycleSimulator(config)
    assert_reports_identical(
        simulator.run(program), simulator.run_packed(program)
    )


def test_single_sync_program():
    config = DSAConfig()
    program = Program("sync_only", [Sync("s"), Halt("end")])
    simulator = CycleSimulator(config)
    assert_reports_identical(
        simulator.run(program), simulator.run_packed(program)
    )
    assert simulator.run_packed(program).cycles == 0


def test_halt_truncates_consistently():
    # run() stops at the Halt; packing truncates there too.
    config = DSAConfig()
    program = Program(
        "p", [LoadTile("op", num_bytes=100), Halt("end")]
    )
    packed = pack_program(program)
    assert len(packed) == 1
    simulator = CycleSimulator(config)
    assert_reports_identical(
        simulator.run(program), simulator.run_packed(packed)
    )


def test_packed_segments_counted():
    config = DSAConfig()
    program = Program(
        "p",
        [
            LoadTile("op", num_bytes=10),
            Sync("s"),
            GemmTile("op", m=1, n=1, k=1),
            Sync("s2"),
            Halt("end"),
        ],
    )
    packed = pack_program(program)
    assert packed.num_sync_segments == 3


@pytest.mark.parametrize("model_name", sorted(ZOO_BUILDERS))
@pytest.mark.parametrize(
    "config", DESIGN_POINTS, ids=[c.label for c in DESIGN_POINTS]
)
def test_direct_lowering_matches_codegen(model_name, config):
    """lower_packed must be column-identical to pack_program(generate())."""
    from repro.compiler.packed_codegen import lower_packed

    graph = ZOO_BUILDERS[model_name]()
    reference = pack_program(generate(graph, config))
    direct = lower_packed(graph, config)
    assert reference.model_name == direct.model_name
    assert reference.op_names == direct.op_names
    for column in (
        "opcodes",
        "op_ids",
        "num_bytes",
        "gemm_m",
        "gemm_n",
        "gemm_k",
        "macs",
        "element_ops",
        "fused",
        "sram_bytes",
    ):
        assert np.array_equal(
            getattr(reference, column), getattr(direct, column)
        ), column
