"""Reproduce the paper's §4.2 design-space exploration (Figs. 7/8).

Sweeps square DSA arrays across buffer sizes and memory technologies,
prints the power- and area-performance Pareto frontiers, and shows how the
25 W storage budget (after 14 nm scaling) lands on Dim128-4MB-DDR5.

Run:  python examples/design_space_exploration.py
"""

from repro.dse import DSEExplorer, design_space, paper_search_space_size
from repro.models.zoo import resnet50, vit


def main() -> None:
    print(f"Full search space: {paper_search_space_size()} configurations "
          f"(paper: >650)")
    candidates = design_space(square_only=True)
    print(f"Sweeping the {len(candidates)}-point square-array subset...\n")

    explorer = DSEExplorer(eval_models=[resnet50(), vit(dim=384, layers=12, heads=6)])
    results = explorer.sweep(candidates)

    print("Power-performance Pareto frontier (Fig. 7, 45 nm):")
    for point in sorted(explorer.power_pareto(results), key=lambda r: r.throughput_fps):
        marker = " <= feasible in a 25 W drive" if point.feasible else ""
        print(
            f"  {point.label:22s} {point.throughput_fps:8.1f} fps  "
            f"{point.dynamic_power_watts:6.2f} W{marker}"
        )

    print("\nArea-performance Pareto frontier (Fig. 8, 45 nm):")
    for point in sorted(explorer.area_pareto(results), key=lambda r: r.throughput_fps):
        print(
            f"  {point.label:22s} {point.throughput_fps:8.1f} fps  "
            f"{point.area_mm2:8.1f} mm^2"
        )

    best = explorer.best_feasible(results)
    print(
        f"\nBest feasible point under the storage power budget: {best.label}"
        f"\n(paper's choice: Dim128-4MB-DDR5)"
    )


if __name__ == "__main__":
    main()
