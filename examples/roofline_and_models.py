"""Roofline analysis of the model zoo on candidate DSA memory systems.

Shows *why* the design-space exploration picks what it picks: weight-heavy
language models are bandwidth-bound on DDR4/DDR5 while CNNs sit closer to
the ridge, and the extended zoo's DLRM is the memory-bound extreme.

Run:  python examples/roofline_and_models.py
"""

from repro.accelerator.config import DDR4, DDR5, HBM2, DSAConfig
from repro.analysis.roofline import analyze
from repro.models.zoo import (
    bert_encoder,
    dlrm,
    gpt2_decoder,
    resnet50,
    unet,
    vit,
)


def main() -> None:
    models = [
        resnet50(),
        vit(dim=384, layers=12, heads=6),
        unet(image_size=128, depth=3),
        bert_encoder(seq=128, layers=12),
        gpt2_decoder(seq=64, dim=768, layers=12, heads=12),
        dlrm(),
    ]
    for memory in (DDR4, DDR5, HBM2):
        config = DSAConfig(memory=memory)
        ridge = config.num_pes * config.frequency_hz / memory.bandwidth_bytes_per_s
        print(f"\n{config.label}  (ridge: {ridge:.1f} MACs/byte)")
        print(f"  {'model':22s} {'MACs/byte':>10s} {'bound':>10s} "
              f"{'roofline eff':>13s} {'latency':>10s}")
        for graph in models:
            point = analyze(graph, config)
            from repro.compiler import compile_graph

            latency = compile_graph(graph, config).simulate().latency_s
            bound = "compute" if point.compute_bound else "bandwidth"
            print(
                f"  {point.model_name:22s} {point.operational_intensity:10.1f} "
                f"{bound:>10s} {point.roofline_efficiency:13.1%} "
                f"{latency * 1e3:8.2f} ms"
            )

    print(
        "\nTakeaway: at DDR4/DDR5, the language models and DLRM are "
        "bandwidth-bound (the DSE's bandwidth axis); HBM2 would fix that "
        "but its interface power does not fit the 25 W drive budget."
    )


if __name__ == "__main__":
    main()
