"""The paper's motivating use case (Fig. 2): wildfire detection from drone
imagery, deployed as a three-function serverless pipeline over a
disaggregated object store with DSCS-Drives.

Walks the full system: deployment with DSA hints, data placement next to
an accelerator, scheduler placement decisions (including busy-DSA and
fail-over paths), and the end-to-end latency breakdown.

Run:  python examples/wildfire_remote_sensing.py
"""

import numpy as np

from repro import ServerlessExecutionModel, StorageFabric, dscs_dsa, baseline_cpu
from repro.core.breakdown import Component
from repro.experiments.benchmarks import build_application
from repro.serverless.deployment import DeploymentManifest
from repro.serverless.scheduler import FunctionPlacer
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.storage.node import StorageNode
from repro.storage.object_store import ObjectStore
from repro.units import MB


def main() -> None:
    # --- Deploy: the SDG&E remote-sensing pipeline ------------------------
    app = build_application("Remote Sensing")
    manifest = DeploymentManifest.for_application(app)
    print(f"Deployed {app.name!r} with functions:")
    for function in app.functions:
        config = manifest.config_for(function.name)
        accel = config.accelerator or "cpu"
        print(f"  {function.name:32s} accelerator={accel}")

    # --- Storage rack: 3 plain nodes + 1 with a DSCS-Drive ----------------
    nodes = [StorageNode(drives=[SSDDrive()]) for _ in range(3)]
    nodes.append(StorageNode(drives=[SSDDrive(), DSCSDrive()]))
    store = ObjectStore(nodes)

    # A drone uploads an image; placement pins a replica next to the DSA.
    meta = store.put("drone/frame-001.jpg", app.input_bytes, acceleratable=True)
    replica = meta.accelerated_replica()
    print(
        f"\nUploaded {meta.size_bytes // MB} MB image; "
        f"{len(meta.replicas)} replicas, one on DSCS-Drive "
        f"{replica.drive.drive_id} (node {replica.node.node_id})"
    )

    # --- Schedule: in-storage when possible, fail-over otherwise ---------
    placer = FunctionPlacer(store=store)
    decision = placer.place(app.functions[1], "drone/frame-001.jpg", manifest)
    print(f"\nScheduler: {decision.target.value} — {decision.reason}")

    replica.drive.mark_busy()
    busy_decision = placer.place(app.functions[1], "drone/frame-001.jpg", manifest)
    print(f"While DSA busy: {busy_decision.target.value} — {busy_decision.reason}")
    replica.drive.mark_idle()

    # --- Execute: end-to-end latency breakdown ---------------------------
    fabric = StorageFabric(dscs_drive=replica.drive)
    rng = np.random.default_rng(7)
    dscs = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)
    cpu = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)

    result = dscs.invoke(app, rng)
    print("\nDSCS-Serverless invocation breakdown:")
    for component, seconds in sorted(
        result.latency.seconds.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {component.value:14s} {seconds * 1e3:7.2f} ms")
    print(f"  {'total':14s} {result.latency_seconds * 1e3:7.2f} ms")

    base = cpu.invoke(app, rng)
    print(
        f"\nBaseline (CPU): {base.latency_seconds * 1e3:.1f} ms "
        f"({base.latency.get(Component.REMOTE_READ) * 1e3:.1f} ms remote reads)"
    )
    print(
        f"Wildfire alert latency improved "
        f"{base.latency_seconds / result.latency_seconds:.2f}x by in-storage "
        f"acceleration."
    )


if __name__ == "__main__":
    main()
