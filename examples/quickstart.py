"""Quickstart: compile a model for the in-storage DSA and compare
end-to-end serverless execution against the CPU baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ServerlessExecutionModel,
    StorageFabric,
    baseline_cpu,
    benchmark_suite,
    compile_graph,
    dscs_dsa,
    paper_design_point,
)
from repro.experiments import REGISTRY, load_all
from repro.models.zoo import resnet50


def main() -> None:
    # --- 1. Compile a model for the paper's DSA design point -------------
    graph = resnet50()
    executable = compile_graph(graph, paper_design_point())
    report = executable.simulate()
    print(f"ResNet-50 on {report.config_label}:")
    print(f"  cycles       : {report.cycles:,}")
    print(f"  latency      : {report.latency_s * 1e3:.2f} ms")
    print(f"  MPU util     : {report.mpu_utilization:.1%}")
    print(f"  energy       : {report.energy_j * 1e3:.1f} mJ (45 nm)")

    # --- 2. End-to-end serverless invocation: DSCS vs baseline -----------
    fabric = StorageFabric()
    app = benchmark_suite()["Asset Damage Detection"]
    cpu_model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=fabric)
    dscs_model = ServerlessExecutionModel(platform=dscs_dsa(), fabric=fabric)

    rng = np.random.default_rng(0)
    cpu_result = cpu_model.invoke(app, rng)
    dscs_result = dscs_model.invoke(app, rng)

    print(f"\n{app.name}: one invocation")
    for label, result in (("Baseline (CPU)", cpu_result), ("DSCS", dscs_result)):
        breakdown = result.latency
        print(
            f"  {label:14s} total {breakdown.total * 1e3:7.1f} ms  "
            f"(comm {breakdown.communication * 1e3:6.1f} ms, "
            f"compute {breakdown.compute * 1e3:6.1f} ms)  "
            f"energy {result.energy_joules:.1f} J"
        )
    speedup = cpu_result.latency_seconds / dscs_result.latency_seconds
    print(f"  speedup: {speedup:.2f}x  (paper suite average: 3.6x)")

    # --- 3. p95 over many requests (the paper's methodology) -------------
    samples = dscs_model.sample_latencies(app, rng, 10_000)
    print(f"\nDSCS p95 over 10,000 requests: {np.percentile(samples, 95) * 1e3:.1f} ms")

    # --- 4. The experiment registry: one declarative entry point ---------
    # Every figure/table registers an ExperimentSpec; REGISTRY.run
    # resolves its params (here the 'fast' fidelity profile), reuses the
    # shared suite context, and returns rows + provenance.  The same runs
    # are available from the shell: python -m repro.cli run fig09 --fast
    load_all()
    result = REGISTRY.run("fig09", profile="fast")
    dscs_row = next(
        row for row in result.rows if row["platform"] == "DSCS-Serverless"
    )
    print(
        f"\nfig09 via the registry ({result.provenance['wall_time_s']:.1f}s, "
        f"profile={result.provenance['profile']}):"
    )
    print(f"  DSCS-Serverless geomean speedup: {dscs_row['geomean']}x")


if __name__ == "__main__":
    main()
