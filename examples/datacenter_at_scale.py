"""At-scale datacenter simulation (paper Fig. 13), scaled to run in a few
seconds: a bursty Poisson trace over the benchmark suite, served by racks
of Baseline (CPU) vs DSCS-Serverless instances under FCFS scheduling.

Run:  python examples/datacenter_at_scale.py
"""

import numpy as np

from repro.cluster import RackSimulation, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context


def main() -> None:
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])

    # A 5-minute bursty trace at ~1/8 of the paper's request rates, served
    # by 25 instances (1/8 of the paper's 200) — same saturation regime.
    envelope = tuple(rate / 8 for rate in (250, 450, 800, 780, 300))
    generator = TraceGenerator(
        list(context.applications), rate_envelope=envelope, segment_seconds=60.0
    )
    trace = generator.generate(np.random.default_rng(13))
    print(f"Trace: {len(trace)} requests over {trace.duration_seconds / 60:.0f} min "
          f"(bursty Poisson, Fig. 13a)")

    for name in (BASELINE_NAME, DSCS_NAME):
        simulation = RackSimulation(
            context.models[name], context.applications, max_instances=25
        )
        series = simulation.run(trace)
        per_minute = series.mean_latency_per_bucket(60.0)
        formatted = ", ".join(
            f"{value * 1e3:.0f}" if value == value else "-" for value in per_minute
        )
        print(f"\n{name}:")
        print(f"  mean latency      : {series.mean_latency_seconds * 1e3:.0f} ms")
        print(f"  latency/min (ms)  : [{formatted}]")
        print(f"  peak queue depth  : {int(series.queue_depth.max())}")
        print(f"  dropped requests  : {series.dropped_requests}")

    print(
        "\nAs in the paper's Fig. 13: the baseline saturates during bursts "
        "and queues requests, while DSCS serves the same load flat."
    )


if __name__ == "__main__":
    main()
