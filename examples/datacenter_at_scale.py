"""At-scale datacenter simulation (paper Fig. 13) through the experiment
registry: a bursty Poisson trace over the benchmark suite, served by racks
of Baseline (CPU) vs DSCS-Serverless instances under FCFS scheduling.

The registry resolves the scenario declaratively — rate scale and fleet
size are just parameters — and returns both the flat result rows (with
provenance) and the rich study object for custom analysis.  The same run
is one shell command:  python -m repro.cli run fig13 --rate-scale 0.125

Run:  python examples/datacenter_at_scale.py
"""

from repro.experiments import REGISTRY, load_all
from repro.experiments.common import BASELINE_NAME, DSCS_NAME


def main() -> None:
    load_all()

    # The paper's 20-minute trace at ~1/8 of its request rates, served by
    # 25 instances (1/8 of the paper's 200) — same saturation regime,
    # seconds instead of minutes to simulate.
    result = REGISTRY.run("fig13", rate_scale=1 / 8, max_instances=25)
    study = result.study

    print(
        f"Trace: {len(study.trace)} requests over "
        f"{study.trace.duration_seconds / 60:.0f} min (bursty Poisson, Fig. 13a)"
    )
    print(result.to_markdown(title="fig13 @ rate x0.125, 25 instances"))

    for name, series in (
        (BASELINE_NAME, study.baseline),
        (DSCS_NAME, study.dscs),
    ):
        per_minute = series.mean_latency_per_bucket(60.0)
        formatted = ", ".join(
            f"{value * 1e3:.0f}" if value == value else "-" for value in per_minute
        )
        print(f"{name}:")
        print(f"  mean latency      : {series.mean_latency_seconds * 1e3:.0f} ms")
        print(f"  latency/min (ms)  : [{formatted}]")
        print(f"  peak queue depth  : {int(series.queue_depth.max())}")
        print(f"  dropped requests  : {series.dropped_requests}")

    print(
        f"\nProvenance: engine={result.provenance['engine']}, "
        f"seed={result.provenance['seed']}, git={result.provenance['git']}, "
        f"{result.provenance['wall_time_s']:.1f}s wall"
    )
    print(
        "As in the paper's Fig. 13: the baseline saturates during bursts "
        "and queues requests, while DSCS serves the same load flat."
    )


if __name__ == "__main__":
    main()
