"""Ablation: storage-node interference (paper §3's non-interference claim).

Quantifies how co-located function execution inflates conventional storage
GET latency on the same node: DSCS only touches the node CPU through its
driver, while NS-CPU platforms run whole functions on it.
"""

from conftest import print_table

from repro.cluster.interference import (
    StorageNodeCPU,
    StorageTrafficProfile,
    dscs_co_located_load,
    ns_cpu_co_located_load,
)


def test_ablation_storage_interference(benchmark):
    def run():
        cpu = StorageNodeCPU(cores=8)
        traffic = StorageTrafficProfile()
        rows = []
        for rate in (2, 5, 10, 15):
            dscs = cpu.interference(traffic, dscs_co_located_load(rate))
            ns = cpu.interference(
                traffic,
                ns_cpu_co_located_load(
                    rate, compute_seconds_per_invocation=0.35
                ),
            )
            rows.append(
                {
                    "fn invocations/s": rate,
                    "DSCS GET inflation": round(dscs.latency_inflation, 3),
                    "NS-CPU GET inflation": (
                        "saturated"
                        if ns.saturated
                        else round(ns.latency_inflation, 3)
                    ),
                    "NS-CPU node util": f"{ns.combined_utilization:.0%}",
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Ablation: co-located function impact on storage GET latency", rows
    )
    # The paper's claim: DSCS does not interfere with concurrent storage
    # service; a CPU-based in-storage platform does.
    assert all(row["DSCS GET inflation"] < 1.1 for row in rows)
    last = rows[-1]
    assert last["NS-CPU GET inflation"] == "saturated" or (
        last["NS-CPU GET inflation"] > 1.5
    )
