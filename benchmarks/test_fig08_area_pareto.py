"""Fig. 8: area-performance Pareto frontier of the DSA design space."""

from conftest import print_table

from repro.experiments import fig08


def test_fig08_area_pareto(benchmark):
    study = benchmark.pedantic(
        fig08.run, kwargs={"square_only": True}, rounds=1, iterations=1
    )
    frontier_rows = [
        {
            "config": r.label,
            "fps": round(r.throughput_fps, 1),
            "area(mm2)": round(r.area_mm2, 1),
        }
        for r in sorted(study.frontier, key=lambda r: r.throughput_fps)
    ]
    print_table("Fig. 8: area-performance frontier (45 nm)", frontier_rows)
    # Shape check: the frontier spans small-cheap to large-expensive, with
    # the big arrays reaching thousands of mm^2 as in the paper.
    areas = [r.area_mm2 for r in study.results]
    assert max(areas) > 3000
    assert min(areas) < 50
    benchmark.extra_info["max_area_mm2"] = round(max(areas), 1)
