"""Fig. 16: sensitivity to the number of accelerated functions."""

from conftest import print_table

from repro.experiments import fig16


def test_fig16_function_count(benchmark, context):
    study = benchmark.pedantic(
        fig16.run, kwargs={"count": 2000, "context": context},
        rounds=1, iterations=1,
    )
    rows = []
    for extra in sorted(study.speedups):
        row = {"+functions": extra}
        row.update(
            {name[:18]: round(v, 2) for name, v in study.speedups[extra].items()}
        )
        row["geomean"] = round(study.geomean(extra), 2)
        rows.append(row)
    print_table("Fig. 16: DSCS speedup vs extra accelerated functions", rows)
    print(
        f"+0: {study.geomean(0):.2f} (paper 3.6); "
        f"+3: {study.geomean(3):.2f} (paper 8.1)"
    )
    values = [study.geomean(extra) for extra in sorted(study.speedups)]
    assert values == sorted(values)
    # Paper reaches 8.1/3.6 = 2.25x escalation; ours escalates ~1.4x
    # (documented delta in EXPERIMENTS.md: duplicated stages re-read the
    # full tensor payload on both systems, damping the ratio).
    assert study.geomean(3) > 1.25 * study.geomean(0)
    benchmark.extra_info["plus3"] = round(study.geomean(3), 3)
