"""Table 2: the evaluated platform lineup."""

from conftest import print_table

from repro.experiments.tables import table2_rows


def test_table2_platforms(benchmark):
    rows = benchmark.pedantic(table2_rows, rounds=1, iterations=1)
    print_table("Table 2: platforms", rows)
    assert len(rows) == 7
    benchmark.extra_info["platforms"] = [row["platform"] for row in rows]
