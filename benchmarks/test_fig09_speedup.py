"""Fig. 9: normalized end-to-end speedup for every platform (p95 of 10k)."""

from conftest import print_table

from repro.experiments import fig09
from repro.experiments.calibration import PAPER_REQUESTS_PER_MEASUREMENT
from repro.experiments.common import DSCS_NAME


def test_fig09_speedup(benchmark, context):
    study = benchmark.pedantic(
        fig09.run,
        kwargs={"count": PAPER_REQUESTS_PER_MEASUREMENT, "context": context},
        rounds=1,
        iterations=1,
    )
    app_names = list(next(iter(study.speedups.values())))
    rows = []
    for platform, per_app in study.speedups.items():
        row = {"platform": platform}
        row.update({name[:18]: round(value, 2) for name, value in per_app.items()})
        row["geomean"] = round(study.geomean(platform), 2)
        rows.append(row)
    print_table("Fig. 9: normalized speedup (vs Baseline CPU)", rows)
    print(f"DSCS vs CPU    : {study.geomean(DSCS_NAME):.2f}  (paper 3.6)")
    print(f"DSCS vs GPU    : {study.relative(DSCS_NAME, 'GPU'):.2f}  (paper 2.7)")
    print(f"DSCS vs NS-ARM : {study.relative(DSCS_NAME, 'NS-ARM'):.2f}  (paper 3.7)")
    print(f"DSCS vs NS-FPGA: {study.relative(DSCS_NAME, 'NS-FPGA'):.2f}  (paper 1.7)")
    assert 3.0 < study.geomean(DSCS_NAME) < 4.5
    benchmark.extra_info["dscs_geomean"] = round(study.geomean(DSCS_NAME), 3)
    benchmark.extra_info["apps"] = app_names
