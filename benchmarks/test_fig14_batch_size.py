"""Fig. 14: sensitivity to batch size (1-64)."""

from conftest import print_table

from repro.experiments import fig14


def test_fig14_batch_size(benchmark, context):
    study = benchmark.pedantic(
        fig14.run, kwargs={"count": 2000, "context": context},
        rounds=1, iterations=1,
    )
    rows = []
    for batch in study.batches:
        row = {"batch": batch}
        row.update(
            {name[:18]: round(v, 2) for name, v in study.speedups[batch].items()}
        )
        row["geomean"] = round(study.geomean(batch), 2)
        rows.append(row)
    print_table("Fig. 14: DSCS speedup vs batch size", rows)
    print(
        f"batch 1: {study.geomean(1):.2f} (paper 3.6); "
        f"batch 64: {study.geomean(64):.2f} (paper 15.8)"
    )
    values = [study.geomean(b) for b in study.batches]
    assert values == sorted(values)  # monotone growth
    assert study.geomean(64) > 2.5 * study.geomean(1)
    benchmark.extra_info["batch1"] = round(study.geomean(1), 3)
    benchmark.extra_info["batch64"] = round(study.geomean(64), 3)
