"""Fig. 7: power-performance Pareto frontier of the DSA design space."""

from conftest import print_table

from repro.experiments import fig07
from repro.experiments.calibration import PAPER_MIN_DESIGN_POINTS
from repro.dse.space import paper_search_space_size


def test_fig07_power_pareto(benchmark):
    # The coarse square-array sweep reproduces the frontier shape quickly;
    # the enumerated full space exceeds the paper's >650 points.
    assert paper_search_space_size() > PAPER_MIN_DESIGN_POINTS
    study = benchmark.pedantic(
        fig07.run, kwargs={"square_only": True}, rounds=1, iterations=1
    )
    frontier_rows = [
        {
            "config": r.label,
            "fps": round(r.throughput_fps, 1),
            "dyn power(W)": round(r.dynamic_power_watts, 2),
            "feasible@14nm": r.feasible,
        }
        for r in sorted(study.frontier, key=lambda r: r.throughput_fps)
    ]
    print_table(
        f"Fig. 7: power-performance frontier "
        f"({study.num_points} points evaluated; full space "
        f"{paper_search_space_size()})",
        frontier_rows,
    )
    print(f"best feasible point: {study.best_feasible.label}  (paper: Dim128-4MB-DDR5)")
    assert study.best_feasible.config.pe_rows == 128
    assert study.best_feasible.config.memory.name in ("DDR5", "HBM2")
    benchmark.extra_info["best_feasible"] = study.best_feasible.label
