"""Fig. 10: runtime breakdown per platform per benchmark."""

from conftest import print_table

from repro.core.breakdown import Component
from repro.experiments import fig10


def test_fig10_runtime_breakdown(benchmark, context):
    results = benchmark.pedantic(
        fig10.run, kwargs={"averages_of": 32, "context": context},
        rounds=1, iterations=1,
    )
    rows = []
    for platform, per_app in results.items():
        for app, breakdown in per_app.items():
            comm = sum(
                breakdown.fraction(c)
                for c in (
                    Component.REMOTE_READ,
                    Component.REMOTE_WRITE,
                    Component.LOCAL_READ,
                    Component.LOCAL_WRITE,
                    Component.P2P_READ,
                    Component.P2P_WRITE,
                    Component.DEVICE_COPY,
                )
            )
            rows.append(
                {
                    "platform": platform,
                    "benchmark": app[:22],
                    "total(ms)": round(breakdown.total_seconds * 1e3, 1),
                    "comm": f"{comm:.0%}",
                    "compute": f"{breakdown.fraction(Component.COMPUTE) + breakdown.fraction(Component.CPU_COMPUTE):.0%}",
                    "stack": f"{breakdown.fraction(Component.SYSTEM_STACK):.0%}",
                    "driver": f"{breakdown.fraction(Component.DRIVER):.0%}",
                }
            )
    print_table("Fig. 10: runtime breakdown", rows)

    # Paper shape: the DSCS bottleneck shifts away from communication and
    # compute towards the system stack and the CPU-resident f3.
    dscs = results["DSCS-Serverless"]
    cpu = results["Baseline (CPU)"]
    for app in dscs:
        dscs_stack = dscs[app].fraction(Component.SYSTEM_STACK)
        cpu_stack = cpu[app].fraction(Component.SYSTEM_STACK)
        assert dscs_stack > cpu_stack
    benchmark.extra_info["platforms"] = list(results)
