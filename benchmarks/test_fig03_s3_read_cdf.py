"""Fig. 3: CDF of reading inputs from remote storage (10,000 reads each)."""

from conftest import print_table

from repro.experiments import fig03
from repro.experiments.calibration import PAPER_REQUESTS_PER_MEASUREMENT


def test_fig03_s3_read_cdf(benchmark):
    results = benchmark.pedantic(
        fig03.run,
        kwargs={"samples": PAPER_REQUESTS_PER_MEASUREMENT},
        rounds=1,
        iterations=1,
    )
    rows = [
        {
            "benchmark": r.benchmark,
            "median(ms)": round(r.median * 1e3, 1),
            "p99(ms)": round(r.p99 * 1e3, 1),
            "p99/median": round(r.tail_ratio, 2),
        }
        for r in results.values()
    ]
    print_table("Fig. 3: remote read latency (paper band: 0.02-0.2 s)", rows)
    avg_ratio = fig03.average_tail_ratio(results)
    print(f"average p99/median: {avg_ratio:.2f}  (paper: ~2.1)")
    assert 1.5 < avg_ratio < 2.8
    benchmark.extra_info["avg_tail_ratio"] = round(avg_ratio, 3)
