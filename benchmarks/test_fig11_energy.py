"""Fig. 11: normalized system energy reduction."""

from conftest import print_table

from repro.experiments import fig11
from repro.experiments.common import DSCS_NAME


def test_fig11_energy(benchmark, context):
    study = benchmark.pedantic(
        fig11.run, kwargs={"averages_of": 32, "context": context},
        rounds=1, iterations=1,
    )
    rows = []
    for platform, per_app in study.reductions.items():
        row = {"platform": platform}
        row.update({name[:18]: round(v, 2) for name, v in per_app.items()})
        row["geomean"] = round(study.geomean(platform), 2)
        rows.append(row)
    print_table("Fig. 11: normalized energy reduction (vs Baseline CPU)", rows)
    print(f"DSCS vs CPU    : {study.geomean(DSCS_NAME):.2f}  (paper 3.5)")
    print(f"DSCS vs NS-FPGA: {study.relative(DSCS_NAME, 'NS-FPGA'):.2f}  (paper 1.9)")
    print(f"DSCS vs NS-ARM : {study.relative(DSCS_NAME, 'NS-ARM'):.2f}  (paper 4.3)")
    print(f"DSCS vs GPU    : {study.relative(DSCS_NAME, 'GPU'):.2f}  (paper 4.2)")
    dscs = study.reductions[DSCS_NAME]
    assert dscs["PPE Detection"] == max(dscs.values())  # paper: ~8x max
    assert dscs["Credit Risk Assessment"] == min(dscs.values())  # paper: ~1x min
    benchmark.extra_info["dscs_geomean"] = round(study.geomean(DSCS_NAME), 3)
