"""Perf harness: event-driven vs vectorized keyed-policy engines.

Runs a saturated SJF rack through ``RackSimulation`` once per engine and
checks both that the two are bit-identical and that the vectorized
index-priority engine actually wins.  ``scripts/bench_policy.py`` times
the full policy x platform study and records the trajectory in
``BENCH_policy.json``.
"""

import time

import numpy as np
import pytest
from conftest import print_table

from repro.cluster.schedulers import PolicyFactory
from repro.cluster.simulation import RackSimulation
from repro.cluster.sweep import service_estimates_for
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, build_context

# Below this the trace is too small for engine overheads to dominate the
# comparison (and the guard would only measure noise).
MIN_TRACE_REQUESTS = 50_000

# x0.2 envelope against 40 instances: the fleet saturates through the
# burst, so the keyed dispatch kernel (not just the contention-free
# pass) is what gets measured.
RATE_SCALE = 0.2
MAX_INSTANCES = 40


@pytest.mark.slow
def test_vectorized_policy_beats_event_driven(benchmark):
    context = build_context(platform_names=[BASELINE_NAME])
    model = context.models[BASELINE_NAME]
    envelope = tuple(r * RATE_SCALE for r in DEFAULT_RATE_ENVELOPE)
    trace = TraceGenerator(
        context.app_names, rate_envelope=envelope
    ).generate(np.random.default_rng(13))
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")
    factory = PolicyFactory(
        "sjf",
        service_estimates=service_estimates_for(context, BASELINE_NAME),
    )

    def timed_run(engine):
        simulation = RackSimulation(
            model,
            context.applications,
            max_instances=MAX_INSTANCES,
            seed=13,
            policy=factory,
        )
        start = time.perf_counter()
        series = simulation.run(trace, engine=engine)
        return series, time.perf_counter() - start

    event_series, event_s = timed_run("event")
    fast_series, fast_s = benchmark.pedantic(
        lambda: timed_run("vectorized"), rounds=1, iterations=1
    )

    assert event_series.identical_to(fast_series)  # bit-identical runs
    assert int(event_series.queue_depth.max()) > 0  # the queue was real
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"policy engines (SJF, {len(trace)} requests, {BASELINE_NAME})",
        [
            {
                "engine": "event-driven (oracle)",
                "wall_s": round(event_s, 3),
                "req/s": round(len(trace) / event_s),
            },
            {
                "engine": "vectorized index-priority",
                "wall_s": round(fast_s, 3),
                "req/s": round(len(trace) / fast_s),
            },
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    # Loose bound so CI variance cannot flake; BENCH_policy.json records
    # the real figure on the full policy x platform study.
    assert speedup >= 5.0
