"""Table 1: the benchmark suite (applications, models, payloads)."""

from conftest import print_table

from repro.experiments.tables import table1_rows


def test_table1_suite(benchmark):
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    printable = [
        {
            "benchmark": row["benchmark"],
            "model": row["model"],
            "params(M)": row["parameters_millions"],
            "GMACs": row["gmacs"],
            "input(MB)": row["input_mb"],
            "output(KB)": row["output_kb"],
        }
        for row in rows
    ]
    print_table("Table 1: benchmark suite", printable)
    assert len(rows) == 8
    benchmark.extra_info["benchmarks"] = [row["benchmark"] for row in rows]
