"""Fig. 12: normalized cost efficiency (3-year TCO)."""

from conftest import print_table

from repro.experiments import fig12
from repro.experiments.common import DSCS_NAME


def test_fig12_cost(benchmark, context):
    study = benchmark.pedantic(
        fig12.run, kwargs={"count": 4000, "context": context},
        rounds=1, iterations=1,
    )
    rows = [
        {
            "platform": platform,
            "throughput(rps)": round(study.throughput_rps[platform], 2),
            "3yr cost($)": round(study.total_cost_usd[platform]),
            "normalized cost-eff": round(study.normalized[platform], 2),
        }
        for platform in study.normalized
    ]
    print_table("Fig. 12: normalized cost efficiency", rows)
    print(f"DSCS: {study.normalized[DSCS_NAME]:.2f}  (paper 3.4)")
    print(f"NS-FPGA: {study.normalized['NS-FPGA']:.2f}  (paper 1.6)")
    ranked = sorted(study.normalized, key=study.normalized.get, reverse=True)
    assert ranked[0] == DSCS_NAME
    assert ranked[1] == "NS-FPGA"
    benchmark.extra_info["dscs_normalized"] = round(study.normalized[DSCS_NAME], 3)
