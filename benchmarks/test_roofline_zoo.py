"""Roofline placement of the model zoo across candidate memory systems.

Companion analysis to Figs. 7/8: shows which workloads the DSE's
bandwidth axis is fighting for.
"""

from conftest import print_table

from repro.accelerator.config import DDR4, DDR5, DSAConfig, HBM2
from repro.analysis.roofline import analyze
from repro.models.zoo import dlrm, gpt2_decoder, resnet50, vit


def test_roofline_zoo(benchmark):
    models = {
        "resnet50": resnet50(),
        "vit-small": vit(dim=384, layers=12, heads=6),
        "gpt2": gpt2_decoder(seq=64, dim=768, layers=12, heads=12),
        "dlrm": dlrm(),
    }

    def run():
        rows = []
        for memory in (DDR4, DDR5, HBM2):
            config = DSAConfig(memory=memory)
            for name, graph in models.items():
                point = analyze(graph, config)
                rows.append(
                    {
                        "memory": memory.name,
                        "model": name,
                        "MACs/byte": round(point.operational_intensity, 1),
                        "ridge": round(point.ridge_intensity, 1),
                        "bound": "compute" if point.compute_bound else "bandwidth",
                        "roofline eff": f"{point.roofline_efficiency:.0%}",
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Roofline: zoo x memory technology (Dim128-4MB)", rows)

    def bound(memory, model):
        for row in rows:
            if row["memory"] == memory and row["model"] == model:
                return row["bound"]
        raise KeyError((memory, model))

    # The weight/embedding-heavy models are bandwidth-bound on DDR4.
    assert bound("DDR4", "gpt2") == "bandwidth"
    assert bound("DDR4", "dlrm") == "bandwidth"
    # HBM2's ridge is low enough to flip the CNN to compute-bound.
    assert bound("HBM2", "resnet50") == "compute"
