"""Ablation: scheduling policies (paper §5.3 future-work directions).

Compares FCFS (the paper's deployed policy) against SJF, criticality-, and
DAG-aware queue policies on an overloaded baseline rack.
"""

import numpy as np
from conftest import print_table

from repro.cluster.simulation import RackSimulation
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.trace import TraceGenerator
from repro.experiments.common import BASELINE_NAME, build_context


def test_ablation_scheduling_policies(benchmark):
    def run():
        context = build_context(platform_names=[BASELINE_NAME])
        model = context.models[BASELINE_NAME]
        suite = context.applications
        estimates = {
            name: model.invoke(app, np.random.default_rng(0)).latency_seconds
            for name, app in suite.items()
        }
        generator = TraceGenerator(
            list(suite), rate_envelope=(30.0, 60.0, 30.0), segment_seconds=30.0
        )
        trace = generator.generate(np.random.default_rng(3))
        policies = {
            "FCFS (paper)": PolicyFactory("fcfs"),
            "SJF": PolicyFactory("sjf", service_estimates=estimates),
            "Criticality": PolicyFactory(
                "criticality", priorities={"Remote Sensing": 0}
            ),
            "DAG-aware": PolicyFactory("dag", applications=suite),
        }
        rows = []
        for label, factory in policies.items():
            series = RackSimulation(
                model, suite, max_instances=8, seed=11, policy=factory
            ).run(trace)
            rows.append(
                {
                    "policy": label,
                    "mean latency(ms)": round(series.mean_latency_seconds * 1e3),
                    "p-completed": len(series.completed_latency_seconds),
                    "peak queue": int(series.queue_depth.max()),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: scheduling policies on an overloaded rack", rows)
    by_policy = {row["policy"]: row for row in rows}
    # The classic result: SJF minimises mean latency under overload.
    assert (
        by_policy["SJF"]["mean latency(ms)"]
        <= by_policy["FCFS (paper)"]["mean latency(ms)"]
    )


def test_ablation_chain_fusion(benchmark):
    """Paper §5.3 function chaining: fuse DSA-chained functions' P2P hop."""
    from repro.core.model import ServerlessExecutionModel
    from repro.platforms.registry import dscs_dsa

    def run():
        context = build_context(platform_names=[BASELINE_NAME])
        rows = []
        plain = ServerlessExecutionModel(platform=dscs_dsa())
        fused = ServerlessExecutionModel(
            platform=dscs_dsa(), fuse_chained_functions=True
        )
        for name, app in context.applications.items():
            extended = app.with_extra_inference_stages(2)
            # Matched congestion draws so the comparison isolates fusion.
            p = plain.invoke(extended, np.random.default_rng(7)).latency_seconds
            f = fused.invoke(extended, np.random.default_rng(7)).latency_seconds
            rows.append(
                {
                    "benchmark": name[:24],
                    "unfused(ms)": round(p * 1e3, 1),
                    "fused(ms)": round(f * 1e3, 1),
                    "gain": round(p / f, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: DSA chain fusion on +2-stage pipelines", rows)
    assert all(row["gain"] >= 1.0 for row in rows)
    assert any(row["gain"] > 1.02 for row in rows)
