"""Perf harness for the fault-injection layer.

Two guards on the full Fig. 13 trace:

1. **Zero-fault overhead** — with inert fault/retry objects attached,
   the run must route to the fault-free vectorized engine and keep its
   (>= 5x) speedup over the event oracle.  The availability layer costs
   nothing until a failure process is enabled.
2. **Chaos speedup** — under a mild fault schedule plus retry policy,
   the vectorized chaos engine must still beat the event-driven chaos
   oracle, bit-identically.  ``scripts/bench_faults.py`` records the
   real figure in ``BENCH_faults.json``.
"""

import time

import numpy as np
import pytest
from conftest import print_table

from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

MIN_TRACE_REQUESTS = 50_000

MILD_FAULTS = FaultSchedule(
    instance_mtbf_seconds=900.0,
    instance_mttr_seconds=30.0,
    slowdown_rate_per_minute=1.0,
    slowdown_multiplier=2.0,
    slowdown_duration_seconds=5.0,
    seed=404,
)
MILD_RETRY = RetryPolicy(timeout_seconds=5.0, max_retries=2)


def _timed_run(context, trace, engine, faults, retry):
    simulation = RackSimulation(
        context.models[BASELINE_NAME],
        context.applications,
        max_instances=200,
        seed=13,
        faults=faults,
        retry=retry,
    )
    start = time.perf_counter()
    series = simulation.run(trace, engine=engine)
    return series, time.perf_counter() - start


@pytest.mark.slow
def test_zero_fault_config_keeps_vectorized_speedup(benchmark):
    """Inert fault objects must not tax the fault-free fast path."""
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")

    inert = (FaultSchedule(), RetryPolicy())
    event_series, event_s = _timed_run(context, trace, "event", *inert)
    fast_series, fast_s = benchmark.pedantic(
        lambda: _timed_run(context, trace, "vectorized", *inert),
        rounds=1,
        iterations=1,
    )

    assert event_series.identical_to(fast_series)
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"inert chaos config ({len(trace)} requests, {BASELINE_NAME})",
        [
            {"engine": "event-driven (oracle)", "wall_s": round(event_s, 3)},
            {"engine": "vectorized (inert faults)", "wall_s": round(fast_s, 3)},
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    assert speedup >= 5.0


@pytest.mark.slow
def test_chaos_vectorized_beats_chaos_oracle(benchmark):
    """Active faults: the vectorized chaos engine still wins, exactly."""
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")

    chaos = (MILD_FAULTS, MILD_RETRY)
    event_series, event_s = _timed_run(context, trace, "event", *chaos)
    fast_series, fast_s = benchmark.pedantic(
        lambda: _timed_run(context, trace, "vectorized", *chaos),
        rounds=1,
        iterations=1,
    )

    assert event_series.identical_to(fast_series)
    assert fast_series.crash_kills > 0 or fast_series.retries > 0
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"chaos engines ({len(trace)} requests, {BASELINE_NAME})",
        [
            {"engine": "event-driven chaos oracle", "wall_s": round(event_s, 3)},
            {"engine": "vectorized chaos engine", "wall_s": round(fast_s, 3)},
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    # BENCH_faults.json records ~2.5x on the two-platform study; the
    # loose bound keeps CI variance from flaking.
    assert speedup >= 1.3
