"""Shared fixtures for the per-figure benchmark harnesses.

Run with ``pytest benchmarks/ --benchmark-only`` (add ``-s`` to see the
regenerated rows/series printed for each table and figure).
"""

import pytest

from repro.experiments.common import build_context


@pytest.fixture(scope="session")
def context():
    """Suite + execution models for all seven Table 2 platforms.

    Session-scoped: building it compiles every benchmark model for each
    DSA-backed platform once.
    """
    return build_context()


def print_table(title, rows):
    """Render a list-of-dicts as an aligned text table."""
    print(f"\n=== {title} ===")
    if not rows:
        print("(empty)")
        return
    keys = list(rows[0])
    widths = {
        k: max(len(str(k)), *(len(str(row.get(k, ""))) for row in rows))
        for k in keys
    }
    header = "  ".join(str(k).ljust(widths[k]) for k in keys)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(str(row.get(k, "")).ljust(widths[k]) for k in keys))
