"""Fig. 13: at-scale evaluation under a bursty 20-minute trace.

(a) input trace, (b) queued functions, (c) baseline latency, (d) DSCS
latency — 200 instances, queue depth 10,000, exactly the paper's setup.
"""

import numpy as np
from conftest import print_table

from repro.experiments import fig13


def test_fig13_at_scale(benchmark):
    study = benchmark.pedantic(fig13.run, rounds=1, iterations=1)

    rps = study.trace.requests_per_second(60.0)
    base_lat = study.baseline.mean_latency_per_bucket(60.0)
    dscs_lat = study.dscs.mean_latency_per_bucket(60.0)
    base_queue = study.baseline.queue_depth
    dscs_queue = study.dscs.queue_depth
    rows = []
    for minute in range(len(rps)):
        start, end = minute * 60, (minute + 1) * 60
        rows.append(
            {
                "minute": minute,
                "req/s (a)": round(float(rps[minute]), 1),
                "base queue (b)": int(base_queue[start:end].max()),
                "dscs queue (b)": int(dscs_queue[start:end].max()),
                "base lat ms (c)": round(float(base_lat[minute]) * 1e3)
                if base_lat[minute] == base_lat[minute] else None,
                "dscs lat ms (d)": round(float(dscs_lat[minute]) * 1e3)
                if dscs_lat[minute] == dscs_lat[minute] else None,
            }
        )
    print_table("Fig. 13: at-scale time series (per minute)", rows)
    print(
        f"requests: {study.baseline.total_requests}; "
        f"baseline peak queue {study.baseline_peak_queue}, "
        f"DSCS peak queue {study.dscs_peak_queue}"
    )

    # Paper shape: the baseline accumulates queued requests under bursts
    # and its latency climbs; DSCS stays flat with near-empty queues.
    assert study.baseline_peak_queue > 100
    assert study.dscs_peak_queue < study.baseline_peak_queue / 10
    assert study.baseline.mean_latency_seconds > 3 * study.dscs.mean_latency_seconds
    dscs_valid = dscs_lat[~np.isnan(dscs_lat)]
    assert dscs_valid.max() < 2 * dscs_valid.min()  # flat DSCS latency
    benchmark.extra_info["baseline_peak_queue"] = study.baseline_peak_queue
    benchmark.extra_info["dscs_peak_queue"] = study.dscs_peak_queue
