"""Fig. 17: cold vs warm containers."""

from conftest import print_table

from repro.experiments import fig17


def test_fig17_cold_start(benchmark, context):
    study = benchmark.pedantic(
        fig17.run, kwargs={"count": 4000, "context": context},
        rounds=1, iterations=1,
    )
    rows = [
        {
            "benchmark": name,
            "warm speedup": round(study.warm_speedups[name], 2),
            "cold speedup": round(study.cold_speedups[name], 2),
        }
        for name in study.warm_speedups
    ]
    print_table("Fig. 17: cold vs warm container speedups", rows)
    print(
        f"warm geomean: {study.warm_geomean:.2f} (paper 3.6); "
        f"cold geomean: {study.cold_geomean:.2f} (paper 2.6)"
    )
    assert study.cold_geomean < study.warm_geomean
    assert study.cold_geomean > 1.5
    benchmark.extra_info["warm"] = round(study.warm_geomean, 3)
    benchmark.extra_info["cold"] = round(study.cold_geomean, 3)
