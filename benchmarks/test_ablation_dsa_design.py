"""Ablations on the DSA design choices DESIGN.md calls out.

Beyond the paper's sweeps: isolate the effect of (a) memory technology at
the chosen 128x128 point, (b) scratchpad capacity, and (c) the technology
node, holding everything else fixed.
"""

from conftest import print_table

from repro.accelerator.config import DDR4, DDR5, HBM2, DSAConfig
from repro.compiler import compile_graph
from repro.models.zoo import gpt2_decoder, resnet50
from repro.units import MB


def _latency_ms(graph, config):
    return compile_graph(graph, config).simulate().latency_s * 1e3


def test_ablation_memory_technology(benchmark):
    """Memory bandwidth matters most for weight-heavy language models."""

    def run():
        rows = []
        cnn = resnet50()
        llm = gpt2_decoder(seq=64, dim=768, layers=12, heads=12)
        for memory in (DDR4, DDR5, HBM2):
            config = DSAConfig(memory=memory)
            rows.append(
                {
                    "memory": memory.name,
                    "resnet50(ms)": round(_latency_ms(cnn, config), 2),
                    "gpt2(ms)": round(_latency_ms(llm, config), 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: memory technology at Dim128-4MB", rows)
    by_memory = {row["memory"]: row for row in rows}
    # Both workloads are DMA-bound at DDR4 (GPT-2 on weights, ResNet on
    # activation traffic), so bandwidth upgrades help both substantially.
    llm_gain = by_memory["DDR4"]["gpt2(ms)"] / by_memory["HBM2"]["gpt2(ms)"]
    cnn_gain = by_memory["DDR4"]["resnet50(ms)"] / by_memory["HBM2"]["resnet50(ms)"]
    assert llm_gain > 1.5
    assert cnn_gain > 1.5
    # DDR4 -> DDR5 alone already buys the LLM a large step (weight stream).
    ddr_step = by_memory["DDR4"]["gpt2(ms)"] / by_memory["DDR5"]["gpt2(ms)"]
    assert ddr_step > 1.3


def test_ablation_buffer_capacity(benchmark):
    """Bigger scratchpads cut activation re-streaming, to a point."""

    def run():
        rows = []
        cnn = resnet50()
        for buffer_mb in (1, 4, 16, 32):
            config = DSAConfig(buffer_bytes=buffer_mb * MB)
            rows.append(
                {
                    "buffer(MB)": buffer_mb,
                    "resnet50(ms)": round(_latency_ms(cnn, config), 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: scratchpad capacity at Dim128-DDR5", rows)
    latencies = [row["resnet50(ms)"] for row in rows]
    assert latencies[1] <= latencies[0]  # 4 MB no worse than 1 MB
    # Diminishing returns past the paper's 4 MB choice.
    assert latencies[1] / latencies[-1] < latencies[0] / latencies[1] + 1.0


def test_ablation_tech_node(benchmark):
    """45 nm -> 14 nm scaling: same cycles, much lower energy."""

    def run():
        rows = []
        cnn = resnet50()
        for node in (45, 14):
            config = DSAConfig(tech_node_nm=node)
            report = compile_graph(cnn, config).simulate()
            rows.append(
                {
                    "node(nm)": node,
                    "latency(ms)": round(report.latency_s * 1e3, 3),
                    "energy(mJ)": round(report.energy_j * 1e3, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table("Ablation: technology node at Dim128-4MB-DDR5", rows)
    assert rows[0]["latency(ms)"] == rows[1]["latency(ms)"]  # iso-frequency
    assert rows[1]["energy(mJ)"] < 0.6 * rows[0]["energy(mJ)"]
