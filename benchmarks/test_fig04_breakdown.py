"""Fig. 4: baseline runtime breakdown (compute / communication / stack)."""

from conftest import print_table

from repro.experiments import fig04


def test_fig04_breakdown(benchmark):
    shares = benchmark.pedantic(
        fig04.run, kwargs={"averages_of": 64}, rounds=1, iterations=1
    )
    rows = [
        {
            "benchmark": r.benchmark,
            "total(ms)": round(r.total_seconds * 1e3, 1),
            "communication": f"{r.communication:.1%}",
            "compute": f"{r.compute:.1%}",
            "system stack": f"{r.system_stack:.1%}",
        }
        for r in shares.values()
    ]
    print_table("Fig. 4: baseline runtime breakdown", rows)
    avg_comm = fig04.average_communication_share(shares)
    cap = fig04.average_compute_cap(shares)
    print(f"average communication share: {avg_comm:.1%}  (paper: >55%)")
    print(f"compute-only acceleration cap: {cap:.2f}x  (paper: 1.52x)")
    assert avg_comm > 0.55
    benchmark.extra_info["avg_communication"] = round(avg_comm, 3)
    benchmark.extra_info["amdahl_cap"] = round(cap, 3)
