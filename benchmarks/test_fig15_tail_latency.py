"""Fig. 15: sensitivity to storage-access tail latency."""

from conftest import print_table

from repro.experiments import fig15


def test_fig15_tail_latency(benchmark):
    study = benchmark.pedantic(
        fig15.run,
        kwargs={"count": 6000, "percentiles": (50.0, 95.0, 99.0)},
        rounds=1,
        iterations=1,
    )
    ratios = sorted({ratio for ratio, _ in study.speedups})
    rows = [
        {
            "p99/median": ratio,
            "speedup@p50": round(study.at(ratio, 50.0), 2),
            "speedup@p95": round(study.at(ratio, 95.0), 2),
            "speedup@p99": round(study.at(ratio, 99.0), 2),
        }
        for ratio in ratios
    ]
    print_table("Fig. 15: DSCS speedup across latency percentiles", rows)
    print("paper: 3.1x at p50, 5.0x at p99 (tail ratio 2.1)")
    # DSCS removes the tailed network from the accelerated path, so its
    # advantage grows towards the tail and with heavier tails.
    assert study.at(2.1, 99.0) > study.at(2.1, 50.0)
    assert study.at(4.0, 99.0) > study.at(2.1, 99.0)
    benchmark.extra_info["p50_at_2.1"] = round(study.at(2.1, 50.0), 3)
    benchmark.extra_info["p99_at_2.1"] = round(study.at(2.1, 99.0), 3)
