"""Perf harness: sharded fleet runner vs the serial event-driven stitch.

Shards the fig13 trace across a multi-rack fleet and checks both that the
sharded vectorized run stitches bit-identically to the serial oracle
(per-rack + merged fleet hashes) and that it actually wins.
``scripts/bench_fleet.py`` times the full study (including the
serial-vectorized control that isolates the parallel component) and
records the trajectory in ``BENCH_fleet.json``.
"""

import os
import time

import numpy as np
import pytest
from conftest import print_table

from repro.cluster.fleet import FleetTopology, GlobalLoadBalancer
from repro.cluster.fleet_engine import FleetRunner
from repro.cluster.trace import TraceGenerator
from repro.experiments.common import BASELINE_NAME, build_context

# Below this the shards are too small for engine overheads to dominate.
MIN_TRACE_REQUESTS = 50_000

RACKS = 8


@pytest.mark.slow
def test_sharded_fleet_beats_serial_event_stitch(benchmark):
    context = build_context(platform_names=[BASELINE_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")
    topology = FleetTopology.uniform(
        RACKS, BASELINE_NAME, max_instances=50, seed=13
    )
    workers = min(4, os.cpu_count() or 1) if (os.cpu_count() or 1) > 1 else 2

    def timed_run(engine, n_workers):
        runner = FleetRunner(
            context, balancer=GlobalLoadBalancer("round_robin"), engine=engine
        )
        start = time.perf_counter()
        result = runner.run(topology, trace, workers=n_workers)
        return result, time.perf_counter() - start

    event_result, event_s = timed_run("event", 1)
    sharded_result, sharded_s = benchmark.pedantic(
        lambda: timed_run("vectorized", workers), rounds=1, iterations=1
    )

    # The sampled/sharded run must reproduce the monolithic-oracle stitch
    # exactly: every per-rack hash and the merged fleet hash.
    assert sharded_result.identical_to(event_result)
    speedup = event_s / sharded_s if sharded_s > 0 else float("inf")
    print_table(
        f"fleet engines ({len(trace)} requests, {RACKS} racks)",
        [
            {
                "engine": "serial event-driven stitch (oracle)",
                "wall_s": round(event_s, 3),
                "req/s": round(len(trace) / event_s),
            },
            {
                "engine": f"sharded vectorized ({workers} workers)",
                "wall_s": round(sharded_s, 3),
                "req/s": round(len(trace) / sharded_s),
            },
        ],
    )
    print(f"speedup: {speedup:.1f}x (stitch bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    benchmark.extra_info["workers"] = workers
    # Loose bound so CI variance (and single-core runners, where the
    # pool adds overhead instead of parallelism) cannot flake; the
    # vectorized engines alone clear this by an order of magnitude.
    assert speedup >= 3.0
