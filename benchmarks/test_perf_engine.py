"""Perf harness: scalar (seed-equivalent) vs packed DSE sweep engines.

Times the same design-point sweep through the seed's path — cold compile
per config, scalar instruction interpreter — and through the fast path —
cross-sweep program cache plus the vectorized packed engine — and checks
both that the results are identical and that the fast path actually wins.
``scripts/bench_sweep.py`` runs the full fig07 sweep and records the
trajectory in ``BENCH_sweep.json``.
"""

import time

from conftest import print_table

from repro.dse.explorer import DSEExplorer
from repro.dse.space import design_space
from repro.models.zoo import mlp, resnet50


def _eval_models():
    return [resnet50(), mlp()]


def _bench_configs():
    # A slice of the square sweep: every memory tech at three geometries.
    space = design_space(square_only=True)
    return [c for c in space if c.pe_rows in (32, 128, 512)]


def _timed_sweep(explorer, configs):
    start = time.perf_counter()
    results = explorer.sweep(configs)
    return results, time.perf_counter() - start


def test_packed_sweep_beats_scalar(benchmark):
    configs = _bench_configs()
    scalar_explorer = DSEExplorer(
        eval_models=_eval_models(), engine="scalar", cache_programs=False
    )
    fast_explorer = DSEExplorer(eval_models=_eval_models())

    scalar_results, scalar_s = _timed_sweep(scalar_explorer, configs)
    fast_results, fast_s = benchmark.pedantic(
        lambda: _timed_sweep(fast_explorer, configs), rounds=1, iterations=1
    )

    assert scalar_results == fast_results  # bit-identical evaluations
    speedup = scalar_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"DSE sweep engines ({len(configs)} configs x "
        f"{len(_eval_models())} models)",
        [
            {
                "engine": "scalar (seed path)",
                "wall_s": round(scalar_s, 3),
                "configs/s": round(len(configs) / scalar_s, 2),
            },
            {
                "engine": "packed + program cache",
                "wall_s": round(fast_s, 3),
                "configs/s": round(len(configs) / fast_s, 2),
            },
        ],
    )
    print(f"speedup: {speedup:.1f}x")
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    # Loose bound so CI variance cannot flake; BENCH_sweep.json records the
    # real (order-of-magnitude) figure on the full fig07 sweep.
    assert speedup > 1.5
