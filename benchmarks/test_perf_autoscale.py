"""Perf harness for the closed-loop control plane.

Two guards on the full Fig. 13 trace:

1. **Control speedup** — with autoscaling + shedding engaged (composed
   with the mild chaos schedule of ``test_perf_faults.py``), the
   vectorized control engine must beat the event-driven control oracle,
   bit-identically.  ``scripts/bench_autoscale.py`` records the real
   figure in ``BENCH_autoscale.json`` (~2.2x on the two-platform study).
2. **Zero-control overhead** — an inert ``ControlPlane()`` must route
   to the existing engines and keep the fault-free vectorized path's
   (>= 5x) speedup.  The control layer costs nothing until enabled.
"""

import time

import numpy as np
import pytest
from conftest import print_table

from repro.cluster.control import AutoscalerPolicy, ControlPlane, OverloadPolicy
from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

MIN_TRACE_REQUESTS = 50_000

MILD_FAULTS = FaultSchedule(
    instance_mtbf_seconds=900.0,
    instance_mttr_seconds=30.0,
    slowdown_rate_per_minute=1.0,
    slowdown_multiplier=2.0,
    slowdown_duration_seconds=5.0,
    seed=404,
)
MILD_RETRY = RetryPolicy(timeout_seconds=5.0, max_retries=2)
PLANE = ControlPlane(
    autoscaler=AutoscalerPolicy(
        policy="target_utilization",
        min_instances=20,
        warmup_seconds=2.5,
        scale_down_cooldown_seconds=30.0,
    ),
    overload=OverloadPolicy(queue_delay_target_seconds=0.5),
)


def _timed_run(context, trace, engine, control):
    simulation = RackSimulation(
        context.models[BASELINE_NAME],
        context.applications,
        max_instances=200,
        seed=13,
        faults=MILD_FAULTS,
        retry=MILD_RETRY,
        control=control,
    )
    start = time.perf_counter()
    series = simulation.run(trace, engine=engine)
    return series, time.perf_counter() - start


@pytest.mark.slow
def test_control_vectorized_beats_control_oracle(benchmark):
    """Closed loop engaged: the vectorized engine still wins, exactly."""
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")

    event_series, event_s = _timed_run(context, trace, "event", PLANE)
    fast_series, fast_s = benchmark.pedantic(
        lambda: _timed_run(context, trace, "vectorized", PLANE),
        rounds=1,
        iterations=1,
    )

    assert event_series.identical_to(fast_series)
    assert fast_series.scale_ups > 0  # the loop actually actuated
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"control engines ({len(trace)} requests, {BASELINE_NAME})",
        [
            {
                "engine": "event-driven control oracle",
                "wall_s": round(event_s, 3),
            },
            {
                "engine": "vectorized control engine",
                "wall_s": round(fast_s, 3),
            },
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    # BENCH_autoscale.json records ~2.2x on the two-platform study; the
    # loose bound keeps CI variance from flaking.
    assert speedup >= 1.3


@pytest.mark.slow
def test_inert_plane_keeps_fault_free_speedup(benchmark):
    """``ControlPlane()`` attached must not tax the fast path at all."""
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")

    def run(engine, control):
        simulation = RackSimulation(
            context.models[BASELINE_NAME],
            context.applications,
            max_instances=200,
            seed=13,
            control=control,
        )
        start = time.perf_counter()
        series = simulation.run(trace, engine=engine)
        return series, time.perf_counter() - start

    event_series, event_s = run("event", ControlPlane())
    fast_series, fast_s = benchmark.pedantic(
        lambda: run("vectorized", ControlPlane()),
        rounds=1,
        iterations=1,
    )

    assert event_series.identical_to(fast_series)
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"inert control plane ({len(trace)} requests, {BASELINE_NAME})",
        [
            {"engine": "event-driven (oracle)", "wall_s": round(event_s, 3)},
            {"engine": "vectorized (inert plane)", "wall_s": round(fast_s, 3)},
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    assert speedup >= 5.0
