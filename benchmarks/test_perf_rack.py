"""Perf harness: event-driven vs vectorized rack simulation engines.

Runs the full Fig. 13 trace through ``RackSimulation`` once per engine
and checks both that the two are bit-identical and that the vectorized
engine actually wins.  ``scripts/bench_rack.py`` times the complete
two-platform study and records the trajectory in ``BENCH_rack.json``.
"""

import time

import numpy as np
import pytest
from conftest import print_table

from repro.cluster.simulation import RackSimulation
from repro.cluster.trace import TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME, build_context

# Below this the trace is too small for engine overheads to dominate the
# comparison (and the guard would only measure noise).
MIN_TRACE_REQUESTS = 50_000


@pytest.mark.slow
def test_vectorized_rack_beats_event_driven(benchmark):
    context = build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    trace = TraceGenerator(context.app_names).generate(
        np.random.default_rng(13)
    )
    if len(trace) < MIN_TRACE_REQUESTS:
        pytest.skip(f"trace too small to benchmark: {len(trace)} requests")

    def timed_run(engine):
        simulation = RackSimulation(
            context.models[BASELINE_NAME],
            context.applications,
            max_instances=200,
            seed=13,
        )
        start = time.perf_counter()
        series = simulation.run(trace, engine=engine)
        return series, time.perf_counter() - start

    event_series, event_s = timed_run("event")
    fast_series, fast_s = benchmark.pedantic(
        lambda: timed_run("vectorized"), rounds=1, iterations=1
    )

    assert event_series.identical_to(fast_series)  # bit-identical runs
    speedup = event_s / fast_s if fast_s > 0 else float("inf")
    print_table(
        f"rack engines ({len(trace)} requests, {BASELINE_NAME})",
        [
            {
                "engine": "event-driven (oracle)",
                "wall_s": round(event_s, 3),
                "req/s": round(len(trace) / event_s),
            },
            {
                "engine": "vectorized busy-period",
                "wall_s": round(fast_s, 3),
                "req/s": round(len(trace) / fast_s),
            },
        ],
    )
    print(f"speedup: {speedup:.1f}x (results bit-identical)")
    benchmark.extra_info["speedup_vs_event"] = round(speedup, 2)
    # Loose bound so CI variance cannot flake; BENCH_rack.json records the
    # real (order-of-magnitude) figure on the full two-platform study.
    assert speedup >= 5.0
