"""Operator-graph IR for the ML/DNN workloads the paper accelerates.

The paper's compiler consumes ONNX graphs; this package provides an
equivalent in-memory IR: typed tensors (:mod:`~repro.models.tensor`),
operator nodes with FLOP/byte accounting (:mod:`~repro.models.ops`), a DAG
container with shape validation (:mod:`~repro.models.graph`), a fluent
:class:`~repro.models.builder.GraphBuilder`, and a zoo
(:mod:`repro.models.zoo`) covering all eight Table 1 workloads.
"""

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph, GraphStats
from repro.models.ops import (
    Activation,
    ActivationKind,
    Cast,
    Conv2D,
    Elementwise,
    ElementwiseKind,
    Embedding,
    GeMM,
    Layout,
    LayoutKind,
    Normalization,
    NormalizationKind,
    Op,
    Pool,
    PoolKind,
    Reduce,
    Resample,
)
from repro.models.tensor import DType, TensorSpec

__all__ = [
    "Activation",
    "ActivationKind",
    "Cast",
    "Conv2D",
    "DType",
    "Elementwise",
    "ElementwiseKind",
    "Embedding",
    "GeMM",
    "Graph",
    "GraphBuilder",
    "GraphStats",
    "Layout",
    "LayoutKind",
    "Normalization",
    "NormalizationKind",
    "Op",
    "Pool",
    "PoolKind",
    "Reduce",
    "Resample",
    "TensorSpec",
]
