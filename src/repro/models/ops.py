"""Operator nodes for the model IR.

Each operator knows its output shape, MAC/FLOP count, and weight footprint.
The split mirrors the DSA's two engines (paper §4.1): GeMM-like operators
(:class:`GeMM`, :class:`Conv2D`) execute on the Matrix Processing Unit;
everything else (elementwise math, activations, normalisation, layout
transforms, casts, pooling, reductions, embedding lookups) executes on the
Vector Processing Unit.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ShapeError
from repro.models.tensor import DType, TensorSpec


class ActivationKind(enum.Enum):
    RELU = "relu"
    LEAKY_RELU = "leaky_relu"
    GELU = "gelu"
    TANH = "tanh"
    SIGMOID = "sigmoid"
    SOFTMAX = "softmax"

    @property
    def flops_per_element(self) -> int:
        """Approximate scalar-op cost per element on a SIMD lane."""
        return {
            ActivationKind.RELU: 1,
            ActivationKind.LEAKY_RELU: 2,
            ActivationKind.GELU: 8,
            ActivationKind.TANH: 6,
            ActivationKind.SIGMOID: 4,
            ActivationKind.SOFTMAX: 5,
        }[self]


class ElementwiseKind(enum.Enum):
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"


class NormalizationKind(enum.Enum):
    LAYER_NORM = "layer_norm"
    BATCH_NORM = "batch_norm"

    @property
    def flops_per_element(self) -> int:
        return {
            NormalizationKind.LAYER_NORM: 8,
            NormalizationKind.BATCH_NORM: 4,
        }[self]


class LayoutKind(enum.Enum):
    RESHAPE = "reshape"
    TRANSPOSE = "transpose"


class PoolKind(enum.Enum):
    MAX = "max"
    AVERAGE = "average"


@dataclass(frozen=True)
class Op:
    """Base operator: named, with one primary input and one output spec.

    Subclasses fill in :meth:`infer_output`, :meth:`macs`, and
    :meth:`weight_bytes`.  ``flops`` defaults to ``2 * macs`` for MPU ops and
    is overridden by VPU ops.
    """

    name: str
    input: TensorSpec

    def infer_output(self) -> TensorSpec:
        raise NotImplementedError

    @property
    def output(self) -> TensorSpec:
        return self.infer_output()

    def macs(self) -> int:
        """Multiply-accumulate count (MPU work); zero for VPU ops."""
        return 0

    def flops(self) -> int:
        """Total floating/integer-op count."""
        return 2 * self.macs()

    def vector_elements(self) -> int:
        """Element count processed by the VPU (zero for pure MPU ops)."""
        return 0

    def weight_bytes(self) -> int:
        """Parameter footprint that must be resident to execute this op."""
        return 0

    @property
    def is_matrix_op(self) -> bool:
        """True if this op runs on the Matrix Processing Unit."""
        return self.macs() > 0

    def _require_rank(self, rank: int) -> None:
        if self.input.rank != rank:
            raise ShapeError(
                f"op {self.name!r} expects rank-{rank} input, "
                f"got shape {self.input.shape}"
            )


@dataclass(frozen=True)
class GeMM(Op):
    """General matrix multiply: ``[batch, m, k] x [k, n] -> [batch, m, n]``.

    Rank-2 inputs ``[m, k]`` are treated as batch 1.
    """

    n: int = 1

    def __post_init__(self) -> None:
        if self.input.rank not in (2, 3):
            raise ShapeError(
                f"GeMM {self.name!r} needs rank-2/3 input, got {self.input.shape}"
            )
        if self.n <= 0:
            raise ShapeError(f"GeMM {self.name!r} has invalid n={self.n}")

    @property
    def batch(self) -> int:
        return self.input.shape[0] if self.input.rank == 3 else 1

    @property
    def m(self) -> int:
        return self.input.shape[-2]

    @property
    def k(self) -> int:
        return self.input.shape[-1]

    def infer_output(self) -> TensorSpec:
        if self.input.rank == 3:
            shape: Tuple[int, ...] = (self.batch, self.m, self.n)
        else:
            shape = (self.m, self.n)
        return TensorSpec(f"{self.name}.out", shape, self.input.dtype)

    def macs(self) -> int:
        return self.batch * self.m * self.n * self.k

    def weight_bytes(self) -> int:
        return self.k * self.n * self.input.dtype.num_bytes


@dataclass(frozen=True)
class Conv2D(Op):
    """2D convolution over NCHW input, lowered to implicit GeMM.

    Output spatial dims follow the standard formula with symmetric padding.
    """

    out_channels: int = 1
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    groups: int = 1

    def __post_init__(self) -> None:
        self._require_rank(4)
        if self.out_channels <= 0 or self.kernel <= 0 or self.stride <= 0:
            raise ShapeError(f"Conv2D {self.name!r} has non-positive geometry")
        if self.padding < 0:
            raise ShapeError(f"Conv2D {self.name!r} has negative padding")
        in_ch = self.input.shape[1]
        if in_ch % self.groups or self.out_channels % self.groups:
            raise ShapeError(
                f"Conv2D {self.name!r}: channels ({in_ch}->{self.out_channels}) "
                f"not divisible by groups={self.groups}"
            )

    def _out_hw(self) -> Tuple[int, int]:
        _, _, h, w = self.input.shape
        out_h = (h + 2 * self.padding - self.kernel) // self.stride + 1
        out_w = (w + 2 * self.padding - self.kernel) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"Conv2D {self.name!r} produces empty output from {self.input.shape}"
            )
        return out_h, out_w

    def infer_output(self) -> TensorSpec:
        n = self.input.shape[0]
        out_h, out_w = self._out_hw()
        return TensorSpec(
            f"{self.name}.out", (n, self.out_channels, out_h, out_w), self.input.dtype
        )

    def macs(self) -> int:
        n, in_ch, _, _ = self.input.shape
        out_h, out_w = self._out_hw()
        k_per_group = (in_ch // self.groups) * self.kernel * self.kernel
        return n * out_h * out_w * self.out_channels * k_per_group

    def weight_bytes(self) -> int:
        in_ch = self.input.shape[1]
        per_filter = (in_ch // self.groups) * self.kernel * self.kernel
        return self.out_channels * per_filter * self.input.dtype.num_bytes

    def as_gemm_dims(self) -> Tuple[int, int, int]:
        """Return the (M, N, K) of the implicit-GeMM lowering."""
        out_h, out_w = self._out_hw()
        n = self.input.shape[0]
        in_ch = self.input.shape[1]
        m = n * out_h * out_w
        k = (in_ch // self.groups) * self.kernel * self.kernel
        return m, self.out_channels, k


@dataclass(frozen=True)
class Elementwise(Op):
    """Element-wise binary arithmetic (second operand same shape)."""

    kind: ElementwiseKind = ElementwiseKind.ADD

    def infer_output(self) -> TensorSpec:
        return self.input.with_name(f"{self.name}.out")

    def flops(self) -> int:
        return self.input.elements

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Activation(Op):
    """Element-wise activation function."""

    kind: ActivationKind = ActivationKind.RELU

    def infer_output(self) -> TensorSpec:
        return self.input.with_name(f"{self.name}.out")

    def flops(self) -> int:
        return self.input.elements * self.kind.flops_per_element

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Normalization(Op):
    """Layer/batch normalisation (reduction + scale/shift)."""

    kind: NormalizationKind = NormalizationKind.LAYER_NORM

    def infer_output(self) -> TensorSpec:
        return self.input.with_name(f"{self.name}.out")

    def flops(self) -> int:
        return self.input.elements * self.kind.flops_per_element

    def vector_elements(self) -> int:
        return self.input.elements

    def weight_bytes(self) -> int:
        # Scale and shift vectors along the innermost dimension.
        return 2 * self.input.shape[-1] * self.input.dtype.num_bytes


@dataclass(frozen=True)
class Pool(Op):
    """2D pooling over NCHW input."""

    kind: PoolKind = PoolKind.MAX
    kernel: int = 2
    stride: int = 2

    def __post_init__(self) -> None:
        self._require_rank(4)
        if self.kernel <= 0 or self.stride <= 0:
            raise ShapeError(f"Pool {self.name!r} has non-positive geometry")

    def infer_output(self) -> TensorSpec:
        n, c, h, w = self.input.shape
        out_h = (h - self.kernel) // self.stride + 1
        out_w = (w - self.kernel) // self.stride + 1
        if out_h <= 0 or out_w <= 0:
            raise ShapeError(
                f"Pool {self.name!r} produces empty output from {self.input.shape}"
            )
        return TensorSpec(f"{self.name}.out", (n, c, out_h, out_w), self.input.dtype)

    def flops(self) -> int:
        return self.infer_output().elements * self.kernel * self.kernel

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Layout(Op):
    """Data-layout transform: reshape or transpose."""

    kind: LayoutKind = LayoutKind.RESHAPE
    target_shape: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind is LayoutKind.RESHAPE:
            if math.prod(self.target_shape) != self.input.elements:
                raise ShapeError(
                    f"Layout {self.name!r}: reshape {self.input.shape} -> "
                    f"{self.target_shape} changes element count"
                )
        elif self.kind is LayoutKind.TRANSPOSE:
            if sorted(self.target_shape) != sorted(self.input.shape):
                raise ShapeError(
                    f"Layout {self.name!r}: transpose target {self.target_shape} "
                    f"is not a permutation of {self.input.shape}"
                )

    def infer_output(self) -> TensorSpec:
        return TensorSpec(f"{self.name}.out", self.target_shape, self.input.dtype)

    def flops(self) -> int:
        # Pure data movement: one element move each.
        return self.input.elements

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Resample(Op):
    """Spatial resampling (image resize / crop): element count may change.

    Cost model: one read per source element plus one interpolation write per
    destination element — all on the VPU.
    """

    target_shape: Tuple[int, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.target_shape:
            raise ShapeError(f"Resample {self.name!r} needs a target shape")
        for dim in self.target_shape:
            if dim <= 0:
                raise ShapeError(
                    f"Resample {self.name!r} has invalid target {self.target_shape}"
                )

    def infer_output(self) -> TensorSpec:
        return TensorSpec(f"{self.name}.out", self.target_shape, self.input.dtype)

    def flops(self) -> int:
        return self.input.elements + self.infer_output().elements

    def vector_elements(self) -> int:
        return self.input.elements + self.infer_output().elements


@dataclass(frozen=True)
class Cast(Op):
    """Datatype conversion (e.g. fp32 -> int8 quantisation)."""

    target_dtype: DType = DType.INT8

    def infer_output(self) -> TensorSpec:
        out = self.input.with_name(f"{self.name}.out")
        return out.with_dtype(self.target_dtype)

    def flops(self) -> int:
        return self.input.elements

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Reduce(Op):
    """Reduction along the innermost axis (mean/sum/argmax)."""

    keepdim: bool = False

    def infer_output(self) -> TensorSpec:
        if self.input.rank == 1:
            shape: Tuple[int, ...] = (1,)
        elif self.keepdim:
            shape = self.input.shape[:-1] + (1,)
        else:
            shape = self.input.shape[:-1]
        return TensorSpec(f"{self.name}.out", shape, self.input.dtype)

    def flops(self) -> int:
        return self.input.elements

    def vector_elements(self) -> int:
        return self.input.elements


@dataclass(frozen=True)
class Embedding(Op):
    """Token-embedding lookup: ``[batch, seq]`` ints -> ``[batch, seq, dim]``.

    Memory-bound: no MACs, but the table rows must be streamed in.
    """

    vocab: int = 1
    dim: int = 1

    def __post_init__(self) -> None:
        self._require_rank(2)
        if self.vocab <= 0 or self.dim <= 0:
            raise ShapeError(f"Embedding {self.name!r} has non-positive geometry")

    def infer_output(self) -> TensorSpec:
        batch, seq = self.input.shape
        return TensorSpec(f"{self.name}.out", (batch, seq, self.dim), self.input.dtype)

    def flops(self) -> int:
        return self.infer_output().elements

    def vector_elements(self) -> int:
        return self.infer_output().elements

    def weight_bytes(self) -> int:
        return self.vocab * self.dim * self.input.dtype.num_bytes
