"""Tensor specifications: shapes and datatypes (no actual data).

The simulator only needs shape/dtype to account for FLOPs, bytes moved, and
buffer occupancy, so a tensor here is a named spec rather than an array.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ShapeError


class DType(enum.Enum):
    """Datatypes the DSA and its compiler understand."""

    INT8 = ("int8", 1)
    FP16 = ("fp16", 2)
    FP32 = ("fp32", 4)

    def __init__(self, label: str, num_bytes: int) -> None:
        self.label = label
        self.num_bytes = num_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DType.{self.name}"


@dataclass(frozen=True)
class TensorSpec:
    """A named tensor with a static shape and datatype."""

    name: str
    shape: Tuple[int, ...]
    dtype: DType = DType.INT8

    def __post_init__(self) -> None:
        if not self.name:
            raise ShapeError("tensor must have a non-empty name")
        if len(self.shape) == 0:
            raise ShapeError(f"tensor {self.name!r} must have at least one dim")
        for dim in self.shape:
            if not isinstance(dim, int) or dim <= 0:
                raise ShapeError(
                    f"tensor {self.name!r} has invalid dim {dim!r} in {self.shape}"
                )

    @property
    def elements(self) -> int:
        """Total number of elements."""
        return math.prod(self.shape)

    @property
    def size_bytes(self) -> int:
        """Total footprint in bytes."""
        return self.elements * self.dtype.num_bytes

    @property
    def rank(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    def with_name(self, name: str) -> "TensorSpec":
        """Return a copy renamed to ``name``."""
        return TensorSpec(name, self.shape, self.dtype)

    def with_shape(self, shape: Tuple[int, ...]) -> "TensorSpec":
        """Return a copy reshaped to ``shape`` (element count may change)."""
        return TensorSpec(self.name, shape, self.dtype)

    def with_dtype(self, dtype: DType) -> "TensorSpec":
        """Return a copy cast to ``dtype``."""
        return TensorSpec(self.name, self.shape, dtype)
