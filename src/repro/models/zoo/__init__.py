"""Model zoo for the eight Table 1 serverless workloads.

Exact AWS Lambda models are not public, so — exactly as the paper does —
each application uses a representative state-of-the-art architecture with
the same functionality (e.g. ResNet-50 for Rekognition-style detection,
Inception-v3 for the clinical-analysis pipeline, a ViT for remote sensing,
GPT-2-class decoder for the chatbot, a transformer seq2seq for translation,
and logistic regression for credit-risk scoring).
"""

from repro.models.zoo.classical import logistic_regression, mlp
from repro.models.zoo.extended import bert_encoder, dlrm, unet
from repro.models.zoo.language import gpt2_decoder, transformer_seq2seq, vit
from repro.models.zoo.preprocess import (
    image_preprocess,
    tabular_preprocess,
    text_preprocess,
)
from repro.models.zoo.vision import (
    frame_stack_cnn,
    inception_v3,
    resnet50,
    yolo_detector,
)

__all__ = [
    "bert_encoder",
    "dlrm",
    "frame_stack_cnn",
    "gpt2_decoder",
    "image_preprocess",
    "inception_v3",
    "logistic_regression",
    "mlp",
    "resnet50",
    "tabular_preprocess",
    "text_preprocess",
    "transformer_seq2seq",
    "unet",
    "vit",
    "yolo_detector",
]
