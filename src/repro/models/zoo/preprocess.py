"""Data pre-processing graphs (each application's Function 1).

The paper runs pre-processing on the VPU (§4.1): tokenisation,
normalisation, scaling, and datatype casting.  These graphs contain only
vector ops, so the compiler maps them entirely onto the VPU.
"""

from __future__ import annotations

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.ops import ElementwiseKind
from repro.models.tensor import DType, TensorSpec


def image_preprocess(
    image_size: int, raw_size: int = 1024, channels: int = 3
) -> Graph:
    """Decode-scale-normalise-quantise for an image pipeline.

    ``raw_size`` is the decoded source resolution; the graph scales it to
    ``image_size`` and converts fp32 pixels to the DSA's int8 format.
    """
    builder = GraphBuilder(
        f"image_preprocess_{image_size}",
        TensorSpec("raw_image", (1, channels, raw_size, raw_size), DType.FP32),
    )
    builder.elementwise(ElementwiseKind.MUL)  # bilinear weighting
    builder.resample((1, channels, image_size, image_size))
    builder.elementwise(ElementwiseKind.SUB)  # mean subtraction
    builder.elementwise(ElementwiseKind.DIV)  # stddev scaling
    builder.cast(DType.INT8)
    return builder.build()


def text_preprocess(tokens: int, raw_bytes: int = 4096) -> Graph:
    """Tokenisation-and-packing for a text pipeline.

    Byte-level cleanup runs as vector ops over the raw buffer, followed by a
    lookup-style pass producing the packed token tensor.
    """
    builder = GraphBuilder(
        f"text_preprocess_{tokens}",
        TensorSpec("raw_text", (1, raw_bytes), DType.FP32),
    )
    builder.elementwise(ElementwiseKind.MUL)  # case folding / byte mapping
    builder.reshape((tokens, raw_bytes // tokens))
    builder.reduce(keepdim=False)  # merge bytes into token ids
    builder.reshape((1, tokens))
    builder.cast(DType.INT8)
    return builder.build()


def tabular_preprocess(rows: int, features: int) -> Graph:
    """Column-wise normalisation and missing-value imputation."""
    builder = GraphBuilder(
        f"tabular_preprocess_{rows}x{features}",
        TensorSpec("raw_rows", (rows, features), DType.FP32),
    )
    builder.elementwise(ElementwiseKind.SUB)  # centre columns
    builder.elementwise(ElementwiseKind.DIV)  # scale columns
    builder.elementwise(ElementwiseKind.ADD)  # imputation fill
    return builder.build()
