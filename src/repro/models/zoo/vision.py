"""Convolutional vision models used by the image-centric benchmarks."""

from __future__ import annotations

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.ops import PoolKind
from repro.models.tensor import DType, TensorSpec


def resnet50(image_size: int = 224, dtype: DType = DType.INT8) -> Graph:
    """ResNet-50 (He et al.): ~4.1 GFLOPs at 224x224, ~25.6M params.

    Used by Asset Damage Detection (Lookout-for-Vision-style defect
    spotting) and as the Rekognition-equivalent classifier.
    """
    builder = GraphBuilder(
        "resnet50", TensorSpec("image", (1, 3, image_size, image_size), dtype)
    )
    builder.conv_bn_relu(64, kernel=7, stride=2, padding=3)
    builder.pool(PoolKind.MAX, kernel=3, stride=2)
    stages = [
        (64, 256, 3, 1),
        (128, 512, 4, 2),
        (256, 1024, 6, 2),
        (512, 2048, 3, 2),
    ]
    for mid, out, blocks, first_stride in stages:
        # First block of each stage widens channels (projection shortcut).
        builder.bottleneck(mid, out, stride=first_stride)
        for _ in range(blocks - 1):
            builder.bottleneck(mid, out, stride=1)
    spatial = builder.current.shape[-1]
    builder.pool(PoolKind.AVERAGE, kernel=spatial, stride=spatial)
    builder.reshape((1, 2048))
    builder.linear(1000)
    builder.softmax()
    return builder.build()


def inception_v3(image_size: int = 299, dtype: DType = DType.INT8) -> Graph:
    """Inception-v3 equivalent (~5.7 GFLOPs at 299x299, ~23.8M params).

    The clinical-analysis benchmark (acute myeloid/lymphoblastic leukemia
    classification) uses Inception-v3 per the paper's reference.  Inception
    branches are folded into equivalent-work sequential convs.
    """
    builder = GraphBuilder(
        "inception_v3", TensorSpec("image", (1, 3, image_size, image_size), dtype)
    )
    builder.conv_bn_relu(32, kernel=3, stride=2, padding=0)
    builder.conv_bn_relu(32, kernel=3, stride=1, padding=0)
    builder.conv_bn_relu(64, kernel=3, stride=1, padding=1)
    builder.pool(PoolKind.MAX, kernel=3, stride=2)
    builder.conv_bn_relu(80, kernel=1, stride=1, padding=0)
    builder.conv_bn_relu(192, kernel=3, stride=1, padding=0)
    builder.pool(PoolKind.MAX, kernel=3, stride=2)
    # Inception-A x3 (35x35), folded branches.
    for _ in range(3):
        builder.conv_bn_relu(64, kernel=1)
        builder.conv_bn_relu(96, kernel=3)
        builder.conv_bn_relu(96, kernel=3)
        builder.conv_bn_relu(288, kernel=1)
    # Reduction-A.
    builder.conv_bn_relu(384, kernel=3, stride=2, padding=0)
    # Inception-B x4 (17x17), 7x1/1x7 factorised convs folded to 3x3-equivalents.
    for _ in range(4):
        builder.conv_bn_relu(128, kernel=1)
        builder.conv_bn_relu(192, kernel=3)
        builder.conv_bn_relu(192, kernel=3)
        builder.conv_bn_relu(768, kernel=1)
    # Reduction-B.
    builder.conv_bn_relu(640, kernel=3, stride=2, padding=0)
    # Inception-C x2 (8x8).
    for _ in range(2):
        builder.conv_bn_relu(448, kernel=1)
        builder.conv_bn_relu(384, kernel=3)
        builder.conv_bn_relu(1280, kernel=1)
    spatial = builder.current.shape[-1]
    builder.pool(PoolKind.AVERAGE, kernel=spatial, stride=spatial)
    channels = builder.current.shape[1]
    builder.reshape((1, channels))
    builder.linear(1000)
    builder.softmax()
    return builder.build()


def yolo_detector(image_size: int = 416, dtype: DType = DType.INT8) -> Graph:
    """Darknet-53-style one-shot detector (~65 GFLOPs at 416x416).

    PPE Detection runs object detection over high-resolution site imagery;
    this is the heaviest vision workload in the suite.
    """
    builder = GraphBuilder(
        "yolo_detector", TensorSpec("image", (1, 3, image_size, image_size), dtype)
    )
    builder.conv_bn_relu(32, kernel=3)
    builder.conv_bn_relu(64, kernel=3, stride=2)

    def residual_block(mid: int, out: int) -> None:
        builder.conv_bn_relu(mid, kernel=1, padding=0)
        builder.conv_bn_relu(out, kernel=3)
        builder.residual_add()

    residual_block(32, 64)
    builder.conv_bn_relu(128, kernel=3, stride=2)
    for _ in range(2):
        residual_block(64, 128)
    builder.conv_bn_relu(256, kernel=3, stride=2)
    for _ in range(8):
        residual_block(128, 256)
    builder.conv_bn_relu(512, kernel=3, stride=2)
    for _ in range(8):
        residual_block(256, 512)
    builder.conv_bn_relu(1024, kernel=3, stride=2)
    for _ in range(4):
        residual_block(512, 1024)
    # Detection head (folded multi-scale heads).
    builder.conv_bn_relu(512, kernel=1, padding=0)
    builder.conv_bn_relu(1024, kernel=3)
    builder.conv2d(255, kernel=1, padding=0)
    builder.sigmoid()
    return builder.build()


def frame_stack_cnn(
    frames: int = 4, image_size: int = 224, dtype: DType = DType.INT8
) -> Graph:
    """ResNet-18-class backbone applied to a stack of video frames.

    Content Moderation scans several sampled frames per request; the frame
    count multiplies the batch dimension, making the workload communication-
    heavy (large input payload) with moderate compute.
    """
    builder = GraphBuilder(
        "frame_stack_cnn",
        TensorSpec("frames", (frames, 3, image_size, image_size), dtype),
    )
    builder.conv_bn_relu(64, kernel=7, stride=2, padding=3)
    builder.pool(PoolKind.MAX, kernel=3, stride=2)

    def basic_block(channels: int, stride: int = 1) -> None:
        builder.conv_bn_relu(channels, kernel=3, stride=stride)
        builder.conv_bn_relu(channels, kernel=3)
        builder.residual_add()

    for channels, stride in ((64, 1), (64, 1), (128, 2), (128, 1),
                             (256, 2), (256, 1), (512, 2), (512, 1)):
        basic_block(channels, stride)
    spatial = builder.current.shape[-1]
    builder.pool(PoolKind.AVERAGE, kernel=spatial, stride=spatial)
    builder.reshape((frames, 512))
    builder.linear(128)
    builder.relu()
    builder.linear(16)
    builder.softmax()
    return builder.build()
