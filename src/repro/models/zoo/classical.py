"""Classical ML models: logistic regression and small MLPs."""

from __future__ import annotations

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.tensor import DType, TensorSpec


def logistic_regression(
    rows: int = 4096, features: int = 64, dtype: DType = DType.FP32
) -> Graph:
    """Binary logistic regression over a tabular batch.

    Credit Risk Assessment scores a batch of loan applications; compute is
    trivial relative to moving the tabular payload, which is exactly why the
    paper finds the benchmark gains the least from acceleration.
    """
    builder = GraphBuilder(
        "logistic_regression", TensorSpec("rows", (rows, features), dtype)
    )
    builder.gemm(1, name="score")
    builder.sigmoid()
    return builder.build()


def mlp(
    rows: int = 1024,
    features: int = 128,
    hidden: tuple[int, ...] = (256, 64),
    classes: int = 8,
    dtype: DType = DType.FP32,
) -> Graph:
    """Small multi-layer perceptron for tabular scoring pipelines."""
    builder = GraphBuilder("mlp", TensorSpec("rows", (rows, features), dtype))
    for width in hidden:
        builder.linear(width)
        builder.relu()
    builder.linear(classes)
    builder.softmax()
    return builder.build()
