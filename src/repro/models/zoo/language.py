"""Transformer-family models: chatbot LLM, translation seq2seq, and ViT."""

from __future__ import annotations

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.tensor import DType, TensorSpec


def gpt2_decoder(
    seq: int = 128,
    dim: int = 1024,
    layers: int = 24,
    heads: int = 16,
    vocab: int = 50257,
    dtype: DType = DType.INT8,
) -> Graph:
    """GPT-2-medium-class decoder (~355M params) for the chatbot benchmark.

    Models a single generation step over a ``seq``-token context — the
    latency-critical unit of work in conversational serving.
    """
    builder = GraphBuilder("gpt2_decoder", TensorSpec("tokens", (1, seq), dtype))
    builder.embedding(vocab, dim)
    builder.reshape((seq, dim))
    builder.layer_norm()
    for _ in range(layers):
        builder.transformer_layer(seq, dim, heads)
    builder.layer_norm()
    # LM head over the final position, folded as [seq, dim] x [dim, vocab].
    builder.gemm(vocab, name="lm_head")
    builder.softmax()
    return builder.build()


def transformer_seq2seq(
    src_seq: int = 256,
    tgt_seq: int = 256,
    dim: int = 1024,
    encoder_layers: int = 6,
    decoder_layers: int = 6,
    heads: int = 16,
    vocab: int = 32000,
    dtype: DType = DType.INT8,
) -> Graph:
    """Transformer-big seq2seq (~210M params) for Document Translation.

    Encoder over the source document followed by a decoder pass over the
    target sequence; cross-attention is folded into equivalent-work
    self-attention layers at the decoder length.
    """
    builder = GraphBuilder(
        "transformer_seq2seq", TensorSpec("src_tokens", (1, src_seq), dtype)
    )
    builder.embedding(vocab, dim)
    builder.reshape((src_seq, dim))
    builder.layer_norm()
    for _ in range(encoder_layers):
        builder.transformer_layer(src_seq, dim, heads)
    # Hand off encoder states to the decoder; the decoder works at tgt_seq.
    builder.reshape((src_seq * dim,))
    builder.reshape((tgt_seq, (src_seq * dim) // tgt_seq))
    builder.gemm(dim, name="dec_input_proj")
    for layer in range(decoder_layers):
        builder.transformer_layer(tgt_seq, dim, heads)
        # Cross-attention equivalent work: one extra attention block.
        builder.attention_block(tgt_seq, dim, heads)
    builder.gemm(vocab, name="generator")
    builder.softmax()
    return builder.build()


def vit(
    image_size: int = 224,
    patch: int = 16,
    dim: int = 768,
    layers: int = 12,
    heads: int = 12,
    classes: int = 45,
    dtype: DType = DType.INT8,
) -> Graph:
    """ViT-Base/16 (~86M params, ~17.6 GFLOPs) for Remote Sensing.

    The paper's remote-sensing citation uses vision transformers for scene
    classification over drone imagery; 45 classes matches the standard
    NWPU-RESISC45 remote-sensing label set.
    """
    if image_size % patch:
        raise ValueError(f"image size {image_size} not divisible by patch {patch}")
    tokens = (image_size // patch) ** 2
    patch_dim = 3 * patch * patch
    builder = GraphBuilder(
        "vit", TensorSpec("image", (1, 3, image_size, image_size), dtype)
    )
    # Patchify: NCHW -> [tokens, patch_dim], then linear patch embedding.
    builder.reshape((tokens, patch_dim))
    builder.gemm(dim, name="patch_embed")
    builder.layer_norm()
    for _ in range(layers):
        builder.transformer_layer(tokens, dim, heads)
    builder.layer_norm()
    # Classification head on the pooled representation.
    builder.reduce(keepdim=False)  # [tokens, dim] -> [tokens]
    builder.reshape((1, tokens))
    builder.gemm(classes, name="cls_head")
    builder.softmax()
    return builder.build()
