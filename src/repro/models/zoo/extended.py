"""Extended zoo: the remaining task families the DSA targets (§4).

The paper sizes the architecture to cover "image classification, object
detection, semantic segmentation, linear/logistic regression, neural
machine translation, conversational AI, generative AI, data
pre-processing".  The core benchmarks exercise most of these; this module
adds the rest for library completeness and for the design ablations:

- :func:`bert_encoder` — encoder-only language understanding.
- :func:`unet` — semantic segmentation (encoder-decoder CNN).
- :func:`dlrm` — embedding-heavy recommendation (the memory-bound extreme).
"""

from __future__ import annotations

from typing import Tuple

from repro.models.builder import GraphBuilder
from repro.models.graph import Graph
from repro.models.ops import PoolKind
from repro.models.tensor import DType, TensorSpec


def bert_encoder(
    seq: int = 128,
    dim: int = 768,
    layers: int = 12,
    heads: int = 12,
    vocab: int = 30522,
    classes: int = 2,
    dtype: DType = DType.INT8,
) -> Graph:
    """BERT-Base-class encoder with a classification head (~110M params)."""
    builder = GraphBuilder("bert_encoder", TensorSpec("tokens", (1, seq), dtype))
    builder.embedding(vocab, dim)
    builder.reshape((seq, dim))
    builder.layer_norm()
    for _ in range(layers):
        builder.transformer_layer(seq, dim, heads)
    # Pooler over the [CLS] position, folded as a [seq, dim] x [dim, dim]
    # projection followed by the task head.
    builder.gemm(dim, name="pooler")
    builder.tanh()
    builder.reduce(keepdim=False)
    builder.reshape((1, seq))
    builder.gemm(classes, name="cls_head")
    builder.softmax()
    return builder.build()


def unet(
    image_size: int = 256,
    base_channels: int = 32,
    depth: int = 4,
    classes: int = 2,
    dtype: DType = DType.INT8,
) -> Graph:
    """U-Net-style encoder-decoder for semantic segmentation.

    Skip connections are represented by their concatenation-equivalent
    elementwise adds; upsampling by :meth:`resample` passes on the VPU.
    """
    if image_size % (2**depth):
        raise ValueError(
            f"image size {image_size} not divisible by 2^{depth}"
        )
    builder = GraphBuilder(
        "unet", TensorSpec("image", (1, 3, image_size, image_size), dtype)
    )
    channels = base_channels
    # Encoder: double conv + downsample per level.
    for _ in range(depth):
        builder.conv_bn_relu(channels, kernel=3)
        builder.conv_bn_relu(channels, kernel=3)
        builder.pool(PoolKind.MAX, kernel=2, stride=2)
        channels *= 2
    # Bottleneck.
    builder.conv_bn_relu(channels, kernel=3)
    builder.conv_bn_relu(channels, kernel=3)
    # Decoder: upsample + double conv + skip add per level.
    for _ in range(depth):
        channels //= 2
        _, c, h, w = builder.current.shape
        builder.resample((1, c, h * 2, w * 2))
        builder.conv_bn_relu(channels, kernel=3)
        builder.residual_add()  # skip connection from the encoder
        builder.conv_bn_relu(channels, kernel=3)
    builder.conv2d(classes, kernel=1, padding=0)
    builder.softmax()
    return builder.build()


def dlrm(
    dense_features: int = 13,
    sparse_features: int = 26,
    embedding_rows: int = 100_000,
    embedding_dim: int = 64,
    bottom_mlp: Tuple[int, ...] = (512, 256, 64),
    top_mlp: Tuple[int, ...] = (512, 256, 1),
    dtype: DType = DType.FP32,
) -> Graph:
    """DLRM-style recommendation model: the embedding-bound extreme.

    Compute is tiny next to the embedding-table gathers, making this the
    stress case for the DSA's DMA path (and a natural near-data workload).
    The per-request lookups are folded into one gather of
    ``sparse_features`` rows.
    """
    builder = GraphBuilder(
        "dlrm", TensorSpec("sparse_ids", (1, sparse_features), dtype)
    )
    builder.embedding(embedding_rows, embedding_dim)
    builder.reshape((sparse_features, embedding_dim))
    # Feature interaction: pairwise dot products folded as one GeMM.
    builder.gemm(sparse_features, name="interaction")
    builder.reshape((1, sparse_features * sparse_features))
    # Bottom-MLP-equivalent work on the dense features joins here; the
    # chain IR folds it into the top MLP input projection.
    width = sparse_features * sparse_features
    for index, hidden in enumerate(top_mlp):
        builder.gemm(hidden, name=f"top_mlp_{index}")
        if index + 1 < len(top_mlp):
            builder.relu()
    builder.sigmoid()
    # Dense bottom MLP, modeled after the top stack (work-equivalent).
    builder.reshape((1, top_mlp[-1]))
    for index, hidden in enumerate(bottom_mlp):
        builder.gemm(hidden, name=f"bottom_mlp_{index}")
        builder.relu()
    return builder.build()
