"""Fluent builder for model graphs.

Keeps zoo definitions short: each method appends an op whose input is the
current tensor, then advances the current tensor to that op's output.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Tuple

from repro.errors import ShapeError
from repro.models.graph import Graph
from repro.models.ops import (
    Activation,
    ActivationKind,
    Cast,
    Conv2D,
    Elementwise,
    ElementwiseKind,
    Embedding,
    GeMM,
    Layout,
    LayoutKind,
    Normalization,
    NormalizationKind,
    Op,
    Pool,
    PoolKind,
    Reduce,
    Resample,
)
from repro.models.tensor import DType, TensorSpec


class GraphBuilder:
    """Accumulates a chain of ops from an initial input tensor."""

    def __init__(self, model_name: str, input_spec: TensorSpec) -> None:
        self.model_name = model_name
        self._current = input_spec
        self._ops: List[Op] = []
        self._counter = itertools.count()

    @property
    def current(self) -> TensorSpec:
        """The tensor that the next op will consume."""
        return self._current

    def _unique(self, stem: str) -> str:
        return f"{stem}_{next(self._counter)}"

    def _append(self, op: Op) -> "GraphBuilder":
        self._ops.append(op)
        self._current = op.infer_output()
        return self

    # --- MPU ops ------------------------------------------------------------
    def gemm(self, n: int, name: Optional[str] = None) -> "GraphBuilder":
        return self._append(GeMM(name or self._unique("gemm"), self._current, n=n))

    def linear(self, n: int, name: Optional[str] = None) -> "GraphBuilder":
        """Alias for :meth:`gemm` (fully connected layer)."""
        return self.gemm(n, name)

    def conv2d(
        self,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        name: Optional[str] = None,
    ) -> "GraphBuilder":
        return self._append(
            Conv2D(
                name or self._unique("conv"),
                self._current,
                out_channels=out_channels,
                kernel=kernel,
                stride=stride,
                padding=padding,
                groups=groups,
            )
        )

    # --- VPU ops --------------------------------------------------------------
    def activation(
        self, kind: ActivationKind, name: Optional[str] = None
    ) -> "GraphBuilder":
        return self._append(
            Activation(name or self._unique(kind.value), self._current, kind=kind)
        )

    def relu(self) -> "GraphBuilder":
        return self.activation(ActivationKind.RELU)

    def gelu(self) -> "GraphBuilder":
        return self.activation(ActivationKind.GELU)

    def softmax(self) -> "GraphBuilder":
        return self.activation(ActivationKind.SOFTMAX)

    def sigmoid(self) -> "GraphBuilder":
        return self.activation(ActivationKind.SIGMOID)

    def tanh(self) -> "GraphBuilder":
        return self.activation(ActivationKind.TANH)

    def elementwise(
        self, kind: ElementwiseKind = ElementwiseKind.ADD, name: Optional[str] = None
    ) -> "GraphBuilder":
        return self._append(
            Elementwise(name or self._unique(f"ew_{kind.value}"), self._current, kind=kind)
        )

    def residual_add(self) -> "GraphBuilder":
        """Skip-connection add (second operand shape == current shape)."""
        return self.elementwise(ElementwiseKind.ADD)

    def normalization(
        self,
        kind: NormalizationKind = NormalizationKind.LAYER_NORM,
        name: Optional[str] = None,
    ) -> "GraphBuilder":
        return self._append(
            Normalization(name or self._unique(kind.value), self._current, kind=kind)
        )

    def layer_norm(self) -> "GraphBuilder":
        return self.normalization(NormalizationKind.LAYER_NORM)

    def batch_norm(self) -> "GraphBuilder":
        return self.normalization(NormalizationKind.BATCH_NORM)

    def pool(
        self, kind: PoolKind = PoolKind.MAX, kernel: int = 2, stride: int = 2
    ) -> "GraphBuilder":
        return self._append(
            Pool(self._unique("pool"), self._current, kind=kind, kernel=kernel, stride=stride)
        )

    def reshape(self, shape: Tuple[int, ...]) -> "GraphBuilder":
        return self._append(
            Layout(
                self._unique("reshape"),
                self._current,
                kind=LayoutKind.RESHAPE,
                target_shape=shape,
            )
        )

    def transpose(self, shape: Tuple[int, ...]) -> "GraphBuilder":
        return self._append(
            Layout(
                self._unique("transpose"),
                self._current,
                kind=LayoutKind.TRANSPOSE,
                target_shape=shape,
            )
        )

    def resample(self, shape: Tuple[int, ...]) -> "GraphBuilder":
        return self._append(
            Resample(self._unique("resample"), self._current, target_shape=shape)
        )

    def cast(self, dtype: DType) -> "GraphBuilder":
        return self._append(Cast(self._unique("cast"), self._current, target_dtype=dtype))

    def reduce(self, keepdim: bool = False) -> "GraphBuilder":
        return self._append(Reduce(self._unique("reduce"), self._current, keepdim=keepdim))

    def embedding(self, vocab: int, dim: int) -> "GraphBuilder":
        return self._append(
            Embedding(self._unique("embed"), self._current, vocab=vocab, dim=dim)
        )

    # --- composite blocks -------------------------------------------------
    def conv_bn_relu(
        self,
        out_channels: int,
        kernel: int,
        stride: int = 1,
        padding: Optional[int] = None,
    ) -> "GraphBuilder":
        """Conv + batch-norm + ReLU, the basic CNN building block."""
        if padding is None:
            padding = kernel // 2
        self.conv2d(out_channels, kernel, stride=stride, padding=padding)
        self.batch_norm()
        return self.relu()

    def bottleneck(self, mid_channels: int, out_channels: int, stride: int = 1) -> "GraphBuilder":
        """ResNet bottleneck: 1x1 -> 3x3 -> 1x1 + residual add."""
        self.conv_bn_relu(mid_channels, kernel=1, stride=1, padding=0)
        self.conv_bn_relu(mid_channels, kernel=3, stride=stride, padding=1)
        self.conv2d(out_channels, kernel=1, stride=1, padding=0)
        self.batch_norm()
        self.residual_add()
        return self.relu()

    def attention_block(self, seq: int, dim: int, heads: int) -> "GraphBuilder":
        """Multi-head self-attention on a ``[seq, dim]`` tensor.

        Head-parallel score/context GeMMs are folded into equivalent-work
        single GeMMs, preserving total MACs and traffic.
        """
        if self._current.shape != (seq, dim):
            raise ShapeError(
                f"attention block expects input ({seq}, {dim}), "
                f"got {self._current.shape}"
            )
        if dim % heads:
            raise ShapeError(f"dim {dim} not divisible by heads {heads}")
        head_dim = dim // heads
        # Q/K/V projections: each [seq, dim] x [dim, dim].  The chain IR
        # carries one tensor, so K and V are modeled as equivalent-work GeMMs
        # in sequence (identical MACs and traffic to the branched graph).
        self.gemm(dim, name=self._unique("q_proj"))
        self.gemm(dim, name=self._unique("k_proj"))
        self.gemm(dim, name=self._unique("v_proj"))
        # Scores: per head [seq, head_dim] x [head_dim, seq]; folded into a
        # single [heads*seq, head_dim] x [head_dim, seq] GeMM.
        self.reshape((heads * seq, head_dim))
        self.gemm(seq, name=self._unique("scores"))
        self.softmax()
        # Context: [heads*seq, seq] x [seq, head_dim]
        self.gemm(head_dim, name=self._unique("context"))
        self.reshape((seq, dim))
        # Output projection
        self.gemm(dim, name=self._unique("proj"))
        self.residual_add()
        return self.layer_norm()

    def ffn_block(self, dim: int, hidden: int) -> "GraphBuilder":
        """Transformer feed-forward block with GELU."""
        self.gemm(hidden, name=self._unique("ffn_up"))
        self.gelu()
        self.gemm(dim, name=self._unique("ffn_down"))
        self.residual_add()
        return self.layer_norm()

    def transformer_layer(self, seq: int, dim: int, heads: int, ffn_mult: int = 4) -> "GraphBuilder":
        """One encoder layer: attention + FFN."""
        self.attention_block(seq, dim, heads)
        return self.ffn_block(dim, dim * ffn_mult)

    def build(self) -> Graph:
        """Finalize and validate the graph."""
        return Graph(self.model_name, self._ops)
