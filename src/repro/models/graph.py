"""Model graph: an ordered chain of operators with aggregate accounting.

The benchmarks in Table 1 are all feed-forward inference pipelines, so the
graph is a validated linear chain (each op consumes the previous op's
output).  Residual/branchy structures (ResNet blocks, attention) are modeled
by their constituent ops in execution order — what matters to the simulator
is the per-op work and tensor traffic, not the wiring of skip connections,
whose extra elementwise adds *are* represented explicitly.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from repro.errors import ShapeError
from repro.models.ops import Op
from repro.models.tensor import TensorSpec


@dataclass(frozen=True)
class GraphStats:
    """Aggregate work/footprint numbers for a model graph."""

    num_ops: int
    num_matrix_ops: int
    num_vector_ops: int
    total_macs: int
    total_flops: int
    total_vector_elements: int
    weight_bytes: int
    input_bytes: int
    output_bytes: int
    peak_activation_bytes: int

    @property
    def parameters(self) -> int:
        """Approximate parameter count assuming int8 storage."""
        return self.weight_bytes


class Graph:
    """A named, validated chain of operators."""

    def __init__(self, name: str, ops: Sequence[Op]) -> None:
        if not name:
            raise ShapeError("graph must have a non-empty name")
        if not ops:
            raise ShapeError(f"graph {name!r} must contain at least one op")
        self.name = name
        self._ops: List[Op] = list(ops)
        self._validate()

    def _validate(self) -> None:
        names = set()
        for op in self._ops:
            if op.name in names:
                raise ShapeError(
                    f"graph {self.name!r} has duplicate op name {op.name!r}"
                )
            names.add(op.name)
        for prev, nxt in zip(self._ops, self._ops[1:]):
            produced = prev.infer_output()
            consumed = nxt.input
            if produced.shape != consumed.shape:
                raise ShapeError(
                    f"graph {self.name!r}: op {nxt.name!r} consumes shape "
                    f"{consumed.shape} but {prev.name!r} produces {produced.shape}"
                )
            if produced.dtype != consumed.dtype:
                raise ShapeError(
                    f"graph {self.name!r}: dtype mismatch between "
                    f"{prev.name!r} ({produced.dtype.label}) and "
                    f"{nxt.name!r} ({consumed.dtype.label})"
                )

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Op]:
        return iter(self._ops)

    @property
    def ops(self) -> List[Op]:
        """The operators in execution order (copy)."""
        return list(self._ops)

    def fingerprint(self) -> str:
        """Stable content hash of the graph (name + ordered op fields).

        Ops are frozen dataclasses with deterministic ``repr``, so hashing
        their reprs identifies the compilation input exactly.  Used as the
        graph half of the cross-sweep compiled-program cache key; stable
        across processes (unlike ``hash``), so process-pool sweep workers
        agree on it.
        """
        cached = getattr(self, "_fingerprint", None)
        if cached is None:
            digest = hashlib.sha1(self.name.encode())
            for op in self._ops:
                digest.update(repr(op).encode())
            cached = digest.hexdigest()
            self._fingerprint = cached
        return cached

    @property
    def input(self) -> TensorSpec:
        """The graph's external input tensor."""
        return self._ops[0].input

    @property
    def output(self) -> TensorSpec:
        """The graph's final output tensor."""
        return self._ops[-1].infer_output()

    def stats(self) -> GraphStats:
        """Compute aggregate statistics over the whole graph."""
        total_macs = 0
        total_flops = 0
        total_vec = 0
        weight_bytes = 0
        peak_act = self.input.size_bytes
        n_matrix = 0
        for op in self._ops:
            total_macs += op.macs()
            total_flops += op.flops()
            total_vec += op.vector_elements()
            weight_bytes += op.weight_bytes()
            out = op.infer_output()
            live = op.input.size_bytes + out.size_bytes
            peak_act = max(peak_act, live)
            if op.is_matrix_op:
                n_matrix += 1
        return GraphStats(
            num_ops=len(self._ops),
            num_matrix_ops=n_matrix,
            num_vector_ops=len(self._ops) - n_matrix,
            total_macs=total_macs,
            total_flops=total_flops,
            total_vector_elements=total_vec,
            weight_bytes=weight_bytes,
            input_bytes=self.input.size_bytes,
            output_bytes=self.output.size_bytes,
            peak_activation_bytes=peak_act,
        )

    def with_batch(self, batch: int) -> "Graph":
        """Return a copy of this graph with the leading dim scaled by ``batch``.

        Used by the batch-size sensitivity study (Fig. 14).  Ops whose input
        rank carries an explicit batch dimension get it multiplied; weight
        footprints are unchanged, which is precisely the weight-reuse effect
        the paper exploits.
        """
        if batch <= 0:
            raise ShapeError(f"batch must be positive, got {batch}")
        if batch == 1:
            return self
        import dataclasses

        new_ops: List[Op] = []
        for op in self._ops:
            old_shape = op.input.shape
            new_shape = (old_shape[0] * batch,) + old_shape[1:]
            new_input = op.input.with_shape(new_shape)
            changes = {"input": new_input}
            if hasattr(op, "target_shape"):
                old_target = op.target_shape  # type: ignore[attr-defined]
                changes["target_shape"] = (old_target[0] * batch,) + old_target[1:]
            new_ops.append(dataclasses.replace(op, **changes))
        return Graph(f"{self.name}@b{batch}", new_ops)
