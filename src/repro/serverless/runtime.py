"""The serverless platform facade: deployment + storage + scheduling +
execution wired together.

This is the "whole system" entry point a downstream user drives: deploy an
application (with DSA hints), upload request data (placed next to a
DSCS-Drive when acceleratable), and invoke — the placer decides between
in-storage acceleration and conventional fall-back per request, telemetry
records outcomes, and the execution models produce the latency/energy
result for whichever path was taken.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.core.breakdown import InvocationResult
from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.errors import DeploymentError
from repro.platforms.base import ComputePlatform
from repro.serverless.application import Application
from repro.serverless.deployment import DeploymentManifest
from repro.serverless.scheduler import FunctionPlacer
from repro.serverless.telemetry import TelemetryRegistry
from repro.storage.drive import DSCSDrive
from repro.storage.object_store import ObjectStore


@dataclass
class ServerlessPlatform:
    """An operating DSCS-Serverless deployment."""

    store: ObjectStore
    accelerated_platform: ComputePlatform  # runs in-storage placements
    fallback_platform: ComputePlatform  # conventional execution path
    telemetry: TelemetryRegistry = field(default_factory=TelemetryRegistry)
    _apps: Dict[str, Application] = field(default_factory=dict)
    _manifests: Dict[str, DeploymentManifest] = field(default_factory=dict)
    _request_ids: itertools.count = field(default_factory=itertools.count)

    def __post_init__(self) -> None:
        self._placer = FunctionPlacer(store=self.store, telemetry=self.telemetry)

    # --- deployment -------------------------------------------------------
    def deploy(
        self, app: Application, manifest: Optional[DeploymentManifest] = None
    ) -> DeploymentManifest:
        """Register an application (enlists it in the function registry)."""
        if app.name in self._apps:
            raise DeploymentError(f"application {app.name!r} already deployed")
        manifest = manifest or DeploymentManifest.for_application(app)
        self._apps[app.name] = app
        self._manifests[app.name] = manifest
        return manifest

    def deployed_applications(self):
        return list(self._apps)

    # --- data path --------------------------------------------------------
    def upload_request(self, app_name: str, payload_bytes: int) -> str:
        """Store a request payload; acceleratable apps get a DSCS replica."""
        app = self._require_app(app_name)
        acceleratable = bool(app.accelerated_functions)
        key = f"{app_name}/request-{next(self._request_ids)}"
        self.store.put(key, payload_bytes, acceleratable=acceleratable)
        return key

    # --- invocation -------------------------------------------------------
    def invoke(
        self, app_name: str, key: str, rng: np.random.Generator
    ) -> InvocationResult:
        """One end-to-end request: place, execute, record telemetry."""
        app = self._require_app(app_name)
        manifest = self._manifests[app_name]
        decision = self._placer.place_chain(
            app.accelerated_functions or [app.functions[0]], key, manifest
        )

        if decision.accelerated and isinstance(decision.drive, DSCSDrive):
            drive = decision.drive
            fabric = StorageFabric(dscs_drive=drive)
            model = ServerlessExecutionModel(
                platform=self.accelerated_platform, fabric=fabric
            )
            node = f"dscs-drive-{drive.drive_id}"
            drive.mark_busy()
            self.telemetry.mark_busy(node, True)
            try:
                result = model.invoke(app, rng)
            finally:
                drive.mark_idle()
                self.telemetry.mark_busy(node, False)
            self.telemetry.inc_counter("accelerated_invocations", node)
        else:
            model = ServerlessExecutionModel(platform=self.fallback_platform)
            result = model.invoke(app, rng)
            self.telemetry.inc_counter("fallback_invocations", "compute-tier")

        self.telemetry.inc_counter("invocations", app_name)
        return result

    def _require_app(self, app_name: str) -> Application:
        try:
            return self._apps[app_name]
        except KeyError:
            raise DeploymentError(f"application {app_name!r} not deployed") from None
