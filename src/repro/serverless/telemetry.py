"""Prometheus-style telemetry registry (paper §5.1, §5.2).

The scheduler "relies on Prometheus telemetry to decide whether to employ
in-storage acceleration or execute the function in a conventional manner
depending on if the node is busy", and fail-over uses the same signals for
node-health monitoring.  This registry holds counters and gauges keyed by
``(metric, node)`` and answers those two questions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from repro.errors import ConfigurationError

_MetricKey = Tuple[str, str]


@dataclass
class TelemetryRegistry:
    """In-memory metric store scraped by the scheduler."""

    _counters: Dict[_MetricKey, float] = field(default_factory=dict)
    _gauges: Dict[_MetricKey, float] = field(default_factory=dict)

    def inc_counter(self, metric: str, node: str, amount: float = 1.0) -> None:
        """Increment a monotonically increasing counter."""
        if amount < 0:
            raise ConfigurationError(f"counter {metric!r} cannot decrease")
        key = (metric, node)
        self._counters[key] = self._counters.get(key, 0.0) + amount

    def set_gauge(self, metric: str, node: str, value: float) -> None:
        """Set an instantaneous gauge value."""
        self._gauges[(metric, node)] = value

    def counter(self, metric: str, node: str) -> float:
        return self._counters.get((metric, node), 0.0)

    def gauge(self, metric: str, node: str, default: float = 0.0) -> float:
        return self._gauges.get((metric, node), default)

    # --- scheduler-facing helpers ----------------------------------------
    def mark_busy(self, node: str, busy: bool) -> None:
        """Record a node's compute-busy status (run-to-completion model)."""
        self.set_gauge("compute_busy", node, 1.0 if busy else 0.0)

    def is_busy(self, node: str) -> bool:
        return self.gauge("compute_busy", node) >= 1.0

    def mark_healthy(self, node: str, healthy: bool) -> None:
        """Record node health for fail-over decisions."""
        self.set_gauge("healthy", node, 1.0 if healthy else 0.0)

    def is_healthy(self, node: str) -> bool:
        return self.gauge("healthy", node, default=1.0) >= 1.0

    def scrape(self) -> Dict[str, Dict[str, float]]:
        """Snapshot all metrics grouped by metric name."""
        merged: Dict[str, Dict[str, float]] = {}
        for (metric, node), value in {**self._counters, **self._gauges}.items():
            merged.setdefault(metric, {})[node] = value
        return merged
