"""Applications: DAGs of serverless functions with explicit payload sizes.

Developers "define their applications as a DAG of decoupled functions"
(paper §5.1).  The Table 1 pipelines are linear three-stage chains; this
class supports arbitrary-length chains (Fig. 16 extends apps with extra
accelerated inference stages) and records the payload flowing on each
edge, since data movement is the paper's central quantity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import DeploymentError
from repro.serverless.function import FunctionRole, ServerlessFunction


@dataclass(frozen=True)
class Application:
    """A chained serverless application."""

    name: str
    functions: tuple
    input_bytes: int
    # edge_bytes[i] is the payload from functions[i] to functions[i+1];
    # the last entry is the application's final output.
    edge_bytes: tuple

    def __post_init__(self) -> None:
        if not self.name:
            raise DeploymentError("application must have a non-empty name")
        if len(self.functions) < 1:
            raise DeploymentError(f"application {self.name!r} has no functions")
        if len(self.edge_bytes) != len(self.functions):
            raise DeploymentError(
                f"application {self.name!r}: need one edge size per function "
                f"({len(self.functions)} functions, {len(self.edge_bytes)} edges)"
            )
        if self.input_bytes <= 0:
            raise DeploymentError(f"application {self.name!r}: non-positive input")
        for size in self.edge_bytes:
            if size <= 0:
                raise DeploymentError(
                    f"application {self.name!r}: non-positive edge payload"
                )

    @staticmethod
    def chain(
        name: str,
        functions: Sequence[ServerlessFunction],
        input_bytes: int,
        edge_bytes: Sequence[int],
    ) -> "Application":
        """Build a chain application (convenience constructor)."""
        return Application(
            name=name,
            functions=tuple(functions),
            input_bytes=input_bytes,
            edge_bytes=tuple(edge_bytes),
        )

    def function_input_bytes(self, index: int) -> int:
        """Payload read from storage by the ``index``-th function."""
        if index == 0:
            return self.input_bytes
        return self.edge_bytes[index - 1]

    def function_output_bytes(self, index: int) -> int:
        """Payload written to storage by the ``index``-th function."""
        return self.edge_bytes[index]

    @property
    def accelerated_functions(self) -> List[ServerlessFunction]:
        return [f for f in self.functions if f.acceleratable]

    @property
    def inference_function(self) -> ServerlessFunction:
        """The primary ML inference stage."""
        for function in self.functions:
            if function.role is FunctionRole.INFERENCE:
                return function
        raise DeploymentError(f"application {self.name!r} has no inference stage")

    def with_extra_inference_stages(self, copies: int) -> "Application":
        """Duplicate the inference stage ``copies`` times (Fig. 16).

        The paper's sensitivity study appends one to three duplicates of
        the original function 2 to emulate deeper pipelines.
        """
        if copies < 0:
            raise DeploymentError(f"negative stage copies: {copies}")
        if copies == 0:
            return self
        functions = list(self.functions)
        edges = list(self.edge_bytes)
        inference = self.inference_function
        base_index = functions.index(inference)
        # Each duplicate re-processes the same tensor payload the original
        # inference stage consumes, so the duplicated edges carry the
        # inference *input* size; the original small result edge stays on
        # the last duplicate, feeding the notification stage unchanged.
        tensor_bytes = self.function_input_bytes(base_index)
        for copy_index in range(copies):
            clone = ServerlessFunction(
                name=f"{inference.name}_dup{copy_index + 1}",
                role=inference.role,
                graph=inference.graph,
                cpu_work_seconds=inference.cpu_work_seconds,
                output_bytes=inference.output_bytes,
                acceleratable=inference.acceleratable,
            )
            functions.insert(base_index + 1 + copy_index, clone)
            edges.insert(base_index + copy_index, tensor_bytes)
        return Application(
            name=f"{self.name}+{copies}f",
            functions=tuple(functions),
            input_bytes=self.input_bytes,
            edge_bytes=tuple(edges),
        )
