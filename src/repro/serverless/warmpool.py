"""Warm-container pool: keep-alive tracking and cold-start accounting.

Functions stay resident for a keep-alive window after each invocation
(paper §5.3: "the function is kept warm ... for a certain period of
time"); DSCS additionally parks evicted images on flash for P2P reload.
The pool tracks per-function residency over an invocation timeline and
reports the cold-start fraction — the quantity that decides how much of
Fig. 17's cold penalty a real arrival pattern actually pays.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.serverless.coldstart import ColdStartModel


@dataclass(frozen=True)
class WarmPoolStats:
    """Outcome of replaying an invocation timeline against the pool."""

    total_invocations: int
    cold_invocations: int
    flash_reloads: int  # cold, but served from the drive's parked image

    @property
    def cold_fraction(self) -> float:
        if self.total_invocations == 0:
            return 0.0
        return self.cold_invocations / self.total_invocations


@dataclass
class WarmPool:
    """Tracks container residency per function with bounded capacity.

    ``capacity`` bounds how many containers stay resident; eviction is
    least-recently-used.  On a DSCS node, evicted images are parked on
    flash (paper §5.3), so a later cold start for a previously seen
    function is a fast P2P reload instead of a registry pull.
    """

    coldstart: ColdStartModel = field(default_factory=ColdStartModel)
    capacity: int = 16
    flash_parking: bool = True

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"non-positive capacity: {self.capacity}")
        self._last_invocation: Dict[str, float] = {}
        self._parked_on_flash: set = set()

    @property
    def resident_functions(self) -> List[str]:
        return list(self._last_invocation)

    def _evict_if_needed(self, now: float) -> None:
        # Age out containers past the keep-alive window first.
        expired = [
            name
            for name, last in self._last_invocation.items()
            if not self.coldstart.is_warm(now - last)
        ]
        for name in expired:
            self._evict(name)
        while len(self._last_invocation) >= self.capacity:
            lru = min(self._last_invocation, key=self._last_invocation.get)
            self._evict(lru)

    def _evict(self, name: str) -> None:
        del self._last_invocation[name]
        if self.flash_parking:
            self._parked_on_flash.add(name)

    def invoke(self, function_name: str, now: float) -> Tuple[bool, bool]:
        """Record an invocation; returns ``(cold, flash_reload)``."""
        last = self._last_invocation.get(function_name)
        warm = last is not None and self.coldstart.is_warm(now - last)
        flash_reload = False
        if not warm:
            self._evict_if_needed(now)
            flash_reload = (
                self.flash_parking and function_name in self._parked_on_flash
            )
        self._last_invocation[function_name] = now
        self._parked_on_flash.discard(function_name)
        return (not warm), flash_reload

    def replay(
        self, timeline: Sequence[Tuple[float, str]]
    ) -> WarmPoolStats:
        """Replay ``(time, function)`` events and tally cold starts."""
        cold = 0
        reloads = 0
        previous_time: Optional[float] = None
        for now, function_name in timeline:
            if previous_time is not None and now < previous_time:
                raise ConfigurationError("timeline must be time-ordered")
            previous_time = now
            was_cold, flash_reload = self.invoke(function_name, now)
            cold += int(was_cold)
            reloads += int(flash_reload)
        return WarmPoolStats(
            total_invocations=len(timeline),
            cold_invocations=cold,
            flash_reloads=reloads,
        )
