"""The OpenCL device driver for the in-storage DSA (paper §5.1).

The driver maps storage space and the DSA's configuration registers into
the host's address space, orchestrates the P2P transfers that bypass the
host software stack, and handles the completion interrupt.  Its cost is a
handful of system calls plus register programming — the "single system
call that initiates a P2P data transfer" of §3.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import US


@dataclass(frozen=True)
class OpenCLDriver:
    """Per-invocation driver cost model."""

    syscall_seconds: float = 10 * US
    register_setup_seconds: float = 1800 * US  # map + program DSA config regs
    interrupt_seconds: float = 700 * US  # completion IRQ + handler + wakeup
    security_check_seconds: float = 300 * US  # OS access-control checks

    def __post_init__(self) -> None:
        for name in (
            "syscall_seconds",
            "register_setup_seconds",
            "interrupt_seconds",
            "security_check_seconds",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"driver: negative {name}")

    def dispatch_seconds(self) -> float:
        """Host cost to launch one function on the DSA."""
        return (
            self.syscall_seconds
            + self.security_check_seconds
            + self.register_setup_seconds
        )

    def completion_seconds(self) -> float:
        """Host cost to retire one function (interrupt + result syscall)."""
        return self.interrupt_seconds + self.syscall_seconds

    def round_trip_seconds(self) -> float:
        """Total host driver involvement per invocation."""
        return self.dispatch_seconds() + self.completion_seconds()
