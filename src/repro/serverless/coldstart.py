"""Cold-start model (paper §5.3, Fig. 17).

A cold start pulls the function's container image (which includes the
model weights) from a remote registry, unpacks it, passes a health check,
and — for DSA functions — loads the weights into the accelerator's memory.
DSCS-Serverless adds one optimisation: an evicted function image can be
parked on the drive's flash and reloaded over the P2P link instead of
re-fetched over the network.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.storage.drive import DSCSDrive
from repro.units import MB_DEC, MS


@dataclass(frozen=True)
class ColdStartModel:
    """Latency model for container cold starts."""

    registry_bandwidth_bytes_per_s: float = 80 * MB_DEC
    registry_rtt_seconds: float = 30 * MS
    unpack_seconds_per_byte: float = 1.0 / (400 * 1000 * MB_DEC)
    health_check_seconds: float = 150 * MS
    warm_window_seconds: float = 600.0  # keep-alive period after an invoke

    def __post_init__(self) -> None:
        if self.registry_bandwidth_bytes_per_s <= 0:
            raise ConfigurationError("non-positive registry bandwidth")
        if min(
            self.registry_rtt_seconds,
            self.unpack_seconds_per_byte,
            self.health_check_seconds,
            self.warm_window_seconds,
        ) < 0:
            raise ConfigurationError("negative cold-start parameter")

    def pull_seconds(self, image_bytes: int) -> float:
        """Fetch the container image from the remote registry."""
        if image_bytes < 0:
            raise ConfigurationError(f"negative image size: {image_bytes}")
        return (
            self.registry_rtt_seconds
            + image_bytes / self.registry_bandwidth_bytes_per_s
        )

    def unpack_seconds(self, image_bytes: int) -> float:
        """Unpack/extract the image on the node."""
        return image_bytes * self.unpack_seconds_per_byte

    def cold_start_seconds(self, image_bytes: int) -> float:
        """Full network cold start: pull + unpack + health check."""
        return (
            self.pull_seconds(image_bytes)
            + self.unpack_seconds(image_bytes)
            + self.health_check_seconds
        )

    def p2p_reload_seconds(self, image_bytes: int, drive: DSCSDrive) -> float:
        """Reload a flash-parked image over the drive's P2P link (§5.3).

        Skips the registry pull entirely; the image streams from flash to
        the DSA's memory, then passes the health check.
        """
        return (
            drive.p2p_read_seconds(image_bytes)
            + self.unpack_seconds(image_bytes)
            + self.health_check_seconds
        )

    def is_warm(self, seconds_since_last_invoke: float) -> bool:
        """Whether a container invoked this long ago is still resident."""
        if seconds_since_last_invoke < 0:
            raise ConfigurationError(
                f"negative idle time: {seconds_since_last_invoke}"
            )
        return seconds_since_last_invoke <= self.warm_window_seconds
