"""Serverless system stack (paper §2.1, §5).

Functions, DAG applications, deployment metadata with DSA-acceleration
hints, the OpenCL-style device driver, cold-start modeling, Prometheus-like
telemetry, and the placement/fail-over logic that decides whether an
invocation runs in-storage or falls back to a conventional compute node.
"""

from repro.serverless.application import Application
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.deployment import DeploymentManifest, FunctionConfig
from repro.serverless.driver import OpenCLDriver
from repro.serverless.function import FunctionRole, ServerlessFunction
from repro.serverless.scheduler import FunctionPlacer, PlacementDecision
from repro.serverless.telemetry import TelemetryRegistry


def __getattr__(name):
    # ServerlessPlatform pulls in the execution models (repro.core), which
    # themselves import this package — resolve it lazily to keep the
    # import graph acyclic.
    if name == "ServerlessPlatform":
        from repro.serverless.runtime import ServerlessPlatform

        return ServerlessPlatform
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Application",
    "ColdStartModel",
    "DeploymentManifest",
    "FunctionConfig",
    "FunctionPlacer",
    "FunctionRole",
    "OpenCLDriver",
    "PlacementDecision",
    "ServerlessFunction",
    "ServerlessPlatform",
    "TelemetryRegistry",
]
