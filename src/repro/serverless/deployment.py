"""Deployment metadata: the YAML-style function configuration (paper §5.1).

DSCS-Serverless "extends this YAML file to enable developers to mark
in-storage DSA acceleratable functions".  The manifest also captures the
conventional knobs (timeout, trigger, memory) and the container image the
function ships with — including, for accelerated functions, the OpenCL
runtime and the compiler-generated DSA executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DeploymentError
from repro.serverless.application import Application
from repro.units import MB


@dataclass(frozen=True)
class FunctionConfig:
    """Per-function deployment configuration (one YAML stanza)."""

    function_name: str
    timeout_seconds: float = 30.0
    memory_mb: int = 1024
    trigger: str = "http"
    accelerator: Optional[str] = None  # e.g. "dsa" — the paper's extension
    max_instances: int = 200
    container_image_bytes: int = 256 * MB

    def __post_init__(self) -> None:
        if not self.function_name:
            raise DeploymentError("config must name its function")
        if self.timeout_seconds <= 0:
            raise DeploymentError(
                f"{self.function_name}: non-positive timeout"
            )
        if self.memory_mb <= 0 or self.max_instances <= 0:
            raise DeploymentError(
                f"{self.function_name}: non-positive memory/instances"
            )
        if self.container_image_bytes <= 0:
            raise DeploymentError(
                f"{self.function_name}: non-positive container image"
            )

    @property
    def wants_dsa(self) -> bool:
        return self.accelerator == "dsa"

    def to_dict(self) -> Dict[str, object]:
        """Serialise to the YAML-equivalent mapping."""
        payload: Dict[str, object] = {
            "function": self.function_name,
            "timeout": self.timeout_seconds,
            "memory_mb": self.memory_mb,
            "trigger": self.trigger,
            "max_instances": self.max_instances,
            "image_bytes": self.container_image_bytes,
        }
        if self.accelerator is not None:
            payload["accelerator"] = self.accelerator
        return payload

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "FunctionConfig":
        """Parse the YAML-equivalent mapping."""
        try:
            return FunctionConfig(
                function_name=str(payload["function"]),
                timeout_seconds=float(payload.get("timeout", 30.0)),
                memory_mb=int(payload.get("memory_mb", 1024)),
                trigger=str(payload.get("trigger", "http")),
                accelerator=(
                    str(payload["accelerator"]) if "accelerator" in payload else None
                ),
                max_instances=int(payload.get("max_instances", 200)),
                container_image_bytes=int(payload.get("image_bytes", 256 * MB)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise DeploymentError(f"malformed function config: {exc}") from exc


@dataclass
class DeploymentManifest:
    """All function configs for one application deployment."""

    application_name: str
    configs: List[FunctionConfig] = field(default_factory=list)

    def config_for(self, function_name: str) -> FunctionConfig:
        for config in self.configs:
            if config.function_name == function_name:
                return config
        raise DeploymentError(
            f"no config for function {function_name!r} in "
            f"{self.application_name!r}"
        )

    @staticmethod
    def for_application(
        app: Application, accelerate: bool = True
    ) -> "DeploymentManifest":
        """Generate the default manifest: mark DSA-amenable functions.

        The developer (not the system) partitions the application into
        acceleratable and non-acceleratable functions (paper §5.1); here
        the function's ``acceleratable`` flag stands in for that decision.
        """
        configs = []
        for function in app.functions:
            weights = function.weight_bytes
            configs.append(
                FunctionConfig(
                    function_name=function.name,
                    accelerator="dsa" if (accelerate and function.acceleratable) else None,
                    container_image_bytes=max(64 * MB, weights + 64 * MB),
                )
            )
        return DeploymentManifest(application_name=app.name, configs=configs)
