"""Function placement: in-storage acceleration vs conventional fall-back.

Implements the paper's placement and fail-over rules (§5.2, §5.3):

- an acceleratable function runs on the DSCS-Drive that holds its data,
  if that node is healthy and its DSA is idle;
- otherwise it falls back to conventional execution on a compute node
  (DSCS-Drives still serve standard storage APIs);
- chained functions map to the same drive when the same DSA can serve
  them, else they fall back to CPU;
- data spanning multiple drives forces CPU fall-back (or fan-out, which
  the object store flags).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import SchedulingError
from repro.serverless.deployment import DeploymentManifest
from repro.serverless.function import ServerlessFunction
from repro.serverless.telemetry import TelemetryRegistry
from repro.storage.drive import DSCSDrive
from repro.storage.object_store import ObjectStore


class PlacementTarget(enum.Enum):
    """Where an invocation lands."""

    IN_STORAGE_DSA = "in_storage_dsa"
    COMPUTE_NODE = "compute_node"


@dataclass(frozen=True)
class PlacementDecision:
    """Outcome of placing one function invocation."""

    target: PlacementTarget
    drive: Optional[DSCSDrive] = None
    reason: str = ""

    @property
    def accelerated(self) -> bool:
        return self.target is PlacementTarget.IN_STORAGE_DSA


@dataclass
class FunctionPlacer:
    """Kubernetes-scheduler extension exposing DSA-capable storage nodes."""

    store: ObjectStore
    telemetry: TelemetryRegistry = field(default_factory=TelemetryRegistry)

    def place(
        self,
        function: ServerlessFunction,
        input_key: str,
        manifest: Optional[DeploymentManifest] = None,
    ) -> PlacementDecision:
        """Decide where one invocation of ``function`` executes."""
        wants_dsa = function.acceleratable
        if manifest is not None:
            config = manifest.config_for(function.name)
            wants_dsa = wants_dsa and config.wants_dsa
        if not wants_dsa:
            return PlacementDecision(
                target=PlacementTarget.COMPUTE_NODE,
                reason="function not marked for DSA acceleration",
            )

        meta = self.store.get_meta(input_key)
        if not meta.single_drive:
            # Exceptional multi-chunk case (paper §5.2): revert to CPU.
            return PlacementDecision(
                target=PlacementTarget.COMPUTE_NODE,
                reason=f"data spans {meta.num_chunks} chunks",
            )

        replica = meta.accelerated_replica()
        if replica is None:
            return PlacementDecision(
                target=PlacementTarget.COMPUTE_NODE,
                reason="no replica on a DSCS-Drive",
            )

        node_label = f"storage-node-{replica.node.node_id}"
        if not self.telemetry.is_healthy(node_label):
            # Fail-over (paper §5.3): conventional execution path.
            return PlacementDecision(
                target=PlacementTarget.COMPUTE_NODE,
                reason=f"{node_label} unhealthy; failing over",
            )

        drive = replica.drive
        if not isinstance(drive, DSCSDrive):  # pragma: no cover - defensive
            raise SchedulingError("accelerated replica on non-DSCS drive")
        if drive.busy or self.telemetry.is_busy(node_label):
            return PlacementDecision(
                target=PlacementTarget.COMPUTE_NODE,
                reason=f"{node_label} DSA busy; conventional execution",
            )

        return PlacementDecision(
            target=PlacementTarget.IN_STORAGE_DSA,
            drive=drive,
            reason=f"data and idle DSA co-located on {node_label}",
        )

    def place_chain(
        self,
        functions,
        input_key: str,
        manifest: Optional[DeploymentManifest] = None,
    ) -> PlacementDecision:
        """Place a chain of functions (paper §5.3, function chaining).

        Chained functions map to the same DSCS-Drive only when *all* of
        them are acceleratable by its DSA; otherwise the chain falls back
        to conventional execution.
        """
        if not functions:
            raise SchedulingError("cannot place an empty chain")
        for function in functions:
            if not function.acceleratable:
                return PlacementDecision(
                    target=PlacementTarget.COMPUTE_NODE,
                    reason=f"chain member {function.name!r} not acceleratable",
                )
        return self.place(functions[0], input_key, manifest)
