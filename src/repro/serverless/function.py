"""Serverless functions: stateless units chained into applications.

Each Table 1 application is three functions (paper Fig. 2): data
pre-processing, ML/DNN inference, and a notification service.  The first
two carry model graphs and are candidates for DSA acceleration; the
notification function is plain CPU business logic and always runs on a
compute node (paper §6.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.errors import DeploymentError
from repro.models.graph import Graph
from repro.units import MS


class FunctionRole(enum.Enum):
    """Position of a function in the canonical three-stage pipeline."""

    PREPROCESS = "preprocess"
    INFERENCE = "inference"
    NOTIFICATION = "notification"


@dataclass(frozen=True)
class ServerlessFunction:
    """One stateless serverless function."""

    name: str
    role: FunctionRole
    graph: Optional[Graph] = None
    # For functions without a model graph (notification), fixed CPU work.
    cpu_work_seconds: float = 1.0 * MS
    output_bytes: int = 1024
    acceleratable: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise DeploymentError("function must have a non-empty name")
        if self.acceleratable and self.graph is None:
            raise DeploymentError(
                f"function {self.name!r} marked acceleratable but has no graph"
            )
        if self.cpu_work_seconds < 0:
            raise DeploymentError(f"function {self.name!r}: negative CPU work")
        if self.output_bytes < 0:
            raise DeploymentError(f"function {self.name!r}: negative output size")

    @property
    def input_bytes(self) -> int:
        """Bytes this function reads from storage (graph input or small msg)."""
        if self.graph is not None:
            return self.graph.input.size_bytes
        return 1024

    @property
    def weight_bytes(self) -> int:
        """Model parameters shipped in the container image."""
        if self.graph is None:
            return 0
        return self.graph.stats().weight_bytes
