"""Latency and energy decompositions (paper Fig. 4, Fig. 10, Fig. 11).

Every invocation's end-to-end time decomposes into named components; the
runtime-breakdown and energy figures are direct aggregations of these.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError


class Component(enum.Enum):
    """End-to-end latency components."""

    SYSTEM_STACK = "system_stack"  # OpenFaaS/Kubernetes launch + orchestration
    REMOTE_READ = "remote_read"  # RPC + network + storage I/O (read)
    REMOTE_WRITE = "remote_write"  # RPC + network + storage I/O (write)
    LOCAL_READ = "local_read"  # near-storage host I/O (read)
    LOCAL_WRITE = "local_write"  # near-storage host I/O (write)
    P2P_READ = "p2p_read"  # flash -> DSA staging DRAM
    P2P_WRITE = "p2p_write"  # DSA staging DRAM -> flash
    DEVICE_COPY = "device_copy"  # host <-> discrete-accelerator PCIe copies
    DRIVER = "driver"  # device driver / runtime dispatch
    COMPUTE = "compute"  # model execution on the evaluated platform
    CPU_COMPUTE = "cpu_compute"  # plain-CPU function work (notification)
    COLD_START = "cold_start"  # container pull/unpack/health/weight load


# Communication-type components (the paper's "remote read/write parts").
COMMUNICATION_COMPONENTS = frozenset(
    {
        Component.REMOTE_READ,
        Component.REMOTE_WRITE,
        Component.LOCAL_READ,
        Component.LOCAL_WRITE,
        Component.P2P_READ,
        Component.P2P_WRITE,
        Component.DEVICE_COPY,
    }
)


@dataclass
class LatencyBreakdown:
    """Seconds spent per component for one invocation."""

    seconds: Dict[Component, float] = field(default_factory=dict)

    def add(self, component: Component, value: float) -> None:
        if value < 0:
            raise ConfigurationError(
                f"negative latency for {component.value}: {value}"
            )
        self.seconds[component] = self.seconds.get(component, 0.0) + value

    def get(self, component: Component) -> float:
        return self.seconds.get(component, 0.0)

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    @property
    def communication(self) -> float:
        """Total data-movement time (network + I/O + copies)."""
        return sum(
            value
            for component, value in self.seconds.items()
            if component in COMMUNICATION_COMPONENTS
        )

    @property
    def compute(self) -> float:
        return self.get(Component.COMPUTE) + self.get(Component.CPU_COMPUTE)

    def fractions(self) -> Dict[Component, float]:
        """Per-component share of the total."""
        total = self.total
        if total <= 0:
            return {component: 0.0 for component in self.seconds}
        return {c: v / total for c, v in self.seconds.items()}

    def merged(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Return a new breakdown summing both."""
        result = LatencyBreakdown(dict(self.seconds))
        for component, value in other.seconds.items():
            result.add(component, value)
        return result


@dataclass
class EnergyBreakdown:
    """Joules spent per subsystem for one invocation."""

    compute_j: float = 0.0  # evaluated platform executing models
    host_cpu_j: float = 0.0  # system stack, driver, serialization, f3
    pcie_j: float = 0.0  # host I/O + P2P + device copies
    storage_j: float = 0.0  # drive active energy during I/O

    def __post_init__(self) -> None:
        for name in ("compute_j", "host_cpu_j", "pcie_j", "storage_j"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"negative energy: {name}")

    @property
    def total_j(self) -> float:
        return self.compute_j + self.host_cpu_j + self.pcie_j + self.storage_j


@dataclass
class InvocationResult:
    """Everything measured for one end-to-end application invocation."""

    application: str
    platform: str
    latency: LatencyBreakdown
    energy: EnergyBreakdown
    batch: int = 1
    cold: bool = False

    @property
    def latency_seconds(self) -> float:
        return self.latency.total

    @property
    def energy_joules(self) -> float:
        return self.energy.total_j
