"""End-to-end execution models: traditional, near-storage, and DSCS.

One class routes each function of an application along the data path its
platform implies (paper §2.1 vs §3.1):

- **Traditional** (CPU/GPU/FPGA in a compute node): every function reads
  its input from remote storage over the RPC stack and writes its output
  back; discrete accelerators additionally pay driver dispatch and
  host<->device PCIe copies.
- **Near-storage** (NS-ARM / NS-Mobile-GPU / NS-FPGA): the model functions
  run on the storage node, so reads/writes become local host I/O; the
  notification function still runs on a remote compute node.
- **DSCS**: model functions execute on the in-storage DSA; data moves over
  the flash->DRAM P2P link initiated by a single driver syscall, and the
  completion interrupt hands results back (paper §3.1 steps 1-3).

Latency is sampled per invocation (remote paths have lognormal tails);
:meth:`ServerlessExecutionModel.sample_latencies` vectorises the sampling
for the paper's 10,000-request p95 methodology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.breakdown import (
    Component,
    EnergyBreakdown,
    InvocationResult,
    LatencyBreakdown,
)
from repro.core.fabric import StorageFabric
from repro.errors import ConfigurationError
from repro.platforms.base import AnalyticalPlatform, ComputePlatform, PlatformKind
from repro.serverless.application import Application
from repro.serverless.coldstart import ColdStartModel
from repro.serverless.driver import OpenCLDriver
from repro.serverless.function import ServerlessFunction
from repro.units import MB, MS

# Warm-container launch/orchestration overhead per function (OpenFaaS +
# Kubernetes dispatch, paper Fig. 4's "system stack").
DEFAULT_STACK_SECONDS = 12 * MS


def _default_host_cpu() -> AnalyticalPlatform:
    from repro.platforms.registry import baseline_cpu

    return baseline_cpu()


@dataclass
class ServerlessExecutionModel:
    """Latency/energy model for one (platform, fabric) system."""

    platform: ComputePlatform
    fabric: StorageFabric = field(default_factory=StorageFabric)
    host_cpu: AnalyticalPlatform = field(default_factory=_default_host_cpu)
    stack_seconds_per_function: float = DEFAULT_STACK_SECONDS
    driver: OpenCLDriver = field(default_factory=OpenCLDriver)
    coldstart: ColdStartModel = field(default_factory=ColdStartModel)
    container_base_bytes: int = 64 * MB
    # Paper §5.3 (function chaining): consecutive functions accelerated by
    # the same DSA keep their intermediate tensors in the drive's staging
    # DRAM, skipping the P2P write + re-read between them.
    fuse_chained_functions: bool = False

    def __post_init__(self) -> None:
        if self.stack_seconds_per_function < 0:
            raise ConfigurationError("negative system-stack overhead")

    def with_fabric(self, fabric: StorageFabric) -> "ServerlessExecutionModel":
        """A copy of this model reading/writing through ``fabric``.

        The platform object (and with it any programs compiled through
        the process-wide cache), host CPU, driver, and cold-start models
        are shared, so fabric sweeps (Fig. 15's tail ratios) swap the
        data path without rebuilding the compute side.
        """
        import dataclasses

        return dataclasses.replace(self, fabric=fabric)

    # ------------------------------------------------------------------
    def _runs_on_platform(self, function: ServerlessFunction) -> bool:
        """Model functions run on the evaluated platform; others on CPU."""
        return function.graph is not None

    def _image_bytes(self, function: ServerlessFunction) -> int:
        return self.container_base_bytes + function.weight_bytes

    def _cold_seconds(self, function: ServerlessFunction) -> float:
        """Cold-start cost for one function on this system.

        DSCS-Serverless reloads a flash-parked image over the P2P link
        (paper §5.3); every other system pulls from the remote registry.
        """
        image = self._image_bytes(function)
        if self.platform.kind is PlatformKind.DSCS and self._runs_on_platform(
            function
        ):
            return self.coldstart.p2p_reload_seconds(image, self.fabric.dscs_drive)
        return self.coldstart.cold_start_seconds(image)

    # ------------------------------------------------------------------
    def invoke(
        self,
        app: Application,
        rng: np.random.Generator,
        batch: int = 1,
        cold: bool = False,
    ) -> InvocationResult:
        """Run one end-to-end invocation; returns the full decomposition."""
        if batch <= 0:
            raise ConfigurationError(f"batch must be positive, got {batch}")
        latency = LatencyBreakdown()
        compute_j = 0.0
        host_cpu_j = 0.0
        pcie_j = 0.0
        storage_j = 0.0
        kind = self.platform.kind
        # One congestion draw per invocation: all of this request's remote
        # accesses see the same network weather (tails are correlated
        # within a request, which is why DSCS's advantage *grows* at the
        # tail — paper Fig. 15).
        multiplier = self.fabric.sample_multiplier(rng)

        for index, function in enumerate(app.functions):
            in_bytes = app.function_input_bytes(index) * batch
            out_bytes = app.function_output_bytes(index) * batch

            latency.add(Component.SYSTEM_STACK, self.stack_seconds_per_function)
            host_cpu_j += (
                self.host_cpu.active_power_watts * self.stack_seconds_per_function
            )

            if cold:
                latency.add(Component.COLD_START, self._cold_seconds(function))

            on_platform = self._runs_on_platform(function)

            if not on_platform:
                # Notification-style function: always a remote compute node.
                read = self.fabric.remote_read_with_multiplier(in_bytes, multiplier)
                write = self.fabric.remote_write_with_multiplier(
                    out_bytes, multiplier
                )
                latency.add(Component.REMOTE_READ, read)
                latency.add(Component.REMOTE_WRITE, write)
                latency.add(Component.CPU_COMPUTE, function.cpu_work_seconds)
                compute_j += (
                    self.host_cpu.active_power_watts * function.cpu_work_seconds
                )
                host_cpu_j += self.host_cpu.idle_power_watts * (read + write)
                pcie_j += self.fabric.pcie_energy_j(in_bytes + out_bytes)
                storage_j += self._drive_energy_j(in_bytes + out_bytes)
                continue

            graph = function.graph
            compute = self.platform.compute_latency_seconds(graph, batch)

            if kind is PlatformKind.TRADITIONAL:
                read = self.fabric.remote_read_with_multiplier(in_bytes, multiplier)
                write = self.fabric.remote_write_with_multiplier(
                    out_bytes, multiplier
                )
                latency.add(Component.REMOTE_READ, read)
                latency.add(Component.REMOTE_WRITE, write)
                host_cpu_j += self.host_cpu.idle_power_watts * (read + write)
                if self.platform.is_accelerator:
                    latency.add(
                        Component.DRIVER, self.platform.driver_overhead_seconds
                    )
                    copies = self.platform.device_copy_seconds(
                        in_bytes
                    ) + self.platform.device_copy_seconds(out_bytes)
                    latency.add(Component.DEVICE_COPY, copies)
                    host_cpu_j += (
                        self.host_cpu.active_power_watts
                        * self.platform.driver_overhead_seconds
                    )
                    if self.platform.device_link is not None:
                        pcie_j += self.platform.device_link.transfer_energy_j(
                            in_bytes + out_bytes
                        )
                    # The discrete accelerator idles (but stays powered)
                    # while the function waits on remote storage — a big
                    # part of why high-power accelerators lose on system
                    # energy in disaggregated datacenters (paper Fig. 11).
                    compute_j += self.platform.idle_power_watts * (read + write)
                pcie_j += self.fabric.pcie_energy_j(in_bytes + out_bytes)
                storage_j += self._drive_energy_j(in_bytes + out_bytes)
            elif kind is PlatformKind.NEAR_STORAGE:
                read = self.fabric.local_read_seconds(in_bytes)
                write = self.fabric.local_write_seconds(out_bytes)
                latency.add(Component.LOCAL_READ, read)
                latency.add(Component.LOCAL_WRITE, write)
                if self.platform.is_accelerator:
                    latency.add(
                        Component.DRIVER, self.platform.driver_overhead_seconds
                    )
                    host_cpu_j += (
                        self.host_cpu.active_power_watts
                        * self.platform.driver_overhead_seconds
                    )
                # The storage node's host CPU stays resident (issuing I/O,
                # holding the container) while the near-storage device works.
                host_cpu_j += self.host_cpu.idle_power_watts * (
                    read + write + compute
                )
                pcie_j += self.fabric.pcie_energy_j(in_bytes + out_bytes)
                storage_j += self._drive_energy_j(in_bytes + out_bytes)
            elif kind is PlatformKind.DSCS:
                prev_on_dsa = index > 0 and self._runs_on_platform(
                    app.functions[index - 1]
                )
                next_on_dsa = index + 1 < len(app.functions) and (
                    self._runs_on_platform(app.functions[index + 1])
                )
                fuse_in = self.fuse_chained_functions and prev_on_dsa
                fuse_out = self.fuse_chained_functions and next_on_dsa
                read = 0.0 if fuse_in else self.fabric.p2p_read_seconds(in_bytes)
                write = 0.0 if fuse_out else self.fabric.p2p_write_seconds(
                    out_bytes
                )
                latency.add(Component.P2P_READ, read)
                latency.add(Component.P2P_WRITE, write)
                latency.add(Component.DRIVER, self.driver.round_trip_seconds())
                host_cpu_j += (
                    self.host_cpu.active_power_watts
                    * self.driver.round_trip_seconds()
                )
                # Host waits for the completion interrupt at idle power.
                host_cpu_j += self.host_cpu.idle_power_watts * (
                    read + write + compute
                )
                pcie_j += self.fabric.p2p_energy_j(in_bytes + out_bytes)
                storage_j += self._drive_energy_j(in_bytes + out_bytes)
            else:  # pragma: no cover - defensive
                raise ConfigurationError(f"unknown platform kind {kind}")

            latency.add(Component.COMPUTE, compute)
            compute_j += self.platform.compute_energy_joules(graph, batch)

        energy = EnergyBreakdown(
            compute_j=compute_j,
            host_cpu_j=host_cpu_j,
            pcie_j=pcie_j,
            storage_j=storage_j,
        )
        return InvocationResult(
            application=app.name,
            platform=self.platform.name,
            latency=latency,
            energy=energy,
            batch=batch,
            cold=cold,
        )

    def _drive_energy_j(self, num_bytes: int) -> float:
        """Flash-array active energy while streaming ``num_bytes``."""
        drive = self.fabric.drive
        stream_seconds = num_bytes / drive.flash.stream_bandwidth_bytes_per_s
        return drive.active_power_watts * stream_seconds

    # ------------------------------------------------------------------
    def sample_latencies(
        self,
        app: Application,
        rng: np.random.Generator,
        count: int,
        batch: int = 1,
        cold: bool = False,
    ) -> np.ndarray:
        """Vectorised end-to-end latency samples (paper: 10,000 requests).

        Deterministic components are computed once; the tailed remote-path
        terms are sampled ``count`` times.
        """
        if count <= 0:
            raise ConfigurationError(f"count must be positive, got {count}")
        base = self.invoke(app, rng, batch=batch, cold=cold)
        deterministic = base.latency.total
        deterministic -= base.latency.get(Component.REMOTE_READ)
        deterministic -= base.latency.get(Component.REMOTE_WRITE)

        samples = np.full(count, deterministic)
        # One congestion multiplier per simulated request, shared by every
        # remote access that request makes.
        multipliers = self.fabric.sample_multipliers(rng, count)
        kind = self.platform.kind
        for index, function in enumerate(app.functions):
            remote = (
                not self._runs_on_platform(function)
                or kind is PlatformKind.TRADITIONAL
            )
            if not remote:
                continue
            in_bytes = app.function_input_bytes(index) * batch
            out_bytes = app.function_output_bytes(index) * batch
            samples = samples + self.fabric.remote_read_with_multiplier(
                in_bytes, multipliers
            )
            samples = samples + self.fabric.remote_write_with_multiplier(
                out_bytes, multipliers
            )
        return samples


def execution_model_for(
    platform: ComputePlatform, fabric: Optional[StorageFabric] = None
) -> ServerlessExecutionModel:
    """Convenience constructor with shared defaults."""
    return ServerlessExecutionModel(
        platform=platform, fabric=fabric or StorageFabric()
    )
