"""Multi-CSD fan-out execution (paper §5.2).

When a request's data spans multiple drives, DSCS-Serverless "has the
flexibility to either revert to default CPU execution or execute data in
parallel across multiple CSDs".  This module models the parallel path: the
payload shards across ``k`` DSCS-Drives, each runs the function on its
shard, and a merge step combines partial results on the host.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.breakdown import Component, InvocationResult, LatencyBreakdown
from repro.core.model import ServerlessExecutionModel
from repro.errors import ConfigurationError
from repro.serverless.application import Application
from repro.units import MS


@dataclass
class FanoutExecution:
    """Parallel execution of one application across several DSCS-Drives."""

    model: ServerlessExecutionModel  # must wrap a DSCS platform
    num_drives: int = 2
    merge_seconds_per_shard: float = 0.5 * MS  # host-side result merge

    def __post_init__(self) -> None:
        if self.num_drives <= 0:
            raise ConfigurationError(
                f"non-positive drive count: {self.num_drives}"
            )
        if self.merge_seconds_per_shard < 0:
            raise ConfigurationError("negative merge cost")

    def _shard(self, app: Application) -> Application:
        """The per-drive shard: payloads divided across drives.

        Model compute scales with payload for the data-parallel stages, so
        a shard is approximated by the application at a 1/k batch of its
        payloads — implemented by dividing edge payload sizes; the model
        graphs themselves process proportionally less data per shard,
        which the payload-dominated latency terms capture.
        """
        k = self.num_drives
        shard_edges = tuple(
            max(1, math.ceil(edge / k)) for edge in app.edge_bytes
        )
        return Application(
            name=f"{app.name}@shard1of{k}",
            functions=app.functions,
            input_bytes=max(1, math.ceil(app.input_bytes / k)),
            edge_bytes=shard_edges,
        )

    def invoke(
        self, app: Application, rng: np.random.Generator
    ) -> InvocationResult:
        """One fan-out invocation: slowest shard + merge.

        Shards are statistically independent; the envelope is the max of
        the per-shard latencies plus the host merge.
        """
        shard = self._shard(app)
        results = [
            self.model.invoke(shard, rng) for _ in range(self.num_drives)
        ]
        slowest = max(results, key=lambda r: r.latency_seconds)

        latency = LatencyBreakdown(dict(slowest.latency.seconds))
        latency.add(
            Component.CPU_COMPUTE,
            self.merge_seconds_per_shard * self.num_drives,
        )
        energy = slowest.energy
        # All shards burn energy even though only the slowest gates latency.
        total_compute = sum(r.energy.compute_j for r in results)
        total_pcie = sum(r.energy.pcie_j for r in results)
        total_storage = sum(r.energy.storage_j for r in results)
        from repro.core.breakdown import EnergyBreakdown

        merged_energy = EnergyBreakdown(
            compute_j=total_compute,
            host_cpu_j=energy.host_cpu_j,
            pcie_j=total_pcie,
            storage_j=total_storage,
        )
        return InvocationResult(
            application=app.name,
            platform=f"{self.model.platform.name} x{self.num_drives}",
            latency=latency,
            energy=merged_energy,
        )
