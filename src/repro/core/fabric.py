"""The storage fabric an execution model reads and writes through.

Bundles the three data paths of the paper's Fig. 5/Fig. 10:

- **remote**: compute node -> network/RPC -> storage node -> drive
  (traditional platforms);
- **local**: storage-node host -> PCIe -> drive (conventional
  near-storage platforms);
- **p2p**: flash -> staging DRAM inside the DSCS-Drive (DSCS-Serverless).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.network.rpc import RPCStack
from repro.storage.drive import DSCSDrive, SSDDrive
from repro.units import US


@dataclass
class StorageFabric:
    """Data-path latency/energy model shared by all execution models."""

    rpc: RPCStack = field(default_factory=RPCStack)
    drive: SSDDrive = field(default_factory=SSDDrive)
    dscs_drive: DSCSDrive = field(default_factory=DSCSDrive)
    local_syscall_seconds: float = 8 * US
    local_syscalls_per_io: int = 3

    def __post_init__(self) -> None:
        if self.local_syscall_seconds < 0 or self.local_syscalls_per_io < 0:
            raise ConfigurationError("negative local-I/O overhead")

    # --- remote path (traditional) ---------------------------------------
    def remote_read_seconds(self, num_bytes: int, rng: np.random.Generator) -> float:
        return self.rpc.sample_request(num_bytes, rng) + self.drive.host_read_seconds(
            num_bytes
        )

    def remote_write_seconds(self, num_bytes: int, rng: np.random.Generator) -> float:
        return self.rpc.sample_request(num_bytes, rng) + self.drive.host_write_seconds(
            num_bytes
        )

    def remote_read_many(
        self, num_bytes: int, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        return self.rpc.sample_request_many(
            num_bytes, rng, count
        ) + self.drive.host_read_seconds(num_bytes)

    def remote_write_many(
        self, num_bytes: int, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        return self.rpc.sample_request_many(
            num_bytes, rng, count
        ) + self.drive.host_write_seconds(num_bytes)

    def sample_multipliers(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Per-request congestion multipliers (shared across a request's
        remote accesses — congestion persists for the request's lifetime)."""
        return self.rpc.network.sample_multipliers(rng, count)

    def sample_multiplier(self, rng: np.random.Generator) -> float:
        return self.rpc.network.sample_multiplier(rng)

    def remote_read_with_multiplier(self, num_bytes: int, multiplier):
        """Remote read under a given congestion multiplier (scalar/array)."""
        return self.rpc.request_with_multiplier(
            num_bytes, multiplier
        ) + self.drive.host_read_seconds(num_bytes)

    def remote_write_with_multiplier(self, num_bytes: int, multiplier):
        """Remote write under a given congestion multiplier (scalar/array)."""
        return self.rpc.request_with_multiplier(
            num_bytes, multiplier
        ) + self.drive.host_write_seconds(num_bytes)

    def median_remote_read_seconds(self, num_bytes: int) -> float:
        return self.rpc.median_request(num_bytes) + self.drive.host_read_seconds(
            num_bytes
        )

    # --- local path (conventional near-storage) ---------------------------
    def _local_software_seconds(self) -> float:
        return self.local_syscall_seconds * self.local_syscalls_per_io

    def local_read_seconds(self, num_bytes: int) -> float:
        """Host read on the storage node itself: syscalls + device I/O."""
        return self._local_software_seconds() + self.drive.host_read_seconds(num_bytes)

    def local_write_seconds(self, num_bytes: int) -> float:
        return self._local_software_seconds() + self.drive.host_write_seconds(
            num_bytes
        )

    # --- P2P path (DSCS) --------------------------------------------------
    def p2p_read_seconds(self, num_bytes: int) -> float:
        """Flash -> staging DRAM, bypassing the host software stack."""
        return self.dscs_drive.p2p_read_seconds(num_bytes)

    def p2p_write_seconds(self, num_bytes: int) -> float:
        return self.dscs_drive.p2p_write_seconds(num_bytes)

    # --- energy helpers ----------------------------------------------------
    def pcie_energy_j(self, num_bytes: int) -> float:
        """PCIe transfer energy for ``num_bytes`` on the drive link."""
        return self.drive.host_link.transfer_energy_j(num_bytes)

    def p2p_energy_j(self, num_bytes: int) -> float:
        return self.dscs_drive.p2p_energy_j(num_bytes)

    def with_tail_ratio(self, p99_over_median: float) -> "StorageFabric":
        """Copy with the network tail ratio replaced (Fig. 15 sweep)."""
        return StorageFabric(
            rpc=self.rpc.with_tail_ratio(p99_over_median),
            drive=self.drive,
            dscs_drive=self.dscs_drive,
            local_syscall_seconds=self.local_syscall_seconds,
            local_syscalls_per_io=self.local_syscalls_per_io,
        )
