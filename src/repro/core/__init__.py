"""The DSCS-Serverless execution model — the paper's core contribution.

Given an application (a chain of serverless functions), a compute platform
(Table 2), and a storage fabric, the execution models produce end-to-end
latency breakdowns and system-energy figures for a single invocation:

- :class:`~repro.core.model.ServerlessExecutionModel` routes each function
  along the data path its platform implies — remote storage over the
  network for traditional platforms, local host I/O for near-storage
  platforms, and the flash->DSA peer-to-peer path for DSCS-Serverless.
- :class:`~repro.core.breakdown.LatencyBreakdown` /
  :class:`~repro.core.breakdown.EnergyBreakdown` carry the component
  decomposition every figure in the evaluation is built from.
"""

from repro.core.breakdown import (
    Component,
    EnergyBreakdown,
    InvocationResult,
    LatencyBreakdown,
)
from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel, execution_model_for

__all__ = [
    "Component",
    "EnergyBreakdown",
    "InvocationResult",
    "LatencyBreakdown",
    "ServerlessExecutionModel",
    "StorageFabric",
    "execution_model_for",
]
