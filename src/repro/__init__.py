"""DSCS-Serverless: in-storage domain-specific acceleration for serverless
computing — a full-system reproduction of the ASPLOS 2024 paper.

Quickstart::

    import numpy as np
    from repro import (
        DSAConfig, ServerlessExecutionModel, StorageFabric,
        benchmark_suite, compile_graph, dscs_dsa, baseline_cpu,
    )

    app = benchmark_suite()["Remote Sensing"]
    dscs = ServerlessExecutionModel(platform=dscs_dsa())
    cpu = ServerlessExecutionModel(platform=baseline_cpu())
    rng = np.random.default_rng(0)
    print(cpu.invoke(app, rng).latency_seconds /
          dscs.invoke(app, rng).latency_seconds)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-figure reproduction results.
"""

from repro.accelerator import CycleSimulator, DSAConfig
from repro.accelerator.config import DDR4, DDR5, HBM2, paper_design_point
from repro.compiler import compile_graph
from repro.core import (
    Component,
    InvocationResult,
    LatencyBreakdown,
    ServerlessExecutionModel,
    StorageFabric,
)
from repro.experiments.benchmarks import BENCHMARKS, benchmark_suite
from repro.models import Graph, GraphBuilder, TensorSpec
from repro.platforms import (
    baseline_cpu,
    dscs_dsa,
    fpga_u280,
    gpu_2080ti,
    ns_arm,
    ns_fpga_smartssd,
    ns_mobile_gpu,
    table2_platforms,
)
from repro.serverless import Application, ServerlessFunction

__version__ = "1.0.0"

__all__ = [
    "Application",
    "BENCHMARKS",
    "Component",
    "CycleSimulator",
    "DDR4",
    "DDR5",
    "DSAConfig",
    "Graph",
    "GraphBuilder",
    "HBM2",
    "InvocationResult",
    "LatencyBreakdown",
    "ServerlessExecutionModel",
    "ServerlessFunction",
    "StorageFabric",
    "TensorSpec",
    "__version__",
    "baseline_cpu",
    "benchmark_suite",
    "compile_graph",
    "dscs_dsa",
    "fpga_u280",
    "gpu_2080ti",
    "ns_arm",
    "ns_fpga_smartssd",
    "ns_mobile_gpu",
    "paper_design_point",
    "table2_platforms",
]
