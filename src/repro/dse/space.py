"""The DSA search space (paper §4.2).

The paper scales the TPUv1-style standard point by sweeping the systolic
array from 4x4 to 1024x1024 (power-of-two stride, rectangular aspects
included), scaling buffers proportionally with a 32 MB cap (larger
scratchpads blow the storage power budget), and trying three memory
technologies — over 650 configurations in total.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.accelerator.config import DDR4, DDR5, HBM2, DSAConfig
from repro.errors import ConfigurationError
from repro.units import GHZ, KB, MB

ARRAY_DIMS = [4, 8, 16, 32, 64, 128, 256, 512, 1024]
MEMORIES = [DDR4, DDR5, HBM2]
# Buffer bytes per PE; TPUv1's 28 MB / 64K PEs ~ 448 B/PE sits mid-range,
# and 256 B/PE yields the paper's 4 MB point at 128x128.
BUFFER_BYTES_PER_PE = [64, 128, 256, 448, 1024, 2048, 4096]
MIN_BUFFER_BYTES = 64 * KB
MAX_BUFFER_BYTES = 32 * MB
# Keep aspect ratios within 8:1 — extreme aspect ratios are not routable.
MAX_ASPECT_RATIO = 8


def _buffer_for(num_pes: int, bytes_per_pe: int) -> int:
    raw = num_pes * bytes_per_pe
    return max(MIN_BUFFER_BYTES, min(MAX_BUFFER_BYTES, raw))


def design_space(
    square_only: bool = False,
    frequency_hz: float = 1.0 * GHZ,
    tech_node_nm: int = 45,
) -> List[DSAConfig]:
    """Enumerate the search space (deduplicated).

    ``square_only`` restricts to square arrays — a coarse subset used by
    quick benchmarks; the full space exceeds the paper's 650 points.
    """
    if frequency_hz <= 0:
        raise ConfigurationError(f"non-positive frequency {frequency_hz}")
    seen = set()
    configs: List[DSAConfig] = []
    for rows in ARRAY_DIMS:
        for cols in ARRAY_DIMS:
            if square_only and rows != cols:
                continue
            aspect = max(rows, cols) / min(rows, cols)
            if aspect > MAX_ASPECT_RATIO:
                continue
            for bytes_per_pe in BUFFER_BYTES_PER_PE:
                buffer_bytes = _buffer_for(rows * cols, bytes_per_pe)
                for memory in MEMORIES:
                    key = (rows, cols, buffer_bytes, memory.name)
                    if key in seen:
                        continue
                    seen.add(key)
                    configs.append(
                        DSAConfig(
                            pe_rows=rows,
                            pe_cols=cols,
                            buffer_bytes=buffer_bytes,
                            memory=memory,
                            frequency_hz=frequency_hz,
                            tech_node_nm=tech_node_nm,
                        )
                    )
    return configs


def paper_search_space_size() -> int:
    """Size of the full (non-square-restricted) space."""
    return len(design_space(square_only=False))


def iter_design_space(**kwargs) -> Iterator[DSAConfig]:
    """Lazily iterate the design space."""
    yield from design_space(**kwargs)
