"""Design-space exploration for the in-storage DSA (paper §4.2).

Sweeps systolic-array geometry (4-1024 per side, powers of two), buffer
capacity (proportional to the PE count, capped at 32 MB), and memory
technology (DDR4/DDR5/HBM2) — more than 650 candidate configurations —
then extracts power-performance and area-performance Pareto frontiers
under the 25 W storage power budget.
"""

from repro.dse.explorer import DesignPointResult, DSEExplorer
from repro.dse.space import design_space, paper_search_space_size

__all__ = [
    "DSEExplorer",
    "DesignPointResult",
    "design_space",
    "paper_search_space_size",
]
