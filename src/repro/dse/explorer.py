"""Evaluates design points and extracts Pareto frontiers (Figs. 7/8).

Each candidate is evaluated by compiling a set of evaluation models and
cycle-simulating them; throughput is the average frames/sec across the
set, dynamic power is the simulated energy over runtime, and area comes
from the analytical model.  Feasibility enforces the storage drive's power
budget after scaling to the deployment technology node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.accelerator.area import AreaModel
from repro.accelerator.config import (
    ACCELERATOR_POWER_SHARE,
    DSAConfig,
    SMARTSSD_POWER_BUDGET_WATTS,
)
from repro.accelerator.power import PowerModel
from repro.accelerator.scaling import scale_power
from repro.analysis.pareto import DesignPoint2D, pareto_front_points
from repro.compiler.executable import compile_graph
from repro.errors import ConfigurationError
from repro.models.graph import Graph


def _default_eval_models() -> List[Graph]:
    """A light but representative model set (CNN + transformer)."""
    from repro.models.zoo import resnet50, vit

    return [resnet50(), vit(dim=384, layers=12, heads=6)]


@dataclass(frozen=True)
class DesignPointResult:
    """Evaluation outcome for one DSA configuration."""

    config: DSAConfig
    throughput_fps: float
    dynamic_power_watts: float
    total_power_watts: float
    area_mm2: float
    feasible: bool

    @property
    def label(self) -> str:
        return self.config.label


class DSEExplorer:
    """Runs the §4.2 exploration over a set of candidate configs."""

    def __init__(
        self,
        eval_models: Optional[Sequence[Graph]] = None,
        deployment_node_nm: int = 45,
        power_budget_watts: float = SMARTSSD_POWER_BUDGET_WATTS
        * ACCELERATOR_POWER_SHARE,
    ) -> None:
        """``deployment_node_nm`` defaults to the 45 nm synthesis node —
        the conservative budget check under which the paper's Dim128
        point is the largest feasible array.  Pass 14 to budget against
        the scaled deployment silicon instead."""
        if power_budget_watts <= 0:
            raise ConfigurationError("non-positive power budget")
        self._models = list(eval_models) if eval_models else _default_eval_models()
        self._deployment_node_nm = deployment_node_nm
        self._power_budget_watts = power_budget_watts
        self._cache: Dict[str, DesignPointResult] = {}

    @property
    def eval_models(self) -> List[Graph]:
        return list(self._models)

    def evaluate(self, config: DSAConfig) -> DesignPointResult:
        """Cycle-simulate the eval set on ``config``."""
        if config.label in self._cache:
            return self._cache[config.label]

        total_latency = 0.0
        dynamic_j = 0.0
        fps_values = []
        power_model = PowerModel(config)
        for graph in self._models:
            report = compile_graph(graph, config).simulate()
            total_latency += report.latency_s
            dynamic_j += report.energy.total_j - report.energy.leakage_j
            fps_values.append(1.0 / report.latency_s)
        throughput = sum(fps_values) / len(fps_values)
        dynamic_power = dynamic_j / total_latency if total_latency > 0 else 0.0
        total_power = dynamic_power + power_model.leakage_watts()

        if config.tech_node_nm == 45:
            deployed_power = scale_power(total_power, self._deployment_node_nm)
        else:
            deployed_power = total_power
        # The DRAM interface PHY does not scale with the logic node and
        # draws from the same drive budget.
        deployed_power += config.memory.interface_power_watts
        feasible = deployed_power <= self._power_budget_watts

        result = DesignPointResult(
            config=config,
            throughput_fps=throughput,
            dynamic_power_watts=dynamic_power,
            total_power_watts=total_power,
            area_mm2=AreaModel(config).total_mm2(),
            feasible=feasible,
        )
        self._cache[config.label] = result
        return result

    def sweep(self, configs: Sequence[DSAConfig]) -> List[DesignPointResult]:
        """Evaluate every candidate configuration."""
        if not configs:
            raise ConfigurationError("empty candidate list")
        return [self.evaluate(config) for config in configs]

    @staticmethod
    def power_pareto(results: Sequence[DesignPointResult]) -> List[DesignPointResult]:
        """Power-performance frontier (Fig. 7)."""
        points = [
            DesignPoint2D(r.label, r.throughput_fps, r.dynamic_power_watts)
            for r in results
        ]
        front_labels = {p.label for p in pareto_front_points(points)}
        return [r for r in results if r.label in front_labels]

    @staticmethod
    def area_pareto(results: Sequence[DesignPointResult]) -> List[DesignPointResult]:
        """Area-performance frontier (Fig. 8)."""
        points = [
            DesignPoint2D(r.label, r.throughput_fps, r.area_mm2) for r in results
        ]
        front_labels = {p.label for p in pareto_front_points(points)}
        return [r for r in results if r.label in front_labels]

    def best_feasible(
        self, results: Sequence[DesignPointResult]
    ) -> DesignPointResult:
        """Highest-throughput point inside the power budget.

        This is how the paper lands on Dim128-4MB-DDR5.
        """
        feasible = [r for r in results if r.feasible]
        if not feasible:
            raise ConfigurationError("no feasible design point under the budget")
        # Max throughput; near-ties (within 5%) resolve to the smaller die,
        # since area is the paper's proxy for fabrication cost.
        best_fps = max(r.throughput_fps for r in feasible)
        contenders = [
            r for r in feasible if r.throughput_fps >= 0.95 * best_fps
        ]
        return min(contenders, key=lambda r: r.area_mm2)
