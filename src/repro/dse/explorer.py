"""Evaluates design points and extracts Pareto frontiers (Figs. 7/8).

Each candidate is evaluated by compiling a set of evaluation models and
cycle-simulating them; throughput is the average frames/sec across the
set, dynamic power is the simulated energy over runtime, and area comes
from the analytical model.  Feasibility enforces the storage drive's power
budget after scaling to the deployment technology node.

Sweep-scale performance comes from three layers:

- the vectorized packed execution engine (bit-identical to the scalar
  interpreter, which remains the oracle);
- a cross-sweep :class:`~repro.compiler.executable.ProgramCache` keyed by
  ``(graph fingerprint, tiling-relevant config fields)`` — the three
  memory technologies at each array/buffer geometry share one compile;
- an optional process pool: ``sweep(configs, workers=N)`` fans candidates
  out across processes while preserving the input ordering, so results
  are deterministic regardless of worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accelerator.area import AreaModel
from repro.accelerator.config import (
    ACCELERATOR_POWER_SHARE,
    DSAConfig,
    SMARTSSD_POWER_BUDGET_WATTS,
)
from repro.accelerator.power import PowerModel
from repro.accelerator.scaling import scale_power
from repro.analysis.pareto import DesignPoint2D, pareto_front_points
from repro.accelerator.simulator import CycleSimulator
from repro.compiler.executable import ProgramCache, compile_graph_uncached
from repro.compiler.packed_codegen import lower_packed
from repro.errors import ConfigurationError
from repro.models.graph import Graph


def _default_eval_models() -> List[Graph]:
    """A light but representative model set (CNN + transformer)."""
    from repro.models.zoo import resnet50, vit

    return [resnet50(), vit(dim=384, layers=12, heads=6)]


@dataclass(frozen=True)
class DesignPointResult:
    """Evaluation outcome for one DSA configuration."""

    config: DSAConfig
    throughput_fps: float
    dynamic_power_watts: float
    total_power_watts: float
    area_mm2: float
    feasible: bool

    @property
    def label(self) -> str:
        return self.config.label

    def as_row(self) -> Dict[str, object]:
        """Flat record for result tables (Figs. 7/8 CLI/JSON output)."""
        return {
            "config": self.label,
            "fps": round(self.throughput_fps, 2),
            "dynamic_power_w": round(self.dynamic_power_watts, 3),
            "total_power_w": round(self.total_power_watts, 3),
            "area_mm2": round(self.area_mm2, 2),
            "feasible": self.feasible,
        }


class DSEExplorer:
    """Runs the §4.2 exploration over a set of candidate configs."""

    def __init__(
        self,
        eval_models: Optional[Sequence[Graph]] = None,
        deployment_node_nm: int = 45,
        power_budget_watts: float = SMARTSSD_POWER_BUDGET_WATTS
        * ACCELERATOR_POWER_SHARE,
        engine: str = "packed",
        cache_programs: bool = True,
    ) -> None:
        """``deployment_node_nm`` defaults to the 45 nm synthesis node —
        the conservative budget check under which the paper's Dim128
        point is the largest feasible array.  Pass 14 to budget against
        the scaled deployment silicon instead.  ``engine`` selects the
        simulation path (``"packed"`` fast engine or the ``"scalar"``
        reference oracle; both are bit-identical).  ``cache_programs``
        disables the cross-sweep compiled-program cache when False —
        benchmarks use that to measure the cold-compile baseline."""
        if power_budget_watts <= 0:
            raise ConfigurationError("non-positive power budget")
        if engine not in ("packed", "scalar"):
            raise ConfigurationError(f"unknown simulation engine {engine!r}")
        self._models = list(eval_models) if eval_models else _default_eval_models()
        self._deployment_node_nm = deployment_node_nm
        self._power_budget_watts = power_budget_watts
        self._engine = engine
        # Keyed by the (frozen, hashable) config itself — labels do not
        # encode frequency or tech node, so they can alias design points.
        self._cache: Dict[DSAConfig, DesignPointResult] = {}
        self._cache_programs = cache_programs
        self._programs = ProgramCache()

    def __getstate__(self):
        # Sweep workers receive a lean copy: result/program caches are
        # per-process (and re-shipping compiled programs would dwarf the
        # configs being evaluated).
        state = dict(self.__dict__)
        state["_cache"] = {}
        state["_programs"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        if self._programs is None:
            self._programs = ProgramCache()

    @property
    def eval_models(self) -> List[Graph]:
        return list(self._models)

    def evaluate(self, config: DSAConfig) -> DesignPointResult:
        """Cycle-simulate the eval set on ``config``."""
        if config in self._cache:
            return self._cache[config]

        total_latency = 0.0
        dynamic_j = 0.0
        fps_values = []
        power_model = PowerModel(config)
        simulator = CycleSimulator(config)
        for graph in self._models:
            if self._engine == "packed":
                # Fast path: direct graph -> columns lowering (no Python
                # instruction objects), shared across configs via tiling key.
                if self._cache_programs:
                    packed = self._programs.get_packed(graph, config)
                else:
                    packed = lower_packed(graph, config)
                report = simulator.run_packed(packed)
            else:
                executable = compile_graph_uncached(graph, config)
                report = executable.simulate(engine="scalar")
            total_latency += report.latency_s
            dynamic_j += report.energy.total_j - report.energy.leakage_j
            fps_values.append(1.0 / report.latency_s)
        throughput = sum(fps_values) / len(fps_values)
        dynamic_power = dynamic_j / total_latency if total_latency > 0 else 0.0
        total_power = dynamic_power + power_model.leakage_watts()

        if config.tech_node_nm == 45:
            deployed_power = scale_power(total_power, self._deployment_node_nm)
        else:
            deployed_power = total_power
        # The DRAM interface PHY does not scale with the logic node and
        # draws from the same drive budget.
        deployed_power += config.memory.interface_power_watts
        feasible = deployed_power <= self._power_budget_watts

        result = DesignPointResult(
            config=config,
            throughput_fps=throughput,
            dynamic_power_watts=dynamic_power,
            total_power_watts=total_power,
            area_mm2=AreaModel(config).total_mm2(),
            feasible=feasible,
        )
        self._cache[config] = result
        return result

    def sweep(
        self, configs: Sequence[DSAConfig], workers: Optional[int] = None
    ) -> List[DesignPointResult]:
        """Evaluate every candidate configuration.

        ``workers`` > 1 fans the sweep out over a process pool.  Results
        come back in input order and each evaluation is deterministic, so
        the output is identical to the serial sweep — only faster on
        multi-core hosts.  Worker results are folded back into this
        explorer's cache.
        """
        if not configs:
            raise ConfigurationError("empty candidate list")
        if workers is not None and workers < 1:
            raise ConfigurationError(f"non-positive worker count: {workers}")
        if workers is None or workers == 1 or len(configs) == 1:
            return [self.evaluate(config) for config in configs]

        pending = []
        queued = set()
        for config in configs:
            if config not in self._cache and config not in queued:
                queued.add(config)
                pending.append(config)
        if pending:
            chunk = max(1, len(pending) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                evaluated = list(
                    pool.map(self.evaluate, pending, chunksize=chunk)
                )
            for result in evaluated:
                self._cache[result.config] = result
        return [self._cache[config] for config in configs]

    @staticmethod
    def power_pareto(results: Sequence[DesignPointResult]) -> List[DesignPointResult]:
        """Power-performance frontier (Fig. 7)."""
        points = [
            DesignPoint2D(r.label, r.throughput_fps, r.dynamic_power_watts)
            for r in results
        ]
        front_labels = {p.label for p in pareto_front_points(points)}
        return [r for r in results if r.label in front_labels]

    @staticmethod
    def area_pareto(results: Sequence[DesignPointResult]) -> List[DesignPointResult]:
        """Area-performance frontier (Fig. 8)."""
        points = [
            DesignPoint2D(r.label, r.throughput_fps, r.area_mm2) for r in results
        ]
        front_labels = {p.label for p in pareto_front_points(points)}
        return [r for r in results if r.label in front_labels]

    def best_feasible(
        self, results: Sequence[DesignPointResult]
    ) -> DesignPointResult:
        """Highest-throughput point inside the power budget.

        This is how the paper lands on Dim128-4MB-DDR5.
        """
        feasible = [r for r in results if r.feasible]
        if not feasible:
            raise ConfigurationError("no feasible design point under the budget")
        # Max throughput; near-ties (within 5%) resolve to the smaller die,
        # since area is the paper's proxy for fabrication cost.
        best_fps = max(r.throughput_fps for r in feasible)
        contenders = [
            r for r in feasible if r.throughput_fps >= 0.95 * best_fps
        ]
        return min(contenders, key=lambda r: r.area_mm2)
