"""Fig. 14: sensitivity to batch size.

DSCS-Serverless latency normalized to the Baseline (CPU) at the *same*
batch size, for batches 1-64 (AWS Lambda's payload cap bounds the sweep).
Paper: speedup grows from 3.6x at batch 1 to 15.8x at batch 64 — batching
amortises communication and lets the DSA reuse weights across the batch,
which matters most for the language models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    geomean_speedup,
    p95_latency_table,
)
from repro.experiments.registry import REGISTRY, Param

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class BatchStudy:
    """Per-batch, per-benchmark DSCS-vs-baseline speedups."""

    speedups: Dict[int, Dict[str, float]]  # batch -> benchmark -> speedup

    def geomean(self, batch: int) -> float:
        return geomean_speedup(self.speedups[batch])

    @property
    def batches(self) -> List[int]:
        return sorted(self.speedups)


@REGISTRY.experiment(
    name="fig14",
    description="Fig. 14: sensitivity to batch size",
    params=(
        Param("batches", "ints", DEFAULT_BATCHES, "batch sizes to sweep"),
        Param("samples", "int", 500, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"batches": (1, 8), "samples": 100},
        "paper": {"batches": DEFAULT_BATCHES, "samples": 10_000},
    },
    tags=("figure", "sensitivity"),
)
def _experiment(ctx, batches, samples, seed, context=None):
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    speedups: Dict[int, Dict[str, float]] = {}
    for batch in batches:
        latency = p95_latency_table(context, count=samples, seed=seed, batch=batch)
        base = latency[BASELINE_NAME]
        dscs = latency[DSCS_NAME]
        speedups[batch] = {app: base[app] / dscs[app] for app in base}
    study = BatchStudy(speedups=speedups)
    rows = [
        {"batch": batch, "geomean_speedup": round(study.geomean(batch), 3)}
        for batch in study.batches
    ]
    return rows, study


def run(
    batches=DEFAULT_BATCHES,
    count: int = 500,
    seed: int = 7,
    context: SuiteContext = None,
) -> BatchStudy:
    """Regenerate Fig. 14."""
    return REGISTRY.run(
        "fig14", batches=batches, samples=count, seed=seed, context=context
    ).study
