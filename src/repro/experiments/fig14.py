"""Fig. 14: sensitivity to batch size.

DSCS-Serverless latency normalized to the Baseline (CPU) at the *same*
batch size, for batches 1-64 (AWS Lambda's payload cap bounds the sweep).
Paper: speedup grows from 3.6x at batch 1 to 15.8x at batch 64 — batching
amortises communication and lets the DSA reuse weights across the batch,
which matters most for the language models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    build_context,
    geomean_speedup,
    p95_latency_table,
)

DEFAULT_BATCHES = (1, 2, 4, 8, 16, 32, 64)


@dataclass
class BatchStudy:
    """Per-batch, per-benchmark DSCS-vs-baseline speedups."""

    speedups: Dict[int, Dict[str, float]]  # batch -> benchmark -> speedup

    def geomean(self, batch: int) -> float:
        return geomean_speedup(self.speedups[batch])

    @property
    def batches(self) -> List[int]:
        return sorted(self.speedups)


def run(
    batches=DEFAULT_BATCHES,
    count: int = 500,
    seed: int = 7,
    context: SuiteContext = None,
) -> BatchStudy:
    """Regenerate Fig. 14."""
    context = context or build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    speedups: Dict[int, Dict[str, float]] = {}
    for batch in batches:
        latency = p95_latency_table(context, count=count, seed=seed, batch=batch)
        base = latency[BASELINE_NAME]
        dscs = latency[DSCS_NAME]
        speedups[batch] = {app: base[app] / dscs[app] for app in base}
    return BatchStudy(speedups=speedups)
