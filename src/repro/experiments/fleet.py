"""fig13-fleet: the Fig. 13 workload at datacenter scale.

One fleet-level bursty trace is split by a deterministic
:class:`~repro.cluster.fleet.GlobalLoadBalancer` across N racks (each a
full :class:`~repro.cluster.simulation.RackSimulation`), simulated
serially or across a process pool by
:class:`~repro.cluster.fleet_engine.FleetRunner`, and stitched back with
per-rack sha256 check hashes plus a merged fleet hash — identical either
way.  Fleet-level p50/p95/p99 come from merged constant-memory
:class:`~repro.sim.stats.QuantileSketch` accumulators, never from a
concatenated latency vector, so the paper profile (100 racks, a 16x
envelope: 10M+ requests) stitches in O(racks) memory.

The grid is racks x rate_scale x lb_policy for both platforms; every
fleet run emits one ``scope="fleet"`` summary row plus one
``scope="rack"`` row per rack, all sharing one rectangular schema.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.fleet import (
    LB_POLICIES,
    FleetTopology,
    GlobalLoadBalancer,
)
from repro.cluster.fleet_engine import FleetResult, FleetRunner
from repro.cluster.trace import DEFAULT_RATE_ENVELOPE, TraceGenerator
from repro.experiments.common import BASELINE_NAME, DSCS_NAME
from repro.experiments.registry import REGISTRY, Param

import numpy as np

_PLATFORMS = (BASELINE_NAME, DSCS_NAME)


@dataclass
class FleetStudy:
    """fig13-fleet results keyed by (rate_scale, lb_policy, platform)."""

    results: Dict[Tuple[float, str, str], FleetResult]

    def at(
        self, rate_scale: float, lb_policy: str, platform: str
    ) -> FleetResult:
        return self.results[(rate_scale, lb_policy, platform)]


def _row(
    scope: str,
    rate_scale: float,
    platform: str,
    result: FleetResult,
    rack_label: str,
    requests: int,
    completed: int,
    dropped: int,
    availability: float,
    mean_latency: float,
    p50: float,
    p95: float,
    p99: float,
    peak_queue: int,
    check_hash: str,
) -> dict:
    """One rectangular record shared by fleet and rack rows."""
    return {
        "scope": scope,
        "rate_scale": rate_scale,
        "lb_policy": result.lb_policy,
        "platform": platform,
        "racks": len(result.racks),
        "workers": result.workers,
        "rack": rack_label,
        "requests": requests,
        "completed": completed,
        "dropped": dropped,
        "availability": round(availability, 6),
        "mean_latency_s": round(mean_latency, 6),
        "p50_latency_s": round(p50, 6),
        "p95_latency_s": round(p95, 6),
        "p99_latency_s": round(p99, 6),
        "sketch_error_bound": round(
            result.merged_sketch.relative_error_bound, 6
        ),
        "peak_queue": peak_queue,
        "check_hash": check_hash,
    }


def _fleet_rows(
    rate_scale: float, platform: str, result: FleetResult
) -> List[dict]:
    """The fleet summary row followed by one row per rack."""
    sketch = result.merged_sketch
    rows = [
        _row(
            "fleet",
            rate_scale,
            platform,
            result,
            rack_label="*",
            requests=result.total_requests,
            completed=result.completed,
            dropped=result.dropped,
            availability=result.availability,
            mean_latency=sketch.mean,
            p50=sketch.percentile(50.0),
            p95=sketch.percentile(95.0),
            p99=sketch.percentile(99.0),
            peak_queue=max(rack.peak_queue for rack in result.racks),
            check_hash=result.fleet_hash,
        )
    ]
    for rack in result.racks:
        rows.append(
            _row(
                "rack",
                rate_scale,
                platform,
                result,
                rack_label=rack.name,
                requests=rack.requests,
                completed=rack.completed,
                dropped=rack.dropped,
                availability=rack.availability,
                mean_latency=rack.mean_latency_seconds,
                p50=rack.sketch.percentile(50.0),
                p95=rack.sketch.percentile(95.0),
                p99=rack.sketch.percentile(99.0),
                peak_queue=rack.peak_queue,
                check_hash=rack.check_hash,
            )
        )
    return rows


def _fleet_headline(results: Dict[Tuple[float, str, str], FleetResult]):
    if not results:
        return ""
    key = max(results, key=lambda k: results[k].total_requests)
    result = results[key]
    return (
        f"{len(result.racks)} racks x {result.total_requests} requests "
        f"({key[1]}, {key[2]}): sketch p99 "
        f"{result.sketch_percentile(99.0) * 1e3:.1f} ms, "
        f"availability {result.availability:.4f}"
    )


@REGISTRY.experiment(
    name="fig13-fleet",
    description=(
        "Datacenter fleet: the Fig. 13 trace sharded across N racks by a "
        "global load balancer, stitched with check hashes and mergeable "
        "quantile sketches"
    ),
    params=(
        Param("racks", "int", 8, "racks in the fleet"),
        Param(
            "rate_scales",
            "floats",
            (1.0,),
            "scales on the fleet-level rate envelope",
        ),
        Param(
            "lb_policies",
            "strs",
            LB_POLICIES,
            "load-balancer policies "
            "(round_robin | weighted | hash_affinity)",
        ),
        Param("max_instances", "int", 200, "instances per rack"),
        Param("queue_depth", "int", 10_000, "queue bound per rack"),
        Param(
            "policy", "str", "fcfs", "per-rack scheduling policy"
        ),
        Param(
            "workers",
            "int",
            None,
            "process-pool size for the rack fan-out (default: serial)",
        ),
        Param(
            "keep_latencies",
            "bool",
            False,
            "also keep exact per-rack latency vectors "
            "(sketch cross-check scale only)",
        ),
        Param("seed", "int", 13, "fleet trace + rack-seed master seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event | streaming"),
        Param(
            "chunk_requests",
            "int",
            None,
            "streaming-engine chunk size (requests per bounded chunk)",
        ),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {
            "racks": 3,
            "rate_scales": (0.05,),
            "max_instances": 8,
        },
        # >= 10M requests over >= 100 racks: the 20-minute envelope at
        # 16x integrates to ~10.2M arrivals.
        "paper": {
            "racks": 100,
            "rate_scales": (16.0,),
            "max_instances": 200,
        },
    },
    tags=("figure", "rack", "fleet", "sweep"),
    headline=lambda study: _fleet_headline(study.results),
)
def _fleet_experiment(
    ctx,
    racks,
    rate_scales,
    lb_policies,
    max_instances,
    queue_depth,
    policy,
    workers,
    keep_latencies,
    seed,
    engine,
    chunk_requests=None,
    context=None,
):
    context = context or ctx.suite_context(list(_PLATFORMS))
    rows: List[dict] = []
    results: Dict[Tuple[float, str, str], FleetResult] = {}
    for rate_scale in rate_scales:
        envelope = tuple(
            rate * float(rate_scale) for rate in DEFAULT_RATE_ENVELOPE
        )
        generator = TraceGenerator(context.app_names, rate_envelope=envelope)
        trace = generator.generate(np.random.default_rng(seed))
        for lb_policy in lb_policies:
            for platform in context.platform_names:
                topology = FleetTopology.uniform(
                    int(racks),
                    platform,
                    max_instances=int(max_instances),
                    queue_depth=int(queue_depth),
                    policy=str(policy),
                    seed=int(seed),
                )
                runner = FleetRunner(
                    context,
                    balancer=GlobalLoadBalancer(str(lb_policy)),
                    engine=engine,
                    keep_latencies=bool(keep_latencies),
                    chunk_requests=chunk_requests,
                )
                result = runner.run(topology, trace, workers=workers)
                results[
                    (float(rate_scale), str(lb_policy), platform)
                ] = result
                rows.extend(
                    _fleet_rows(float(rate_scale), platform, result)
                )
    return rows, FleetStudy(results=results)


def run_fleet(
    racks: int = 8,
    rate_scales=(1.0,),
    lb_policies=LB_POLICIES,
    max_instances: int = 200,
    queue_depth: int = 10_000,
    policy: str = "fcfs",
    workers: Optional[int] = None,
    keep_latencies: bool = False,
    seed: int = 13,
    engine: str = "auto",
    chunk_requests: int = None,
    context=None,
) -> FleetStudy:
    """The Fig. 13 workload sharded across a multi-rack fleet."""
    return REGISTRY.run(
        "fig13-fleet",
        racks=racks,
        rate_scales=rate_scales,
        lb_policies=lb_policies,
        max_instances=max_instances,
        queue_depth=queue_depth,
        policy=policy,
        workers=workers,
        keep_latencies=keep_latencies,
        seed=seed,
        engine=engine,
        chunk_requests=chunk_requests,
        context=context,
    ).study
