"""Closed-loop control-plane studies: autoscaling and overload shedding.

Two registered experiments exercise the control plane of
:mod:`repro.cluster.control` on the paper's at-scale workload:

- ``fig13-autoscale`` — the Fig. 13 rate ramp crossed with the two
  scaling policies (target-utilization and queue-depth) and a shedding
  toggle.  Shows the live-capacity trajectory tracking the bursty
  envelope, the cost of warmup (cold-start) lag, and how much loss the
  CoDel shedder converts from indiscriminate queue overflow into
  targeted ``shed`` drops.
- ``fig15-overload`` — tail latency under 2-10x overload, brownout vs
  collapse.  Applications are binned into criticality classes; the
  controlled cells run the brownout ladder + CoDel shedder, the
  uncontrolled cells run an :func:`~repro.cluster.control.observer_plane`
  (identical dynamics, but the per-completion app record is kept so
  per-class latency can be sliced on both sides).  The acceptance
  criterion — admitted criticality-0 p99 within 2x of the uncongested
  baseline at 4x overload, while the uncontrolled run collapses — is
  asserted in ``tests/test_control_equivalence.py``.

Every cell runs through :class:`~repro.cluster.sweep.RackSweep`; the
control engines are oracle-checked the same way the chaos engines are.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.cluster.control import (
    AutoscalerPolicy,
    ControlPlane,
    OverloadPolicy,
    observer_plane,
)
from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.experiments.common import BASELINE_NAME, DSCS_NAME
from repro.experiments.registry import REGISTRY, Param

_PLATFORMS = (BASELINE_NAME, DSCS_NAME)

DEFAULT_SCALING_POLICIES = ("target_utilization", "queue_depth")
DEFAULT_OVERLOAD_FACTORS = (2.0, 4.0, 10.0)
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)

# Criticality classes for the overload study: apps binned round-robin
# (alphabetically) into three classes, most critical first.
N_CRITICALITY_CLASSES = 3


def criticality_classes(app_names) -> Dict[str, int]:
    """Deterministic app -> criticality class (0 = most critical)."""
    return {
        name: rank % N_CRITICALITY_CLASSES
        for rank, name in enumerate(sorted(app_names))
    }


def apps_in_class(priorities: Dict[str, int], rank: int) -> List[str]:
    return sorted(
        name for name, cls in priorities.items() if cls == rank
    )


@dataclass
class AutoscaleStudy:
    """fig13-autoscale results keyed by (rate, policy, shed, platform)."""

    results: Dict[Tuple[float, str, bool, str], ScenarioResult]

    def at(
        self, rate_scale: float, policy: str, shedding: bool, platform: str
    ) -> ScenarioResult:
        return self.results[(rate_scale, policy, shedding, platform)]


@dataclass
class OverloadStudy:
    """fig15-overload results keyed by (factor, controlled, platform).

    ``factor`` is the overload multiplier on the baseline rate; the
    uncongested baseline itself is recorded under factor 1.0 (observer
    plane, always uncontrolled)."""

    results: Dict[Tuple[float, bool, str], ScenarioResult]
    priorities: Dict[str, int]

    def at(
        self, factor: float, controlled: bool, platform: str
    ) -> ScenarioResult:
        return self.results[(factor, controlled, platform)]

    def class_p99(
        self, factor: float, controlled: bool, platform: str, rank: int
    ) -> float:
        """p99 latency of the admitted traffic of one criticality class."""
        cell = self.at(factor, controlled, platform)
        latencies = cell.series.completed_latencies_for_apps(
            apps_in_class(self.priorities, rank)
        )
        if len(latencies) == 0:
            return float("nan")
        return float(np.percentile(latencies, 99.0))


@REGISTRY.experiment(
    name="fig13-autoscale",
    description=(
        "Fig. 13 rate ramp under closed-loop autoscaling: scaling policy "
        "x shedding toggle, with live-capacity trajectory and warmup lag"
    ),
    params=(
        Param("rate_scales", "floats", (0.5, 1.0), "rate-envelope scales"),
        Param(
            "scaling_policies",
            "strs",
            DEFAULT_SCALING_POLICIES,
            "autoscaler formulas to compare",
        ),
        Param("max_instances", "int", 200, "fleet ceiling per platform"),
        Param("min_instances", "int", 20, "fleet floor the scaler holds"),
        Param(
            "target_utilization",
            "float",
            0.7,
            "busy fraction the utilization policy drives toward",
        ),
        Param(
            "queue_per_instance",
            "float",
            4.0,
            "queued requests per extra instance (queue_depth policy)",
        ),
        Param(
            "warmup_seconds",
            "float",
            2.5,
            "cold-start delay before scaled-up instances serve "
            "(see repro.cluster.control.warmup_from_coldstart)",
        ),
        Param(
            "scale_down_cooldown_seconds",
            "float",
            30.0,
            "minimum spacing between scale-down decisions",
        ),
        Param(
            "queue_delay_target_seconds",
            "float",
            0.5,
            "CoDel head-of-line delay target (shedding cells only)",
        ),
        Param(
            "control_interval_seconds", "float", 1.0, "controller tick"
        ),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {
            "rate_scales": (0.05,),
            "max_instances": 16,
            "min_instances": 2,
            "warmup_seconds": 1.0,
        },
        "paper": {
            "rate_scales": (0.5, 1.0),
            "max_instances": 200,
            "min_instances": 20,
        },
    },
    tags=("figure", "rack", "control"),
)
def _autoscale_experiment(
    ctx,
    rate_scales,
    scaling_policies,
    max_instances,
    min_instances,
    target_utilization,
    queue_per_instance,
    warmup_seconds,
    scale_down_cooldown_seconds,
    queue_delay_target_seconds,
    control_interval_seconds,
    seed,
    engine,
    context=None,
):
    context = context or ctx.suite_context(list(_PLATFORMS))
    harness = RackSweep(context, engine=engine)
    rows: List[dict] = []
    results: Dict[Tuple[float, str, bool, str], ScenarioResult] = {}
    for scaling_policy in scaling_policies:
        autoscaler = AutoscalerPolicy(
            policy=str(scaling_policy),
            min_instances=int(min_instances),
            target_utilization=float(target_utilization),
            queue_per_instance=float(queue_per_instance),
            warmup_seconds=float(warmup_seconds),
            scale_down_cooldown_seconds=float(scale_down_cooldown_seconds),
        )
        for shedding in (False, True):
            overload = None
            if shedding:
                overload = OverloadPolicy(
                    queue_delay_target_seconds=float(
                        queue_delay_target_seconds
                    )
                )
            plane = ControlPlane(
                autoscaler=autoscaler,
                overload=overload,
                control_interval_seconds=float(control_interval_seconds),
            )
            cells = harness.run(
                scenario_grid(
                    platforms=context.platform_names,
                    rate_scales=rate_scales,
                    max_instances=(max_instances,),
                    seed=seed,
                    control=plane,
                )
            )
            for cell in cells:
                live = cell.series.live_instances
                row = cell.as_row()
                row["scaling_policy"] = str(scaling_policy)
                row["shedding"] = shedding
                row["live_mean"] = (
                    round(float(live.mean()), 2) if len(live) else None
                )
                row["live_peak"] = int(live.max()) if len(live) else None
                rows.append(row)
                results[
                    (
                        cell.scenario.rate_scale,
                        str(scaling_policy),
                        shedding,
                        cell.scenario.platform,
                    )
                ] = cell
    return rows, AutoscaleStudy(results=results)


def run_autoscale(
    rate_scales=(0.5, 1.0),
    scaling_policies=DEFAULT_SCALING_POLICIES,
    max_instances: int = 200,
    min_instances: int = 20,
    target_utilization: float = 0.7,
    queue_per_instance: float = 4.0,
    warmup_seconds: float = 2.5,
    scale_down_cooldown_seconds: float = 30.0,
    queue_delay_target_seconds: float = 0.5,
    control_interval_seconds: float = 1.0,
    seed: int = 13,
    engine: str = "auto",
) -> AutoscaleStudy:
    """The Fig. 13 ramp under closed-loop autoscaling."""
    return REGISTRY.run(
        "fig13-autoscale",
        rate_scales=rate_scales,
        scaling_policies=scaling_policies,
        max_instances=max_instances,
        min_instances=min_instances,
        target_utilization=target_utilization,
        queue_per_instance=queue_per_instance,
        warmup_seconds=warmup_seconds,
        scale_down_cooldown_seconds=scale_down_cooldown_seconds,
        queue_delay_target_seconds=queue_delay_target_seconds,
        control_interval_seconds=control_interval_seconds,
        seed=seed,
        engine=engine,
    ).study


@REGISTRY.experiment(
    name="fig15-overload",
    description=(
        "Tail latency under 2-10x overload: brownout (CoDel + criticality "
        "shedding) vs uncontrolled collapse, per criticality class"
    ),
    params=(
        Param(
            "overload_factors",
            "floats",
            DEFAULT_OVERLOAD_FACTORS,
            "rate multipliers on the uncongested baseline",
        ),
        Param(
            "base_rate_scale",
            "float",
            0.5,
            "envelope scale of the uncongested 1x baseline",
        ),
        Param(
            "percentiles", "floats", DEFAULT_PERCENTILES, "report percentiles"
        ),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("queue_depth", "int", 10_000, "queue bound (collapse room)"),
        Param(
            "queue_delay_target_seconds",
            "float",
            0.15,
            "CoDel head-of-line delay target (controlled cells)",
        ),
        Param(
            "shed_fraction",
            "float",
            0.5,
            "fraction of the queue the CoDel shedder trims per tick",
        ),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {
            "overload_factors": (4.0,),
            "base_rate_scale": 0.03,
            "max_instances": 12,
            "queue_depth": 2_000,
        },
        "paper": {
            "overload_factors": DEFAULT_OVERLOAD_FACTORS,
        },
    },
    tags=("figure", "rack", "control", "overload"),
)
def _overload_experiment(
    ctx,
    overload_factors,
    base_rate_scale,
    percentiles,
    max_instances,
    queue_depth,
    queue_delay_target_seconds,
    shed_fraction,
    seed,
    engine,
    context=None,
):
    context = context or ctx.suite_context(list(_PLATFORMS))
    harness = RackSweep(context, engine=engine)
    priorities = criticality_classes(context.app_names)
    brownout = ControlPlane(
        overload=OverloadPolicy(
            queue_delay_target_seconds=float(queue_delay_target_seconds),
            shed_fraction=float(shed_fraction),
            priorities=priorities,
            min_shed_priority=1,  # criticality 0 is never shed
        )
    )
    observer = observer_plane(int(max_instances))

    rows: List[dict] = []
    results: Dict[Tuple[float, bool, str], ScenarioResult] = {}

    def run_cells(factor: float, controlled: bool) -> None:
        cells = harness.run(
            scenario_grid(
                platforms=context.platform_names,
                rate_scales=(float(base_rate_scale) * factor,),
                max_instances=(max_instances,),
                queue_depth=int(queue_depth),
                seed=seed,
                control=brownout if controlled else observer,
            )
        )
        for cell in cells:
            results[(factor, controlled, cell.scenario.platform)] = cell
            breakdown = cell.series.drop_breakdown()
            for rank in range(N_CRITICALITY_CLASSES):
                latencies = cell.series.completed_latencies_for_apps(
                    apps_in_class(priorities, rank)
                )
                for percentile in percentiles:
                    rows.append(
                        {
                            "overload_factor": factor,
                            "controlled": controlled,
                            "platform": cell.scenario.platform,
                            "criticality": rank,
                            "completed": int(len(latencies)),
                            "percentile": float(percentile),
                            "latency_s": (
                                round(
                                    float(
                                        np.percentile(latencies, percentile)
                                    ),
                                    6,
                                )
                                if len(latencies)
                                else None
                            ),
                            "dropped_shed": breakdown["shed"],
                            "dropped_queue_full": breakdown["queue_full"],
                        }
                    )

    # The uncongested baseline every overload cell is judged against.
    run_cells(1.0, controlled=False)
    for factor in overload_factors:
        for controlled in (False, True):
            run_cells(float(factor), controlled)
    return rows, OverloadStudy(results=results, priorities=priorities)


def run_overload(
    overload_factors=DEFAULT_OVERLOAD_FACTORS,
    base_rate_scale: float = 0.5,
    percentiles=DEFAULT_PERCENTILES,
    max_instances: int = 200,
    queue_depth: int = 10_000,
    queue_delay_target_seconds: float = 0.15,
    shed_fraction: float = 0.5,
    seed: int = 13,
    engine: str = "auto",
) -> OverloadStudy:
    """Brownout vs collapse under 2-10x overload."""
    return REGISTRY.run(
        "fig15-overload",
        overload_factors=overload_factors,
        base_rate_scale=base_rate_scale,
        percentiles=percentiles,
        max_instances=max_instances,
        queue_depth=queue_depth,
        queue_delay_target_seconds=queue_delay_target_seconds,
        shed_fraction=shed_fraction,
        seed=seed,
        engine=engine,
    ).study
