"""Fig. 11: normalized system-energy reduction.

End-to-end system energy (compute + host CPU/system stack + PCIe +
storage; network omitted, as in the paper) per invocation, normalized to
the Baseline (CPU).  Paper headlines: DSCS 3.5x average reduction vs CPU
and 1.9x vs NS-FPGA; PPE Detection gains the most (~8x), Credit Risk
Assessment the least (~1x).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.common import (
    BASELINE_NAME,
    SuiteContext,
    geomean_speedup,
)
from repro.experiments.registry import REGISTRY, Param
from repro.experiments import report


@dataclass
class EnergyStudy:
    """Per-platform, per-benchmark energy and normalized reductions."""

    energy_joules: Dict[str, Dict[str, float]]
    reductions: Dict[str, Dict[str, float]]

    def geomean(self, platform: str) -> float:
        return geomean_speedup(self.reductions[platform])

    def relative(self, platform_a: str, platform_b: str) -> float:
        ratios = {
            app: self.energy_joules[platform_b][app]
            / self.energy_joules[platform_a][app]
            for app in self.energy_joules[platform_a]
        }
        return geomean_speedup(ratios)


@REGISTRY.experiment(
    name="fig11",
    description="Fig. 11: normalized system-energy reduction",
    params=(
        Param("seed", "int", 5, "RNG seed"),
        Param("averages_of", "int", 16, "invocations averaged per pair"),
        Param("context", "object", None, cli=False),
    ),
    profiles={"fast": {"averages_of": 4}, "paper": {"averages_of": 16}},
    tags=("figure", "energy"),
)
def _experiment(ctx, seed, averages_of, context=None):
    context = context or ctx.suite_context()
    energy: Dict[str, Dict[str, float]] = {}
    for platform_name, model in context.models.items():
        rng = np.random.default_rng(seed)
        row = {}
        for app_name, app in context.applications.items():
            joules = [
                model.invoke(app, rng).energy_joules for _ in range(averages_of)
            ]
            row[app_name] = float(np.mean(joules))
        energy[platform_name] = row
    base = energy[BASELINE_NAME]
    reductions = {
        platform: {app: base[app] / row[app] for app in row}
        for platform, row in energy.items()
    }
    study = EnergyStudy(energy_joules=energy, reductions=reductions)
    rows = report.speedup_rows(study.reductions)
    for row in rows:
        row["geomean"] = round(study.geomean(str(row["platform"])), 3)
    return rows, study


def run(
    seed: int = 5, averages_of: int = 16, context: SuiteContext = None
) -> EnergyStudy:
    """Regenerate Fig. 11."""
    return REGISTRY.run(
        "fig11", seed=seed, averages_of=averages_of, context=context
    ).study
