"""Experiment definitions: the Table 1 suite and per-figure harnesses.

Each ``figNN`` module regenerates the rows/series of one figure from the
paper's evaluation (§6.2); :mod:`~repro.experiments.benchmarks` defines the
eight-application suite every figure runs over.  Every harness registers
an :class:`~repro.experiments.registry.ExperimentSpec` into the shared
:data:`~repro.experiments.registry.REGISTRY`, which is what the CLI and
programmatic callers drive::

    from repro.experiments import REGISTRY, load_all

    load_all()
    result = REGISTRY.run("fig13", profile="fast")
    print(result.to_markdown())
"""

from repro.experiments.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_suite,
    build_application,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentRegistry,
    ExperimentSpec,
    Param,
    load_all,
)
from repro.experiments.results import ExperimentResult

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentSpec",
    "Param",
    "REGISTRY",
    "benchmark_suite",
    "build_application",
    "load_all",
]
