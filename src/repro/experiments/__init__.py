"""Experiment definitions: the Table 1 suite and per-figure harnesses.

Each ``figNN`` module regenerates the rows/series of one figure from the
paper's evaluation (§6.2); :mod:`~repro.experiments.benchmarks` defines the
eight-application suite every figure runs over.
"""

from repro.experiments.benchmarks import (
    BENCHMARKS,
    BenchmarkSpec,
    benchmark_suite,
    build_application,
)

__all__ = [
    "BENCHMARKS",
    "BenchmarkSpec",
    "benchmark_suite",
    "build_application",
]
