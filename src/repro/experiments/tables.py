"""Table 1 (benchmark suite) and Table 2 (platform specs) as data."""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.benchmarks import BENCHMARKS
from repro.experiments.registry import REGISTRY
from repro.platforms.base import AnalyticalPlatform
from repro.platforms.dsa import DSAPlatform
from repro.platforms.registry import table2_platforms
from repro.units import MB


def table1_rows() -> List[Dict[str, object]]:
    """One row per benchmark: functions, model, params, payload sizes."""
    rows: List[Dict[str, object]] = []
    for spec in BENCHMARKS:
        app = spec.build()
        inference = app.inference_function
        stats = inference.graph.stats()
        rows.append(
            {
                "benchmark": spec.name,
                "description": spec.description,
                "functions": [f.name.split("/")[-1] for f in app.functions],
                "model": inference.graph.name,
                "parameters_millions": round(stats.weight_bytes / 1e6, 1),
                "gmacs": round(stats.total_macs / 1e9, 2),
                "input_mb": round(app.input_bytes / MB, 2),
                "output_kb": round(app.edge_bytes[-2] / 1024, 1),
            }
        )
    return rows


def table2_rows() -> List[Dict[str, object]]:
    """One row per evaluated platform with its key specs."""
    rows: List[Dict[str, object]] = []
    for platform in table2_platforms():
        row: Dict[str, object] = {
            "platform": platform.name,
            "kind": platform.kind.value,
            "active_power_w": platform.active_power_watts,
            "capex_usd": platform.capex_usd,
            "driver_overhead_ms": round(platform.driver_overhead_seconds * 1e3, 2),
        }
        if isinstance(platform, DSAPlatform):
            config = platform.dsa_config
            row["compute"] = (
                f"DSA {config.pe_rows}x{config.pe_cols}, "
                f"{config.buffer_bytes // MB} MB, {config.memory.name}, "
                f"{config.frequency_hz / 1e9:.2f} GHz, {config.tech_node_nm} nm"
            )
        elif isinstance(platform, AnalyticalPlatform):
            row["compute"] = (
                f"{platform.effective_flops / 1e9:.0f} GFLOPS sustained, "
                f"{platform.memory_bandwidth_bytes_per_s / 1e9:.0f} GB/s"
            )
        rows.append(row)
    return rows


@REGISTRY.experiment(
    name="table1",
    description="Table 1: the eight-application benchmark suite",
    tags=("table",),
)
def _table1_experiment(ctx):
    return table1_rows()


@REGISTRY.experiment(
    name="table2",
    description="Table 2: evaluated platforms and their key specs",
    tags=("table",),
)
def _table2_experiment(ctx):
    return table2_rows()
