"""Fig. 12: normalized cost efficiency.

Cost efficiency = throughput x T / (CAPEX + OPEX) per the E3 methodology,
over a three-year ownership period at 30% utilisation.  Paper headlines:
DSCS-Serverless 3.4x the baseline's cost efficiency; NS-FPGA second at
1.6x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.analysis.cost import CostModel, system_cost_for
from repro.experiments.common import (
    BASELINE_NAME,
    FAST_SAMPLE_COUNT,
    SuiteContext,
    p95_latency_table,
)
from repro.experiments.registry import REGISTRY, Param


@dataclass
class CostStudy:
    """Absolute and normalized cost efficiencies per platform."""

    cost_efficiency: Dict[str, float]
    normalized: Dict[str, float]
    throughput_rps: Dict[str, float]
    total_cost_usd: Dict[str, float]


@REGISTRY.experiment(
    name="fig12",
    description="Fig. 12: normalized cost efficiency (E3 methodology)",
    params=(
        Param("samples", "int", FAST_SAMPLE_COUNT, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
        Param("context", "object", None, cli=False),
        Param("cost_model", "object", None, cli=False),
    ),
    profiles={"fast": {"samples": 300}, "paper": {"samples": 10_000}},
    tags=("figure", "cost"),
)
def _experiment(ctx, samples, seed, context=None, cost_model=None):
    context = context or ctx.suite_context()
    cost_model = cost_model or CostModel()
    latency = p95_latency_table(context, count=samples, seed=seed)

    efficiency: Dict[str, float] = {}
    throughput: Dict[str, float] = {}
    total_cost: Dict[str, float] = {}
    for platform_name, model in context.models.items():
        per_app_rps = [1.0 / lat for lat in latency[platform_name].values()]
        rps = float(np.mean(per_app_rps))
        system = system_cost_for(model.platform)
        efficiency[platform_name] = cost_model.cost_efficiency(rps, system)
        throughput[platform_name] = rps
        total_cost[platform_name] = cost_model.total_cost_usd(system)

    base = efficiency[BASELINE_NAME]
    normalized = {name: value / base for name, value in efficiency.items()}
    study = CostStudy(
        cost_efficiency=efficiency,
        normalized=normalized,
        throughput_rps=throughput,
        total_cost_usd=total_cost,
    )
    rows = [
        {
            "platform": platform,
            "throughput_rps": round(study.throughput_rps[platform], 3),
            "total_cost_usd": round(study.total_cost_usd[platform], 0),
            "normalized": round(study.normalized[platform], 3),
        }
        for platform in study.normalized
    ]
    return rows, study


def run(
    count: int = FAST_SAMPLE_COUNT,
    seed: int = 7,
    context: SuiteContext = None,
    cost_model: CostModel = None,
) -> CostStudy:
    """Regenerate Fig. 12.

    Throughput per platform is the average peak request rate across the
    suite (reciprocal of mean p95 latency), matching the paper's
    "average peak throughput" framing.
    """
    return REGISTRY.run(
        "fig12", samples=count, seed=seed, context=context, cost_model=cost_model
    ).study
