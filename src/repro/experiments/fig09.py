"""Fig. 9: normalized end-to-end speedup across all platforms.

p95 latency over sampled requests per (platform, benchmark), normalized to
the Baseline (CPU).  Paper headlines: DSCS-Serverless 3.6x vs CPU, 2.7x vs
GPU, 3.7x vs NS-ARM, 1.7x vs NS-FPGA; GPU ~1.3x; FPGA and NS-ARM slightly
below baseline; NS-Mobile-GPU 1.35x; NS-FPGA 2.2x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    FAST_SAMPLE_COUNT,
    SuiteContext,
    geomean_speedup,
    p95_latency_table,
    speedups_vs_baseline,
)
from repro.experiments.registry import REGISTRY, Param
from repro.experiments import report


@dataclass
class SpeedupStudy:
    """Per-platform, per-benchmark normalized speedups."""

    latency_seconds: Dict[str, Dict[str, float]]
    speedups: Dict[str, Dict[str, float]]

    def geomean(self, platform: str) -> float:
        return geomean_speedup(self.speedups[platform])

    def relative(self, platform_a: str, platform_b: str) -> float:
        """Geomean speedup of ``platform_a`` over ``platform_b``."""
        ratios = {
            app: self.latency_seconds[platform_b][app]
            / self.latency_seconds[platform_a][app]
            for app in self.latency_seconds[platform_a]
        }
        return geomean_speedup(ratios)


@REGISTRY.experiment(
    name="fig09",
    description="Fig. 9: normalized end-to-end speedup across all platforms",
    params=(
        Param("samples", "int", FAST_SAMPLE_COUNT, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
        Param("context", "object", None, cli=False),
    ),
    profiles={"fast": {"samples": 300}, "paper": {"samples": 10_000}},
    tags=("figure", "speedup"),
)
def _experiment(ctx, samples, seed, context=None):
    context = context or ctx.suite_context()
    latency = p95_latency_table(context, count=samples, seed=seed)
    study = SpeedupStudy(
        latency_seconds=latency, speedups=speedups_vs_baseline(latency)
    )
    rows = report.speedup_rows(study.speedups)
    for row in rows:
        row["geomean"] = round(study.geomean(str(row["platform"])), 3)
    return rows, study


def run(
    count: int = FAST_SAMPLE_COUNT,
    seed: int = 7,
    context: SuiteContext = None,
) -> SpeedupStudy:
    """Regenerate Fig. 9."""
    return REGISTRY.run("fig09", samples=count, seed=seed, context=context).study
