"""Result serialisation: experiment outputs to JSON/CSV/markdown.

An open-source release needs machine-readable artifacts; these writers
take the per-figure study objects and persist flat tables.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.errors import ConfigurationError

Row = Mapping[str, Union[str, int, float, bool, None]]


def _validate_rows(rows: Sequence[Row]) -> List[Dict[str, object]]:
    if not rows:
        raise ConfigurationError("cannot serialise an empty result table")
    keys = list(rows[0])
    normalised = []
    for row in rows:
        if list(row) != keys:
            raise ConfigurationError(
                f"inconsistent row keys: {list(row)} vs {keys}"
            )
        normalised.append(dict(row))
    return normalised


def write_json(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows as a JSON array of objects."""
    normalised = _validate_rows(rows)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(normalised, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return target


def write_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows as CSV with a header."""
    normalised = _validate_rows(rows)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(normalised[0]))
        writer.writeheader()
        writer.writerows(normalised)
    return target


def read_json(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read back a JSON table written by :func:`write_json`."""
    with Path(path).open() as handle:
        data = json.load(handle)
    if not isinstance(data, list):
        raise ConfigurationError(f"{path}: expected a JSON array of rows")
    return data


def to_markdown(rows: Sequence[Row], title: str = "") -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    normalised = _validate_rows(rows)
    keys = list(normalised[0])
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(keys) + " |")
    lines.append("| " + " | ".join("---" for _ in keys) + " |")
    for row in normalised:
        lines.append("| " + " | ".join(str(row[k]) for k in keys) + " |")
    return "\n".join(lines) + "\n"


def speedup_rows(speedups: Dict[str, Dict[str, float]]) -> List[Dict[str, object]]:
    """Flatten a ``{platform: {benchmark: value}}`` table into rows."""
    if not speedups:
        raise ConfigurationError("empty speedup table")
    rows: List[Dict[str, object]] = []
    for platform, per_app in speedups.items():
        row: Dict[str, object] = {"platform": platform}
        row.update({app: round(value, 3) for app, value in per_app.items()})
        rows.append(row)
    return rows
