"""Result serialisation: experiment outputs to JSON/CSV/markdown.

An open-source release needs machine-readable artifacts; these writers
take the per-figure study objects and persist flat tables.  Two formats
coexist:

- **plain row tables** — a JSON array / CSV file of flat dicts
  (:func:`write_json`, :func:`write_csv`); and
- **result documents** — the registry's uniform
  ``{experiment, params, provenance, rows}`` envelope
  (:func:`write_result_json`, :func:`write_result_csv`).
  :func:`read_json` transparently returns a :class:`ResultTable` (a
  ``list`` of rows carrying the envelope metadata as attributes) for
  these, so row-oriented callers keep working unchanged.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Mapping, Sequence, Union

from repro.errors import ConfigurationError

Row = Mapping[str, Union[str, int, float, bool, None]]

# Keys a result document must carry (see repro.experiments.results).
RESULT_DOCUMENT_KEYS = frozenset({"experiment", "params", "provenance", "rows"})


class ResultTable(List[Dict[str, object]]):
    """Rows of a result document, plus its envelope as attributes.

    Compares equal to (and iterates as) a plain list of rows, so callers
    that only care about the table never notice the provenance riding
    along.
    """

    def __init__(
        self,
        rows: Sequence[Row],
        experiment: str = "",
        params: Mapping[str, object] = (),
        provenance: Mapping[str, object] = (),
    ) -> None:
        super().__init__(dict(row) for row in rows)
        self.experiment = experiment
        self.params = dict(params)
        self.provenance = dict(provenance)

    def document(self) -> Dict[str, object]:
        return {
            "experiment": self.experiment,
            "params": dict(self.params),
            "provenance": dict(self.provenance),
            "rows": [dict(row) for row in self],
        }


def _validate_rows(rows: Sequence[Row]) -> List[Dict[str, object]]:
    if not rows:
        raise ConfigurationError("cannot serialise an empty result table")
    keys = list(rows[0])
    normalised = []
    for row in rows:
        if list(row) != keys:
            raise ConfigurationError(
                f"inconsistent row keys: {list(row)} vs {keys}"
            )
        normalised.append(dict(row))
    return normalised


def write_json(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows as a JSON array of objects."""
    normalised = _validate_rows(rows)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(normalised, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return target


def write_csv(rows: Sequence[Row], path: Union[str, Path]) -> Path:
    """Write rows as CSV with a header."""
    normalised = _validate_rows(rows)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=list(normalised[0]))
        writer.writeheader()
        writer.writerows(normalised)
    return target


def read_json(path: Union[str, Path]) -> List[Dict[str, object]]:
    """Read back a JSON table written by :func:`write_json` or
    :func:`write_result_json`.

    Plain arrays come back as a ``list`` of rows; result documents come
    back as a :class:`ResultTable` — still a list of rows, with
    ``experiment`` / ``params`` / ``provenance`` attached.
    """
    with Path(path).open() as handle:
        data = json.load(handle)
    if isinstance(data, list):
        return data
    if isinstance(data, dict) and RESULT_DOCUMENT_KEYS <= set(data):
        return ResultTable(
            data["rows"],
            experiment=data["experiment"],
            params=data["params"],
            provenance=data["provenance"],
        )
    raise ConfigurationError(
        f"{path}: expected a JSON array of rows or a result document"
    )


# ---------------------------------------------------------------------------
# Result documents: the registry's uniform envelope.
# ---------------------------------------------------------------------------


def _validate_document(document: Mapping[str, object]) -> Dict[str, object]:
    missing = RESULT_DOCUMENT_KEYS - set(document)
    if missing:
        raise ConfigurationError(
            f"result document is missing {sorted(missing)}"
        )
    normalised = dict(document)
    normalised["rows"] = _validate_rows(document["rows"])
    return normalised


def write_result_json(
    document: Mapping[str, object], path: Union[str, Path]
) -> Path:
    """Write a result document; read it back with :func:`read_json`."""
    normalised = _validate_document(document)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w") as handle:
        json.dump(normalised, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return target


# Column kinds the typed CSV codec understands.  Scalar kinds store the
# value verbatim (CSV quoting makes strings lossless); ``json`` covers
# None, lists, and mixed-type columns.
_CSV_KINDS = ("int", "float", "bool", "str", "json")


def _column_kind(values: Sequence[object]) -> str:
    kinds = set()
    for value in values:
        if isinstance(value, bool):
            kinds.add("bool")
        elif isinstance(value, int):
            kinds.add("int")
        elif isinstance(value, float):
            kinds.add("float")
        elif isinstance(value, str):
            kinds.add("str")
        else:
            kinds.add("json")
    if len(kinds) == 1:
        return kinds.pop()
    if kinds <= {"int", "float"}:
        return "float"
    return "json"


def _encode_cell(value: object, kind: str) -> str:
    if kind == "json":
        return json.dumps(value)
    if kind == "float":
        return repr(float(value))
    return str(value)


def _decode_cell(text: str, kind: str) -> object:
    if kind == "int":
        return int(text)
    if kind == "float":
        return float(text)
    if kind == "bool":
        if text not in ("True", "False"):
            raise ConfigurationError(f"bad bool cell {text!r}")
        return text == "True"
    if kind == "str":
        return text
    return json.loads(text)


def write_result_csv(
    document: Mapping[str, object], path: Union[str, Path]
) -> Path:
    """Write a result document as CSV, losslessly.

    The envelope (experiment, params, provenance) and the per-column
    type schema ride in ``#``-prefixed header comments; cells are
    encoded per their column's declared kind so :func:`read_result_csv`
    reconstructs the exact document.
    """
    normalised = _validate_document(document)
    rows = normalised["rows"]
    keys = list(rows[0])
    schema = {key: _column_kind([row[key] for row in rows]) for key in keys}
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        for field in ("experiment", "params", "provenance"):
            handle.write(f"# {field}: {json.dumps(normalised[field])}\n")
        handle.write(f"# schema: {json.dumps(schema)}\n")
        writer = csv.writer(handle)
        writer.writerow(keys)
        for row in rows:
            writer.writerow(
                [_encode_cell(row[key], schema[key]) for key in keys]
            )
    return target


def read_result_csv(path: Union[str, Path]) -> Dict[str, object]:
    """Read back a document written by :func:`write_result_csv`."""
    header: Dict[str, object] = {}
    body: List[str] = []
    in_header = True
    with Path(path).open(newline="") as handle:
        for line in handle:
            # Only the leading comment block is envelope metadata; once
            # the CSV body starts, a cell that happens to begin with
            # "# " (or a quoted cell spanning lines) is data.
            if in_header and line.startswith("# "):
                field, _, payload = line[2:].partition(":")
                header[field.strip()] = json.loads(payload)
            else:
                in_header = False
                body.append(line)
    missing = (RESULT_DOCUMENT_KEYS - {"rows"} | {"schema"}) - set(header)
    if missing:
        raise ConfigurationError(
            f"{path}: result CSV is missing header comments {sorted(missing)}"
        )
    schema = header["schema"]
    reader = csv.reader(body)
    keys = next(reader)
    rows = [
        {
            key: _decode_cell(cell, schema[key])
            for key, cell in zip(keys, record)
        }
        for record in reader
    ]
    return {
        "experiment": header["experiment"],
        "params": header["params"],
        "provenance": header["provenance"],
        "rows": rows,
    }


def to_markdown(rows: Sequence[Row], title: str = "") -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    normalised = _validate_rows(rows)
    keys = list(normalised[0])
    lines = []
    if title:
        lines.append(f"### {title}")
        lines.append("")
    lines.append("| " + " | ".join(keys) + " |")
    lines.append("| " + " | ".join("---" for _ in keys) + " |")
    for row in normalised:
        lines.append("| " + " | ".join(str(row[k]) for k in keys) + " |")
    return "\n".join(lines) + "\n"


def speedup_rows(speedups: Dict[str, Dict[str, float]]) -> List[Dict[str, object]]:
    """Flatten a ``{platform: {benchmark: value}}`` table into rows."""
    if not speedups:
        raise ConfigurationError("empty speedup table")
    rows: List[Dict[str, object]] = []
    for platform, per_app in speedups.items():
        row: Dict[str, object] = {"platform": platform}
        row.update({app: round(value, 3) for app, value in per_app.items()})
        rows.append(row)
    return rows
