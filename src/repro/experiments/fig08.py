"""Fig. 8: area-performance Pareto frontier of the DSA design space (45 nm).

Same sweep as Fig. 7 with chip area (the paper's proxy for ASIC
fabrication cost) as the cost axis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerator.config import DSAConfig
from repro.dse.explorer import DSEExplorer
from repro.dse.space import design_space
from repro.experiments.fig07 import ParetoStudy


def run(
    square_only: bool = True,
    configs: Optional[Sequence[DSAConfig]] = None,
    explorer: Optional[DSEExplorer] = None,
    workers: Optional[int] = None,
) -> ParetoStudy:
    """Regenerate the area-performance study.

    ``workers`` > 1 fans the sweep over a process pool, exactly as in
    :func:`repro.experiments.fig07.run`.
    """
    explorer = explorer or DSEExplorer()
    candidates = list(configs) if configs else design_space(square_only=square_only)
    results = explorer.sweep(candidates, workers=workers)
    frontier = explorer.area_pareto(results)
    best = explorer.best_feasible(results)
    return ParetoStudy(results=results, frontier=frontier, best_feasible=best)
