"""Fig. 8: area-performance Pareto frontier of the DSA design space (45 nm).

Same sweep as Fig. 7 with chip area (the paper's proxy for ASIC
fabrication cost) as the cost axis.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.accelerator.config import DSAConfig
from repro.dse.explorer import DSEExplorer
from repro.experiments.fig07 import (
    ParetoStudy,
    _SWEEP_PARAMS,
    _SWEEP_PROFILES,
    _best_feasible_headline,
    pareto_rows,
    sweep_study,
)
from repro.experiments.registry import REGISTRY


@REGISTRY.experiment(
    name="fig08",
    description="Fig. 8: area-performance Pareto frontier of the DSA space",
    params=_SWEEP_PARAMS,
    profiles=_SWEEP_PROFILES,
    tags=("figure", "dse"),
    headline=_best_feasible_headline,
)
def _experiment(ctx, space, max_configs, workers=None, configs=None, explorer=None):
    study = sweep_study(
        space=space,
        max_configs=max_configs,
        frontier="area",
        configs=configs,
        explorer=explorer,
        workers=workers,
    )
    return pareto_rows(study), study


def run(
    square_only: bool = True,
    configs: Optional[Sequence[DSAConfig]] = None,
    explorer: Optional[DSEExplorer] = None,
    workers: Optional[int] = None,
) -> ParetoStudy:
    """Regenerate the area-performance study.

    ``workers`` > 1 fans the sweep over a process pool, exactly as in
    :func:`repro.experiments.fig07.run`.
    """
    return REGISTRY.run(
        "fig08",
        space="square" if square_only else "full",
        configs=configs,
        explorer=explorer,
        workers=workers,
    ).study
