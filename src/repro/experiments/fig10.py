"""Fig. 10: runtime breakdown for every platform and benchmark.

Shows where time goes on each system: traditional accelerators shrink
compute but stay communication-bound; near-storage platforms remove the
network and shift the bottleneck back to compute; DSCS accelerates that
too, leaving the system stack and the CPU-resident notification function
as the residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.breakdown import Component
from repro.experiments.common import SuiteContext
from repro.experiments.registry import REGISTRY, Param


@dataclass(frozen=True)
class PlatformBreakdown:
    """Average per-component seconds for one (platform, benchmark) pair."""

    platform: str
    benchmark: str
    seconds_by_component: Dict[str, float]

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds_by_component.values())

    def fraction(self, component: Component) -> float:
        total = self.total_seconds
        if total == 0:
            return 0.0
        return self.seconds_by_component.get(component.value, 0.0) / total


@REGISTRY.experiment(
    name="fig10",
    description="Fig. 10: runtime breakdown for every platform and benchmark",
    params=(
        Param("seed", "int", 5, "RNG seed"),
        Param("averages_of", "int", 16, "invocations averaged per pair"),
        Param("context", "object", None, cli=False),
    ),
    profiles={"fast": {"averages_of": 4}, "paper": {"averages_of": 16}},
    tags=("figure", "breakdown"),
)
def _experiment(ctx, seed, averages_of, context=None):
    context = context or ctx.suite_context()
    results: Dict[str, Dict[str, PlatformBreakdown]] = {}
    for platform_name, model in context.models.items():
        rng = np.random.default_rng(seed)
        row: Dict[str, PlatformBreakdown] = {}
        for app_name, app in context.applications.items():
            sums: Dict[str, float] = {}
            for _ in range(averages_of):
                invocation = model.invoke(app, rng)
                for component, value in invocation.latency.seconds.items():
                    sums[component.value] = sums.get(component.value, 0.0) + value
            averaged = {k: v / averages_of for k, v in sums.items()}
            row[app_name] = PlatformBreakdown(
                platform=platform_name,
                benchmark=app_name,
                seconds_by_component=averaged,
            )
        results[platform_name] = row
    rows = [
        dict(
            {
                "platform": entry.platform,
                "benchmark": entry.benchmark,
                "total_ms": round(entry.total_seconds * 1e3, 3),
            },
            **{
                f"{component.value}_ms": round(
                    entry.seconds_by_component.get(component.value, 0.0) * 1e3,
                    3,
                )
                for component in Component
            },
        )
        for per_app in results.values()
        for entry in per_app.values()
    ]
    return rows, results


def run(
    seed: int = 5, averages_of: int = 16, context: SuiteContext = None
) -> Dict[str, Dict[str, PlatformBreakdown]]:
    """Regenerate Fig. 10: ``{platform: {benchmark: breakdown}}``."""
    return REGISTRY.run(
        "fig10", seed=seed, averages_of=averages_of, context=context
    ).study
