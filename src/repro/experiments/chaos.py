"""Deterministic chaos studies: the rack under faults and retries.

Two registered experiments replay the paper's at-scale workloads with
the fault-injection layer of :mod:`repro.cluster.faults` switched on:

- ``fig13-chaos`` — the Fig. 13 trace crossed with instance MTBF and a
  retry policy toggle.  Shows how availability and the per-reason drop
  breakdown (queue overflow vs queue timeout vs crash kill) respond to
  churn, and how much of the loss a bounded-retry policy wins back.
- ``fig15-chaos`` — the Fig. 15 storage-tail sensitivity study under
  correlated node outages, with and without hedged dispatch.  Hedging
  races a duplicate service draw against the primary after a fixed
  delay, so it clips the service-time tail that heavy storage fabrics
  induce (it cannot clip slowdown spikes, which multiply both copies).

Every cell runs through :class:`~repro.cluster.sweep.RackSweep`, so
traces and service-sample blocks are shared across the grid and each
cell is bit-identical to a standalone :class:`RackSimulation` run —
the chaos engines are oracle-checked the same way the fault-free
engines are (``tests/test_fault_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cluster.faults import FaultSchedule, RetryPolicy
from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.core.fabric import StorageFabric
from repro.experiments.common import BASELINE_NAME, DSCS_NAME
from repro.experiments.registry import REGISTRY, Param

_PLATFORMS = (BASELINE_NAME, DSCS_NAME)

DEFAULT_MTBF_SECONDS = (120.0, 600.0)
DEFAULT_TAIL_RATIOS = (2.1, 4.0)
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class ChaosAtScaleStudy:
    """fig13-chaos results keyed by (mtbf, retry-enabled, platform)."""

    results: Dict[Tuple[float, bool, str], List[ScenarioResult]]

    def cells(
        self, mtbf_seconds: float, retry: bool, platform: str
    ) -> List[ScenarioResult]:
        return self.results[(mtbf_seconds, retry, platform)]


@dataclass
class ChurnTailStudy:
    """fig15-chaos results keyed by (tail ratio, hedged, platform)."""

    results: Dict[Tuple[float, bool, str], ScenarioResult]

    def at(
        self, tail_ratio: float, hedged: bool, platform: str
    ) -> ScenarioResult:
        return self.results[(tail_ratio, hedged, platform)]


@REGISTRY.experiment(
    name="fig13-chaos",
    description=(
        "Fig. 13 trace under instance churn: rate x MTBF x retry policy, "
        "with availability and per-reason drop breakdown"
    ),
    params=(
        Param("rate_scales", "floats", (0.5, 1.0), "rate-envelope scales"),
        Param(
            "mtbf_seconds",
            "floats",
            DEFAULT_MTBF_SECONDS,
            "per-instance mean time between failures",
        ),
        Param("mttr_seconds", "float", 30.0, "mean instance repair time"),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param(
            "timeout_seconds",
            "float",
            5.0,
            "queue-wait timeout when the retry policy is on",
        ),
        Param("max_retries", "int", 2, "retry budget per request"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("fault_seed", "int", 404, "fault-schedule RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {
            "rate_scales": (0.05,),
            "max_instances": 20,
            "mtbf_seconds": (90.0,),
        },
        "paper": {
            "rate_scales": (0.5, 1.0),
            "max_instances": 200,
            "mtbf_seconds": DEFAULT_MTBF_SECONDS,
        },
    },
    tags=("figure", "rack", "chaos"),
)
def _chaos_experiment(
    ctx,
    rate_scales,
    mtbf_seconds,
    mttr_seconds,
    max_instances,
    timeout_seconds,
    max_retries,
    seed,
    fault_seed,
    engine,
    context=None,
):
    context = context or ctx.suite_context(list(_PLATFORMS))
    harness = RackSweep(context, engine=engine)
    rows: List[dict] = []
    results: Dict[Tuple[float, bool, str], List[ScenarioResult]] = {}
    for mtbf in mtbf_seconds:
        faults = FaultSchedule(
            instance_mtbf_seconds=float(mtbf),
            instance_mttr_seconds=float(mttr_seconds),
            seed=int(fault_seed),
        )
        for retry_on in (False, True):
            retry: Optional[RetryPolicy] = None
            if retry_on:
                retry = RetryPolicy(
                    timeout_seconds=float(timeout_seconds),
                    max_retries=int(max_retries),
                )
            cells = harness.run(
                scenario_grid(
                    platforms=context.platform_names,
                    rate_scales=rate_scales,
                    max_instances=(max_instances,),
                    seed=seed,
                    faults=faults,
                    retry=retry,
                )
            )
            for cell in cells:
                row = cell.as_row()
                row["mtbf_s"] = float(mtbf)
                row["retry"] = retry_on
                rows.append(row)
            for platform in context.platform_names:
                results[(float(mtbf), retry_on, platform)] = [
                    cell
                    for cell in cells
                    if cell.scenario.platform == platform
                ]
    return rows, ChaosAtScaleStudy(results=results)


def run_chaos(
    rate_scales=(0.5, 1.0),
    mtbf_seconds=DEFAULT_MTBF_SECONDS,
    mttr_seconds: float = 30.0,
    max_instances: int = 200,
    timeout_seconds: float = 5.0,
    max_retries: int = 2,
    seed: int = 13,
    fault_seed: int = 404,
    engine: str = "auto",
) -> ChaosAtScaleStudy:
    """The Fig. 13 workload under instance churn, retry on vs off."""
    return REGISTRY.run(
        "fig13-chaos",
        rate_scales=rate_scales,
        mtbf_seconds=mtbf_seconds,
        mttr_seconds=mttr_seconds,
        max_instances=max_instances,
        timeout_seconds=timeout_seconds,
        max_retries=max_retries,
        seed=seed,
        fault_seed=fault_seed,
        engine=engine,
    ).study


@REGISTRY.experiment(
    name="fig15-chaos",
    description=(
        "Fig. 15 storage tails under correlated node churn, with and "
        "without hedged dispatch"
    ),
    params=(
        Param(
            "tail_ratios", "floats", DEFAULT_TAIL_RATIOS, "p99/median ratios"
        ),
        Param(
            "percentiles",
            "floats",
            DEFAULT_PERCENTILES,
            "report percentiles",
        ),
        Param(
            "node_mtbf_seconds",
            "float",
            300.0,
            "per-node mean time between outages",
        ),
        Param("node_mttr_seconds", "float", 60.0, "mean node repair time"),
        Param("node_size", "int", 8, "instances lost per node outage"),
        Param(
            "hedge_after_seconds",
            "float",
            0.25,
            "hedged-dispatch trigger delay (hedged cells only; the "
            "benchmark apps' median service time is 0.15-0.5 s)",
        ),
        Param("rate_scale", "float", 1.0, "scale on the request-rate envelope"),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("fault_seed", "int", 404, "fault-schedule RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
    ),
    profiles={
        "fast": {
            "tail_ratios": (2.1,),
            "rate_scale": 0.05,
            "max_instances": 20,
            "node_size": 4,
        },
        "paper": {"tail_ratios": DEFAULT_TAIL_RATIOS},
    },
    tags=("figure", "rack", "sensitivity", "chaos"),
)
def _churn_experiment(
    ctx,
    tail_ratios,
    percentiles,
    node_mtbf_seconds,
    node_mttr_seconds,
    node_size,
    hedge_after_seconds,
    rate_scale,
    max_instances,
    seed,
    fault_seed,
    engine,
):
    faults = FaultSchedule(
        node_outage_mtbf_seconds=float(node_mtbf_seconds),
        node_mttr_seconds=float(node_mttr_seconds),
        node_size=int(node_size),
        seed=int(fault_seed),
    )
    rows: List[dict] = []
    results: Dict[Tuple[float, bool, str], ScenarioResult] = {}
    trace = None
    for ratio in tail_ratios:
        # Same fabric-swap reuse as fig15-rack: each ratio rewires the
        # shared base context; one trace realisation serves every cell.
        context = ctx.suite_context(
            list(_PLATFORMS), fabric=StorageFabric().with_tail_ratio(ratio)
        )
        harness = RackSweep(context, engine=engine)
        if trace is None:
            trace = harness.trace_for(seed, rate_scale)
        for hedged in (False, True):
            retry = RetryPolicy(
                hedge_after_seconds=(
                    float(hedge_after_seconds) if hedged else None
                )
            )
            cells = harness.run(
                scenario_grid(
                    platforms=context.platform_names,
                    rate_scales=(rate_scale,),
                    max_instances=(max_instances,),
                    seed=seed,
                    faults=faults,
                    retry=retry if hedged else None,
                ),
                trace=trace,
            )
            for cell in cells:
                results[(float(ratio), hedged, cell.scenario.platform)] = cell
                for percentile in percentiles:
                    rows.append(
                        {
                            "tail_ratio": float(ratio),
                            "platform": cell.scenario.platform,
                            "hedged": hedged,
                            "percentile": float(percentile),
                            "latency_s": round(
                                cell.latency_percentile(percentile), 6
                            ),
                            "availability": round(
                                cell.series.availability, 6
                            ),
                            "crash_kills": cell.series.crash_kills,
                            "hedges_launched": cell.series.hedges_launched,
                            "hedge_wins": cell.series.hedge_wins,
                        }
                    )
    return rows, ChurnTailStudy(results=results)


def run_churn(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    node_mtbf_seconds: float = 300.0,
    node_mttr_seconds: float = 60.0,
    node_size: int = 8,
    hedge_after_seconds: float = 0.25,
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    fault_seed: int = 404,
    engine: str = "auto",
) -> ChurnTailStudy:
    """Fig. 15 tails under node churn, hedged vs unhedged dispatch."""
    return REGISTRY.run(
        "fig15-chaos",
        tail_ratios=tail_ratios,
        percentiles=percentiles,
        node_mtbf_seconds=node_mtbf_seconds,
        node_mttr_seconds=node_mttr_seconds,
        node_size=node_size,
        hedge_after_seconds=hedge_after_seconds,
        rate_scale=rate_scale,
        max_instances=max_instances,
        seed=seed,
        fault_seed=fault_seed,
        engine=engine,
    ).study
