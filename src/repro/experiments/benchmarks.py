"""The Table 1 benchmark suite.

Eight real-world, latency-critical serverless applications inspired by AWS
Lambda case studies, each a three-function chain (pre-processing, ML/DNN
inference, notification).  Exact AWS models are not public, so — following
the paper — each uses a representative architecture with the same
functionality.  Payload sizes reflect the serverless regime the paper
assumes: requests are small (<= 20 MB, the AWS S3/Lambda cap [109]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.models.graph import Graph
from repro.models.zoo import (
    frame_stack_cnn,
    gpt2_decoder,
    image_preprocess,
    inception_v3,
    logistic_regression,
    resnet50,
    tabular_preprocess,
    text_preprocess,
    transformer_seq2seq,
    vit,
    yolo_detector,
)
from repro.serverless.application import Application
from repro.serverless.function import FunctionRole, ServerlessFunction
from repro.units import KB, MB


@dataclass(frozen=True)
class BenchmarkSpec:
    """One Table 1 row: application, models, and payload sizes."""

    name: str
    description: str
    preprocess_builder: Callable[[], Graph]
    inference_builder: Callable[[], Graph]
    input_bytes: int  # request payload landing in the object store
    result_bytes: int  # inference output written back
    notification_bytes: int = 1 * KB

    def build(self) -> Application:
        """Materialise the three-function chain application."""
        preprocess_graph = self.preprocess_builder()
        inference_graph = self.inference_builder()
        functions = (
            ServerlessFunction(
                name=f"{self.name}/preprocess",
                role=FunctionRole.PREPROCESS,
                graph=preprocess_graph,
                acceleratable=True,
            ),
            ServerlessFunction(
                name=f"{self.name}/inference",
                role=FunctionRole.INFERENCE,
                graph=inference_graph,
                acceleratable=True,
            ),
            ServerlessFunction(
                name=f"{self.name}/notify",
                role=FunctionRole.NOTIFICATION,
                graph=None,
                cpu_work_seconds=1e-3,
                output_bytes=self.notification_bytes,
            ),
        )
        tensor_bytes = inference_graph.input.size_bytes
        return Application.chain(
            name=self.name,
            functions=functions,
            input_bytes=self.input_bytes,
            edge_bytes=(tensor_bytes, self.result_bytes, self.notification_bytes),
        )


BENCHMARKS: List[BenchmarkSpec] = [
    BenchmarkSpec(
        name="Credit Risk Assessment",
        description="Binary logistic regression over loan-application batches "
        "(IBM SPSS-style risk scoring [74]).",
        preprocess_builder=lambda: tabular_preprocess(rows=4096, features=64),
        inference_builder=lambda: logistic_regression(rows=4096, features=64),
        input_bytes=int(1.5 * MB),
        result_bytes=16 * KB,
    ),
    BenchmarkSpec(
        name="Asset Damage Detection",
        description="Defect spotting on industrial imagery "
        "(AWS Lookout for Vision [75]); ResNet-50 classifier.",
        preprocess_builder=lambda: image_preprocess(224, raw_size=1024),
        inference_builder=lambda: resnet50(224),
        input_bytes=8 * MB,
        result_bytes=4 * KB,
    ),
    BenchmarkSpec(
        name="PPE Detection",
        description="Personal-protective-equipment detection on site imagery "
        "(Amazon Rekognition [76]); Darknet-style detector on "
        "high-resolution uploads — the most data-intensive workload.",
        preprocess_builder=lambda: image_preprocess(320, raw_size=1280),
        inference_builder=lambda: yolo_detector(320),
        input_bytes=16 * MB,
        result_bytes=16 * KB,
    ),
    BenchmarkSpec(
        name="Conversational Chatbot",
        description="Serverless bot framework [79]; GPT-2-class decoder over "
        "the conversation context.",
        preprocess_builder=lambda: text_preprocess(tokens=64, raw_bytes=8192),
        inference_builder=lambda: gpt2_decoder(
            seq=64, dim=768, layers=12, heads=12
        ),
        input_bytes=512 * KB,
        result_bytes=4 * KB,
    ),
    BenchmarkSpec(
        name="Document Translation",
        description="AWS Translate-style document translation [80]; "
        "transformer seq2seq.",
        preprocess_builder=lambda: text_preprocess(tokens=128, raw_bytes=16384),
        inference_builder=lambda: transformer_seq2seq(
            src_seq=128,
            tgt_seq=128,
            dim=512,
            encoder_layers=4,
            decoder_layers=4,
            heads=8,
        ),
        input_bytes=1 * MB,
        result_bytes=64 * KB,
    ),
    BenchmarkSpec(
        name="Clinical Analysis",
        description="Acute myeloid/lymphoblastic leukemia classification from "
        "microscopy [77]; Inception-v3.",
        preprocess_builder=lambda: image_preprocess(299, raw_size=512),
        inference_builder=lambda: inception_v3(299),
        input_bytes=2 * MB,
        result_bytes=4 * KB,
    ),
    BenchmarkSpec(
        name="Content Moderation",
        description="Unsafe-content scanning over sampled video frames "
        "(Rekognition moderation [78]); frame-stack CNN over the "
        "largest request payloads in the suite.",
        preprocess_builder=lambda: image_preprocess(
            224, raw_size=512, channels=12
        ),
        inference_builder=lambda: frame_stack_cnn(frames=4, image_size=224),
        input_bytes=16 * MB,
        result_bytes=8 * KB,
    ),
    BenchmarkSpec(
        name="Remote Sensing",
        description="Wildfire-risk scene classification from drone imagery "
        "(SDG&E motivating use case [81, 83]); ViT-Base.",
        preprocess_builder=lambda: image_preprocess(224, raw_size=1024),
        inference_builder=lambda: vit(224, dim=384, layers=12, heads=6),
        input_bytes=6 * MB,
        result_bytes=4 * KB,
    ),
]


def benchmark_suite() -> Dict[str, Application]:
    """Build all eight applications, keyed by name."""
    return {spec.name: spec.build() for spec in BENCHMARKS}


def build_application(name: str) -> Application:
    """Build a single benchmark application by its Table 1 name."""
    for spec in BENCHMARKS:
        if spec.name == name:
            return spec.build()
    raise KeyError(f"unknown benchmark {name!r}")
