"""Fig. 7: power-performance Pareto frontier of the DSA design space (45 nm).

Sweeps the §4.2 search space, evaluates throughput (avg fps over the eval
models) and dynamic power at 45 nm, and extracts the Pareto frontier.  The
paper's chosen point, Dim128-4MB on DDR5, sits on the frontier and is the
best feasible point under the 25 W storage budget after 14 nm scaling.

Registered twice: as ``fig07`` (``--space square|full``) and as the legacy
``dse`` command (``--full`` flag), both thin wrappers over the same sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.accelerator.config import DSAConfig
from repro.dse.explorer import DesignPointResult, DSEExplorer
from repro.dse.space import design_space
from repro.experiments.registry import REGISTRY, Param


@dataclass
class ParetoStudy:
    """All evaluated points plus the extracted frontier."""

    results: List[DesignPointResult]
    frontier: List[DesignPointResult]
    best_feasible: DesignPointResult

    @property
    def num_points(self) -> int:
        return len(self.results)

    def frontier_labels(self) -> List[str]:
        return [r.label for r in self.frontier]


def pareto_rows(study: ParetoStudy) -> List[Dict[str, object]]:
    """Flat rows for either Pareto study (Fig. 7 or Fig. 8)."""
    frontier = set(study.frontier_labels())
    rows = []
    for result in study.results:
        row = result.as_row()
        row["on_frontier"] = result.label in frontier
        rows.append(row)
    return rows


def _best_feasible_headline(study: ParetoStudy) -> str:
    return f"best feasible point: {study.best_feasible.label}"


def sweep_study(
    space: str = "square",
    max_configs: int = 0,
    frontier: str = "power",
    configs: Optional[Sequence[DSAConfig]] = None,
    explorer: Optional[DSEExplorer] = None,
    workers: Optional[int] = None,
) -> ParetoStudy:
    """The shared Fig. 7/8 sweep: evaluate candidates, extract a frontier.

    ``max_configs`` > 0 truncates the candidate list — the ``fast``
    fidelity profile's knob for smoke runs.
    """
    from repro.errors import ConfigurationError

    if space not in ("square", "full"):
        raise ConfigurationError(
            f"unknown design space {space!r}; expected 'square' or 'full'"
        )
    explorer = explorer or DSEExplorer()
    candidates = (
        list(configs)
        if configs
        else design_space(square_only=(space != "full"))
    )
    if max_configs:
        candidates = candidates[:max_configs]
    results = explorer.sweep(candidates, workers=workers)
    if frontier == "area":
        front = explorer.area_pareto(results)
    else:
        front = explorer.power_pareto(results)
    best = explorer.best_feasible(results)
    return ParetoStudy(results=results, frontier=front, best_feasible=best)


_SWEEP_PARAMS = (
    Param("space", "str", "square", "candidate space: 'square' or 'full'"),
    Param("max_configs", "int", 0, "truncate the sweep (0 = no limit)"),
    Param("workers", "int", None, "process-pool size (default: serial)"),
    Param("configs", "object", None, cli=False),
    Param("explorer", "object", None, cli=False),
)

_SWEEP_PROFILES = {
    "fast": {"space": "square", "max_configs": 12},
    "paper": {"space": "full", "max_configs": 0},
}


@REGISTRY.experiment(
    name="fig07",
    description="Fig. 7: power-performance Pareto frontier of the DSA space",
    params=_SWEEP_PARAMS,
    profiles=_SWEEP_PROFILES,
    tags=("figure", "dse"),
    headline=_best_feasible_headline,
)
def _experiment(ctx, space, max_configs, workers=None, configs=None, explorer=None):
    study = sweep_study(
        space=space,
        max_configs=max_configs,
        frontier="power",
        configs=configs,
        explorer=explorer,
        workers=workers,
    )
    return pareto_rows(study), study


@REGISTRY.experiment(
    name="dse",
    description="Design-space sweep (Fig. 7 form; --full for the >650-point space)",
    params=(
        Param("full", "bool", False, "sweep the full >650-point space"),
        Param("max_configs", "int", 0, "truncate the sweep (0 = no limit)"),
        Param("workers", "int", None, "process-pool size (default: serial)"),
        Param("configs", "object", None, cli=False),
        Param("explorer", "object", None, cli=False),
    ),
    profiles={"fast": {"max_configs": 12}, "paper": {"max_configs": 0}},
    tags=("dse",),
    headline=_best_feasible_headline,
)
def _dse_experiment(ctx, full, max_configs, workers=None, configs=None, explorer=None):
    study = sweep_study(
        space="full" if full else "square",
        max_configs=max_configs,
        frontier="power",
        configs=configs,
        explorer=explorer,
        workers=workers,
    )
    return pareto_rows(study), study


def run(
    square_only: bool = True,
    configs: Optional[Sequence[DSAConfig]] = None,
    explorer: Optional[DSEExplorer] = None,
    workers: Optional[int] = None,
) -> ParetoStudy:
    """Regenerate the power-performance study.

    ``square_only=True`` sweeps the coarse (square-array) subset for quick
    runs; pass ``square_only=False`` for the full >650-point space.
    ``workers`` > 1 fans the sweep over a process pool (results are
    deterministic and ordering-independent of the worker count).
    """
    return REGISTRY.run(
        "fig07",
        space="square" if square_only else "full",
        configs=configs,
        explorer=explorer,
        workers=workers,
    ).study
