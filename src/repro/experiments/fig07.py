"""Fig. 7: power-performance Pareto frontier of the DSA design space (45 nm).

Sweeps the §4.2 search space, evaluates throughput (avg fps over the eval
models) and dynamic power at 45 nm, and extracts the Pareto frontier.  The
paper's chosen point, Dim128-4MB on DDR5, sits on the frontier and is the
best feasible point under the 25 W storage budget after 14 nm scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.accelerator.config import DSAConfig
from repro.dse.explorer import DesignPointResult, DSEExplorer
from repro.dse.space import design_space


@dataclass
class ParetoStudy:
    """All evaluated points plus the extracted frontier."""

    results: List[DesignPointResult]
    frontier: List[DesignPointResult]
    best_feasible: DesignPointResult

    @property
    def num_points(self) -> int:
        return len(self.results)

    def frontier_labels(self) -> List[str]:
        return [r.label for r in self.frontier]


def run(
    square_only: bool = True,
    configs: Optional[Sequence[DSAConfig]] = None,
    explorer: Optional[DSEExplorer] = None,
    workers: Optional[int] = None,
) -> ParetoStudy:
    """Regenerate the power-performance study.

    ``square_only=True`` sweeps the coarse (square-array) subset for quick
    runs; pass ``square_only=False`` for the full >650-point space.
    ``workers`` > 1 fans the sweep over a process pool (results are
    deterministic and ordering-independent of the worker count).
    """
    explorer = explorer or DSEExplorer()
    candidates = list(configs) if configs else design_space(square_only=square_only)
    results = explorer.sweep(candidates, workers=workers)
    frontier = explorer.power_pareto(results)
    best = explorer.best_feasible(results)
    return ParetoStudy(results=results, frontier=frontier, best_feasible=best)
