"""Fig. 15: sensitivity to storage-access tail latency.

Sweeps the network tail ratio (p99/median) and reports DSCS speedup over
the baseline at matched percentiles.  Because DSCS removes the network
from the accelerated functions' data path, it is robust to tails: the
paper reports 5.0x at the 99th percentile vs 3.1x at the median.

The sweep swaps only the **fabric** per ratio: the benchmark suite and
the compiled execution models are built once and rewired with
:meth:`~repro.experiments.common.SuiteContext.with_fabric`, so each
additional tail ratio costs sampling time only (previously the whole
suite context was rebuilt per ratio).

:func:`run` measures isolated invocations (the paper's methodology);
:func:`run_rack` replays the same fabric sweep through the rack
simulator via :mod:`repro.cluster.sweep`, so the reported percentiles
include queueing on a contended fleet rather than service time alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.core.fabric import StorageFabric
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    geomean_speedup,
    p95_latency_table,
)
from repro.experiments.registry import REGISTRY, Param

DEFAULT_TAIL_RATIOS = (1.5, 2.1, 3.0, 4.0)
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)

_PLATFORMS = (BASELINE_NAME, DSCS_NAME)


@dataclass
class TailStudy:
    """Speedup vs (tail ratio, percentile)."""

    speedups: Dict[Tuple[float, float], float]  # (ratio, percentile) -> geomean

    def at(self, tail_ratio: float, percentile: float) -> float:
        return self.speedups[(tail_ratio, percentile)]


def _speedup_rows(speedups: Dict[Tuple[float, float], float]):
    return [
        {
            "tail_ratio": ratio,
            "percentile": percentile,
            "speedup": round(value, 3),
        }
        for (ratio, percentile), value in speedups.items()
    ]


@REGISTRY.experiment(
    name="fig15",
    description="Fig. 15: sensitivity to storage-access tail latency",
    params=(
        Param("tail_ratios", "floats", DEFAULT_TAIL_RATIOS, "p99/median ratios"),
        Param("percentiles", "floats", DEFAULT_PERCENTILES, "report percentiles"),
        Param("samples", "int", 2000, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
    ),
    profiles={
        "fast": {"tail_ratios": (2.1, 4.0), "samples": 300},
        "paper": {"tail_ratios": DEFAULT_TAIL_RATIOS, "samples": 10_000},
    },
    tags=("figure", "sensitivity"),
)
def _experiment(ctx, tail_ratios, percentiles, samples, seed):
    speedups: Dict[Tuple[float, float], float] = {}
    for ratio in tail_ratios:
        # Fabric swap, not a rebuild: the shared context cache derives a
        # per-ratio variant from the base (platforms, default-fabric)
        # context, reusing applications and compiled models.
        context = ctx.suite_context(
            _PLATFORMS, fabric=StorageFabric().with_tail_ratio(ratio)
        )
        for percentile in percentiles:
            latency = p95_latency_table(
                context, count=samples, percentile=percentile, seed=seed
            )
            per_app = {
                app: latency[BASELINE_NAME][app] / latency[DSCS_NAME][app]
                for app in latency[BASELINE_NAME]
            }
            speedups[(ratio, percentile)] = geomean_speedup(per_app)
    study = TailStudy(speedups=speedups)
    return _speedup_rows(speedups), study


def run(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    count: int = 2000,
    seed: int = 7,
) -> TailStudy:
    """Regenerate Fig. 15."""
    return REGISTRY.run(
        "fig15",
        tail_ratios=tail_ratios,
        percentiles=percentiles,
        samples=count,
        seed=seed,
    ).study


@dataclass
class RackTailStudy:
    """Rack-level (queueing-inclusive) variant of the tail study."""

    speedups: Dict[Tuple[float, float], float]  # (ratio, pctl) -> speedup
    results: Dict[Tuple[float, str], ScenarioResult]  # (ratio, platform)

    def at(self, tail_ratio: float, percentile: float) -> float:
        return self.speedups[(tail_ratio, percentile)]


@REGISTRY.experiment(
    name="fig15-rack",
    description="Fig. 15 under rack contention (fleet queueing included)",
    params=(
        Param("tail_ratios", "floats", DEFAULT_TAIL_RATIOS, "p99/median ratios"),
        Param("percentiles", "floats", DEFAULT_PERCENTILES, "report percentiles"),
        Param("rate_scale", "float", 1.0, "scale on the request-rate envelope"),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
    ),
    profiles={
        "fast": {"tail_ratios": (2.1,), "rate_scale": 0.05, "max_instances": 20},
        "paper": {"tail_ratios": DEFAULT_TAIL_RATIOS},
    },
    tags=("figure", "rack", "sensitivity"),
)
def _rack_experiment(
    ctx, tail_ratios, percentiles, rate_scale, max_instances, seed, engine
):
    speedups: Dict[Tuple[float, float], float] = {}
    results: Dict[Tuple[float, str], ScenarioResult] = {}
    trace = None
    for ratio in tail_ratios:
        # Same fabric-swap reuse as the isolated study: each ratio
        # rewires the shared base context instead of rebuilding it.  The
        # trace depends only on the seed and application set, so one
        # realisation is shared across every ratio and platform.
        context = ctx.suite_context(
            _PLATFORMS, fabric=StorageFabric().with_tail_ratio(ratio)
        )
        harness = RackSweep(context, engine=engine)
        if trace is None:
            trace = harness.trace_for(seed, rate_scale)
        cells = harness.run(
            scenario_grid(
                platforms=context.platform_names,
                rate_scales=(rate_scale,),
                max_instances=(max_instances,),
                seed=seed,
            ),
            trace=trace,
        )
        by_platform = {cell.scenario.platform: cell for cell in cells}
        results[(ratio, BASELINE_NAME)] = by_platform[BASELINE_NAME]
        results[(ratio, DSCS_NAME)] = by_platform[DSCS_NAME]
        for percentile in percentiles:
            speedups[(ratio, percentile)] = by_platform[
                BASELINE_NAME
            ].latency_percentile(percentile) / by_platform[
                DSCS_NAME
            ].latency_percentile(percentile)
    study = RackTailStudy(speedups=speedups, results=results)
    return _speedup_rows(speedups), study


def run_rack(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    engine: str = "auto",
) -> RackTailStudy:
    """Fig. 15 under rack contention: one sweep cell per tail ratio."""
    return REGISTRY.run(
        "fig15-rack",
        tail_ratios=tail_ratios,
        percentiles=percentiles,
        rate_scale=rate_scale,
        max_instances=max_instances,
        seed=seed,
        engine=engine,
    ).study
