"""Fig. 15: sensitivity to storage-access tail latency.

Sweeps the network tail ratio (p99/median) and reports DSCS speedup over
the baseline at matched percentiles.  Because DSCS removes the network
from the accelerated functions' data path, it is robust to tails: the
paper reports 5.0x at the 99th percentile vs 3.1x at the median.

:func:`run` measures isolated invocations (the paper's methodology);
:func:`run_rack` replays the same fabric sweep through the rack
simulator via :mod:`repro.cluster.sweep`, so the reported percentiles
include queueing on a contended fleet rather than service time alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.core.fabric import StorageFabric
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    build_context,
    geomean_speedup,
    p95_latency_table,
)

DEFAULT_TAIL_RATIOS = (1.5, 2.1, 3.0, 4.0)
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class TailStudy:
    """Speedup vs (tail ratio, percentile)."""

    speedups: Dict[Tuple[float, float], float]  # (ratio, percentile) -> geomean

    def at(self, tail_ratio: float, percentile: float) -> float:
        return self.speedups[(tail_ratio, percentile)]


def run(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    count: int = 2000,
    seed: int = 7,
) -> TailStudy:
    """Regenerate Fig. 15."""
    speedups: Dict[Tuple[float, float], float] = {}
    for ratio in tail_ratios:
        fabric = StorageFabric().with_tail_ratio(ratio)
        context = build_context(
            platform_names=[BASELINE_NAME, DSCS_NAME], fabric=fabric
        )
        for percentile in percentiles:
            latency = p95_latency_table(
                context, count=count, percentile=percentile, seed=seed
            )
            per_app = {
                app: latency[BASELINE_NAME][app] / latency[DSCS_NAME][app]
                for app in latency[BASELINE_NAME]
            }
            speedups[(ratio, percentile)] = geomean_speedup(per_app)
    return TailStudy(speedups=speedups)


@dataclass
class RackTailStudy:
    """Rack-level (queueing-inclusive) variant of the tail study."""

    speedups: Dict[Tuple[float, float], float]  # (ratio, pctl) -> speedup
    results: Dict[Tuple[float, str], ScenarioResult]  # (ratio, platform)

    def at(self, tail_ratio: float, percentile: float) -> float:
        return self.speedups[(tail_ratio, percentile)]


def run_rack(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    engine: str = "auto",
) -> RackTailStudy:
    """Fig. 15 under rack contention: one sweep cell per tail ratio.

    Each ratio needs its own fabric (and hence execution models), but the
    trace realisation depends only on the seed and application set, so it
    is generated once and shared across every ratio and platform.
    """
    speedups: Dict[Tuple[float, float], float] = {}
    results: Dict[Tuple[float, str], ScenarioResult] = {}
    trace = None
    for ratio in tail_ratios:
        fabric = StorageFabric().with_tail_ratio(ratio)
        context = build_context(
            platform_names=[BASELINE_NAME, DSCS_NAME], fabric=fabric
        )
        harness = RackSweep(context, engine=engine)
        if trace is None:
            trace = harness.trace_for(seed, rate_scale)
        cells = harness.run(
            scenario_grid(
                platforms=context.platform_names,
                rate_scales=(rate_scale,),
                max_instances=(max_instances,),
                seed=seed,
            ),
            trace=trace,
        )
        by_platform = {cell.scenario.platform: cell for cell in cells}
        results[(ratio, BASELINE_NAME)] = by_platform[BASELINE_NAME]
        results[(ratio, DSCS_NAME)] = by_platform[DSCS_NAME]
        for percentile in percentiles:
            speedups[(ratio, percentile)] = by_platform[
                BASELINE_NAME
            ].latency_percentile(percentile) / by_platform[
                DSCS_NAME
            ].latency_percentile(percentile)
    return RackTailStudy(speedups=speedups, results=results)
