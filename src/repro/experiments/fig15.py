"""Fig. 15: sensitivity to storage-access tail latency.

Sweeps the network tail ratio (p99/median) and reports DSCS speedup over
the baseline at matched percentiles.  Because DSCS removes the network
from the accelerated functions' data path, it is robust to tails: the
paper reports 5.0x at the 99th percentile vs 3.1x at the median.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.fabric import StorageFabric
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    build_context,
    geomean_speedup,
    p95_latency_table,
)

DEFAULT_TAIL_RATIOS = (1.5, 2.1, 3.0, 4.0)
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


@dataclass
class TailStudy:
    """Speedup vs (tail ratio, percentile)."""

    speedups: Dict[Tuple[float, float], float]  # (ratio, percentile) -> geomean

    def at(self, tail_ratio: float, percentile: float) -> float:
        return self.speedups[(tail_ratio, percentile)]


def run(
    tail_ratios=DEFAULT_TAIL_RATIOS,
    percentiles=DEFAULT_PERCENTILES,
    count: int = 2000,
    seed: int = 7,
) -> TailStudy:
    """Regenerate Fig. 15."""
    speedups: Dict[Tuple[float, float], float] = {}
    for ratio in tail_ratios:
        fabric = StorageFabric().with_tail_ratio(ratio)
        context = build_context(
            platform_names=[BASELINE_NAME, DSCS_NAME], fabric=fabric
        )
        for percentile in percentiles:
            latency = p95_latency_table(
                context, count=count, percentile=percentile, seed=seed
            )
            per_app = {
                app: latency[BASELINE_NAME][app] / latency[DSCS_NAME][app]
                for app in latency[BASELINE_NAME]
            }
            speedups[(ratio, percentile)] = geomean_speedup(per_app)
    return TailStudy(speedups=speedups)
