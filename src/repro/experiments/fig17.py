"""Fig. 17: cold vs warm containers.

Both systems pull container images (including model weights) on a cold
start; DSCS-Serverless can reload a flash-parked image over the P2P link
(§5.3).  Model-load time is large relative to warm execution, so the
paper's average speedup drops from 3.6x (warm) to 2.6x (cold).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    build_context,
    geomean_speedup,
)


@dataclass
class ColdStartStudy:
    """Warm and cold speedups per benchmark."""

    warm_speedups: Dict[str, float]
    cold_speedups: Dict[str, float]

    @property
    def warm_geomean(self) -> float:
        return geomean_speedup(self.warm_speedups)

    @property
    def cold_geomean(self) -> float:
        return geomean_speedup(self.cold_speedups)


def run(
    count: int = 1000, seed: int = 7, context: SuiteContext = None
) -> ColdStartStudy:
    """Regenerate Fig. 17."""
    context = context or build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    warm: Dict[str, float] = {}
    cold: Dict[str, float] = {}
    for app_name, app in context.applications.items():
        for is_cold, sink in ((False, warm), (True, cold)):
            rng_base = np.random.default_rng(seed)
            rng_dscs = np.random.default_rng(seed)
            base = np.percentile(
                context.models[BASELINE_NAME].sample_latencies(
                    app, rng_base, count, cold=is_cold
                ),
                95,
            )
            dscs = np.percentile(
                context.models[DSCS_NAME].sample_latencies(
                    app, rng_dscs, count, cold=is_cold
                ),
                95,
            )
            sink[app_name] = float(base / dscs)
    return ColdStartStudy(warm_speedups=warm, cold_speedups=cold)
