"""Fig. 17: cold vs warm containers.

Both systems pull container images (including model weights) on a cold
start; DSCS-Serverless can reload a flash-parked image over the P2P link
(§5.3).  Model-load time is large relative to warm execution, so the
paper's average speedup drops from 3.6x (warm) to 2.6x (cold).

:func:`run` measures isolated invocations; :func:`run_rack` replays the
warm/cold comparison on a contended rack via :mod:`repro.cluster.sweep`
(the scenario grid's ``cold`` knob makes every invocation pay its
platform's cold-start path), where longer cold service times also mean
more queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    geomean_speedup,
)
from repro.experiments.registry import REGISTRY, Param


@dataclass
class ColdStartStudy:
    """Warm and cold speedups per benchmark."""

    warm_speedups: Dict[str, float]
    cold_speedups: Dict[str, float]

    @property
    def warm_geomean(self) -> float:
        return geomean_speedup(self.warm_speedups)

    @property
    def cold_geomean(self) -> float:
        return geomean_speedup(self.cold_speedups)


@REGISTRY.experiment(
    name="fig17",
    description="Fig. 17: cold vs warm containers",
    params=(
        Param("samples", "int", 1000, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
        Param("context", "object", None, cli=False),
    ),
    profiles={"fast": {"samples": 200}, "paper": {"samples": 10_000}},
    tags=("figure", "coldstart"),
)
def _experiment(ctx, samples, seed, context=None):
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    warm: Dict[str, float] = {}
    cold: Dict[str, float] = {}
    for app_name, app in context.applications.items():
        for is_cold, sink in ((False, warm), (True, cold)):
            rng_base = np.random.default_rng(seed)
            rng_dscs = np.random.default_rng(seed)
            base = np.percentile(
                context.models[BASELINE_NAME].sample_latencies(
                    app, rng_base, samples, cold=is_cold
                ),
                95,
            )
            dscs = np.percentile(
                context.models[DSCS_NAME].sample_latencies(
                    app, rng_dscs, samples, cold=is_cold
                ),
                95,
            )
            sink[app_name] = float(base / dscs)
    study = ColdStartStudy(warm_speedups=warm, cold_speedups=cold)
    rows = [
        {
            "benchmark": name,
            "warm": round(study.warm_speedups[name], 3),
            "cold": round(study.cold_speedups[name], 3),
        }
        for name in study.warm_speedups
    ]
    return rows, study


def run(
    count: int = 1000, seed: int = 7, context: SuiteContext = None
) -> ColdStartStudy:
    """Regenerate Fig. 17."""
    return REGISTRY.run("fig17", samples=count, seed=seed, context=context).study


@dataclass
class RackColdStartStudy:
    """Rack-level warm/cold comparison (p95 of fleet-served latencies)."""

    warm_speedup: float
    cold_speedup: float
    results: Dict[Tuple[bool, str], ScenarioResult]  # (cold, platform)

    @property
    def cold_penalty(self) -> float:
        """How much of the warm advantage cold starts erode."""
        return self.warm_speedup / self.cold_speedup


@REGISTRY.experiment(
    name="fig17-rack",
    description="Fig. 17 on a contended rack (cold starts amplify queueing)",
    params=(
        Param("rate_scale", "float", 1.0, "scale on the request-rate envelope"),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
        Param("percentile", "float", 95.0, "speedup percentile"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"rate_scale": 0.05, "max_instances": 20},
        "paper": {},
    },
    tags=("figure", "rack", "coldstart"),
)
def _rack_experiment(
    ctx, rate_scale, max_instances, seed, engine, percentile, context=None
):
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    harness = RackSweep(context, engine=engine)
    results: Dict[Tuple[bool, str], ScenarioResult] = {}
    speedups: Dict[bool, float] = {}
    for is_cold in (False, True):
        cells = harness.run(
            scenario_grid(
                platforms=context.platform_names,
                rate_scales=(rate_scale,),
                max_instances=(max_instances,),
                cold=is_cold,
                seed=seed,
            )
        )
        by_platform = {cell.scenario.platform: cell for cell in cells}
        results[(is_cold, BASELINE_NAME)] = by_platform[BASELINE_NAME]
        results[(is_cold, DSCS_NAME)] = by_platform[DSCS_NAME]
        speedups[is_cold] = by_platform[BASELINE_NAME].latency_percentile(
            percentile
        ) / by_platform[DSCS_NAME].latency_percentile(percentile)
    study = RackColdStartStudy(
        warm_speedup=speedups[False],
        cold_speedup=speedups[True],
        results=results,
    )
    rows = [
        {
            "warm_speedup": round(study.warm_speedup, 3),
            "cold_speedup": round(study.cold_speedup, 3),
            "cold_penalty": round(study.cold_penalty, 3),
        }
    ]
    return rows, study


def run_rack(
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
    percentile: float = 95.0,
) -> RackColdStartStudy:
    """Fig. 17 on a contended rack: warm and cold grids, shared inputs.

    Warm and cold cells share the trace and the sweep's service-sample
    cache keys them separately (``cold`` is part of the draw key), so the
    comparison is apples-to-apples on identical arrival sequences.
    """
    return REGISTRY.run(
        "fig17-rack",
        rate_scale=rate_scale,
        max_instances=max_instances,
        seed=seed,
        context=context,
        engine=engine,
        percentile=percentile,
    ).study
