"""Fig. 17: cold vs warm containers.

Both systems pull container images (including model weights) on a cold
start; DSCS-Serverless can reload a flash-parked image over the P2P link
(§5.3).  Model-load time is large relative to warm execution, so the
paper's average speedup drops from 3.6x (warm) to 2.6x (cold).

:func:`run` measures isolated invocations; :func:`run_rack` replays the
warm/cold comparison on a contended rack via :mod:`repro.cluster.sweep`
(the scenario grid's ``cold`` knob makes every invocation pay its
platform's cold-start path), where longer cold service times also mean
more queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    build_context,
    geomean_speedup,
)


@dataclass
class ColdStartStudy:
    """Warm and cold speedups per benchmark."""

    warm_speedups: Dict[str, float]
    cold_speedups: Dict[str, float]

    @property
    def warm_geomean(self) -> float:
        return geomean_speedup(self.warm_speedups)

    @property
    def cold_geomean(self) -> float:
        return geomean_speedup(self.cold_speedups)


def run(
    count: int = 1000, seed: int = 7, context: SuiteContext = None
) -> ColdStartStudy:
    """Regenerate Fig. 17."""
    context = context or build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    warm: Dict[str, float] = {}
    cold: Dict[str, float] = {}
    for app_name, app in context.applications.items():
        for is_cold, sink in ((False, warm), (True, cold)):
            rng_base = np.random.default_rng(seed)
            rng_dscs = np.random.default_rng(seed)
            base = np.percentile(
                context.models[BASELINE_NAME].sample_latencies(
                    app, rng_base, count, cold=is_cold
                ),
                95,
            )
            dscs = np.percentile(
                context.models[DSCS_NAME].sample_latencies(
                    app, rng_dscs, count, cold=is_cold
                ),
                95,
            )
            sink[app_name] = float(base / dscs)
    return ColdStartStudy(warm_speedups=warm, cold_speedups=cold)


@dataclass
class RackColdStartStudy:
    """Rack-level warm/cold comparison (p95 of fleet-served latencies)."""

    warm_speedup: float
    cold_speedup: float
    results: Dict[Tuple[bool, str], ScenarioResult]  # (cold, platform)

    @property
    def cold_penalty(self) -> float:
        """How much of the warm advantage cold starts erode."""
        return self.warm_speedup / self.cold_speedup


def run_rack(
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
    percentile: float = 95.0,
) -> RackColdStartStudy:
    """Fig. 17 on a contended rack: warm and cold grids, shared inputs.

    Warm and cold cells share the trace and the sweep's service-sample
    cache keys them separately (``cold`` is part of the draw key), so the
    comparison is apples-to-apples on identical arrival sequences.
    """
    context = context or build_context(
        platform_names=[BASELINE_NAME, DSCS_NAME]
    )
    harness = RackSweep(context, engine=engine)
    results: Dict[Tuple[bool, str], ScenarioResult] = {}
    speedups: Dict[bool, float] = {}
    for is_cold in (False, True):
        cells = harness.run(
            scenario_grid(
                platforms=context.platform_names,
                rate_scales=(rate_scale,),
                max_instances=(max_instances,),
                cold=is_cold,
                seed=seed,
            )
        )
        by_platform = {cell.scenario.platform: cell for cell in cells}
        results[(is_cold, BASELINE_NAME)] = by_platform[BASELINE_NAME]
        results[(is_cold, DSCS_NAME)] = by_platform[DSCS_NAME]
        speedups[is_cold] = by_platform[BASELINE_NAME].latency_percentile(
            percentile
        ) / by_platform[DSCS_NAME].latency_percentile(percentile)
    return RackColdStartStudy(
        warm_speedup=speedups[False],
        cold_speedup=speedups[True],
        results=results,
    )
