"""Declarative experiment registry: describe the run, let the harness do it.

Every figure/table harness registers an :class:`ExperimentSpec` — a name,
a typed parameter schema with ``fast``/``paper`` fidelity profiles, a
runner, and tags.  The registry then provides the single entry point

    REGISTRY.run("fig13", profile="fast", rate_scale=0.1)

which resolves parameters (defaults < profile < explicit overrides),
threads a shared :class:`SuiteContextCache` through the runner so
multi-figure runs build benchmark suites and execution models once, and
wraps the output in a uniform
:class:`~repro.experiments.results.ExperimentResult` with provenance
(seed, engine, git describe, wall time).  The CLI generates one
subcommand per spec straight from the schema, so adding an experiment
here *is* adding it to the CLI.
"""

from __future__ import annotations

import functools
import platform as _platform
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ConfigurationError
from repro.experiments.results import ExperimentResult, jsonable

# The two fidelity profiles every spec must define.  ``fast`` is the
# seconds-scale smoke configuration; ``paper`` is the publication-scale
# methodology (10,000 requests, full grids).
PROFILE_NAMES = ("fast", "paper")

# Parameter kinds understood by the schema (and the CLI generator).
# ``ints``/``floats``/``strs`` are comma-separated tuples on the command
# line; ``object`` is a programmatic-only passthrough (never a CLI flag,
# never recorded into result params).
PARAM_KINDS = ("int", "float", "str", "bool", "ints", "floats", "strs", "object")

_SCALAR_PARSERS = {"int": int, "float": float, "str": str}


def _parse_sequence(text: str, scalar: Callable[[str], Any]) -> Tuple[Any, ...]:
    items = [piece.strip() for piece in str(text).split(",") if piece.strip()]
    if not items:
        raise ConfigurationError(f"empty sequence parameter value {text!r}")
    return tuple(scalar(item) for item in items)


@dataclass(frozen=True)
class Param:
    """One experiment parameter: name, kind, default, and CLI exposure."""

    name: str
    kind: str
    default: Any = None
    help: str = ""
    cli: bool = True

    def __post_init__(self) -> None:
        if self.kind not in PARAM_KINDS:
            raise ConfigurationError(
                f"unknown param kind {self.kind!r}; expected one of "
                f"{PARAM_KINDS}"
            )
        if self.kind == "object" and self.cli:
            raise ConfigurationError(
                f"object param {self.name!r} cannot be a CLI flag"
            )

    @property
    def record(self) -> bool:
        """Whether the value belongs in the serialised params dict."""
        return self.kind != "object"

    def parse(self, text: str) -> Any:
        """Parse a command-line string into this parameter's type."""
        if self.kind in _SCALAR_PARSERS:
            return _SCALAR_PARSERS[self.kind](text)
        if self.kind == "bool":
            if text not in ("true", "false", "True", "False"):
                raise ConfigurationError(f"bad bool value {text!r}")
            return text in ("true", "True")
        if self.kind in ("ints", "floats", "strs"):
            return _parse_sequence(text, _SCALAR_PARSERS[self.kind[:-1]])
        raise ConfigurationError(
            f"param {self.name!r} ({self.kind}) is not CLI-parseable"
        )

    def coerce(self, value: Any) -> Any:
        """Normalise a programmatic value (sequences become tuples)."""
        if self.kind == "object" or value is None:
            return value
        if self.kind in ("ints", "floats", "strs"):
            if isinstance(value, str):
                return self.parse(value)
            scalar = _SCALAR_PARSERS[self.kind[:-1]]
            return tuple(scalar(item) for item in value)
        if self.kind == "bool":
            if not isinstance(value, bool):
                raise ConfigurationError(
                    f"param {self.name!r} expects a bool, got {value!r}"
                )
            return value
        return _SCALAR_PARSERS[self.kind](value)


# A runner takes the run context plus resolved params and returns either
# ``rows`` or ``(rows, study)``.
Runner = Callable[..., Any]


@dataclass
class ExperimentSpec:
    """A registered experiment: schema, fidelity profiles, runner, tags."""

    name: str
    description: str
    runner: Runner
    params: Tuple[Param, ...] = ()
    profiles: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()
    headline: Optional[Callable[[Any], Optional[str]]] = None

    def __post_init__(self) -> None:
        names = [param.name for param in self.params]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"{self.name}: duplicate parameter names in {names}"
            )
        for profile in PROFILE_NAMES:
            self.profiles.setdefault(profile, {})
        for profile, overrides in self.profiles.items():
            if profile not in PROFILE_NAMES:
                raise ConfigurationError(
                    f"{self.name}: unknown fidelity profile {profile!r}"
                )
            unknown = set(overrides) - set(names)
            if unknown:
                raise ConfigurationError(
                    f"{self.name}: profile {profile!r} sets unknown "
                    f"params {sorted(unknown)}"
                )
        self.tags = tuple(self.tags)

    def param(self, name: str) -> Param:
        for candidate in self.params:
            if candidate.name == name:
                return candidate
        raise ConfigurationError(
            f"{self.name}: unknown parameter {name!r}; expected one of "
            f"{[p.name for p in self.params]}"
        )

    def cli_params(self) -> List[Param]:
        return [param for param in self.params if param.cli]

    def resolve(
        self,
        profile: Optional[str] = None,
        overrides: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        """Defaults < fidelity profile < explicit overrides."""
        if profile is not None and profile not in self.profiles:
            raise ConfigurationError(
                f"{self.name}: unknown fidelity profile {profile!r}; "
                f"expected one of {PROFILE_NAMES}"
            )
        resolved = {param.name: param.default for param in self.params}
        if profile is not None:
            resolved.update(self.profiles[profile])
        for name, value in dict(overrides or {}).items():
            resolved[name] = self.param(name).coerce(value)
        return resolved


class SuiteContextCache:
    """Shared suite contexts keyed by (platforms, fabric fingerprint).

    The base context per platform set is built once; fabric variants
    (e.g. the Fig. 15 tail-ratio sweep) are derived from it with
    :meth:`~repro.experiments.common.SuiteContext.with_fabric`, so the
    benchmark applications and the compiled execution models are shared
    rather than rebuilt per cell.
    """

    def __init__(self) -> None:
        self._base: Dict[Optional[Tuple[str, ...]], Any] = {}
        self._variants: Dict[Tuple[Optional[Tuple[str, ...]], str], Any] = {}

    def get(
        self,
        platform_names: Optional[Sequence[str]] = None,
        fabric: Optional[Any] = None,
    ):
        from repro.experiments.common import build_context, fabric_fingerprint

        key = tuple(platform_names) if platform_names is not None else None
        base = self._base.get(key)
        if base is None:
            base = build_context(platform_names)
            self._base[key] = base
        if fabric is None:
            return base
        variant_key = (key, fabric_fingerprint(fabric))
        variant = self._variants.get(variant_key)
        if variant is None:
            variant = base.with_fabric(fabric)
            self._variants[variant_key] = variant
        return variant

    def clear(self) -> None:
        self._base.clear()
        self._variants.clear()


@dataclass
class RunContext:
    """What a runner gets besides its resolved parameters."""

    registry: "ExperimentRegistry"
    profile: Optional[str] = None

    def suite_context(
        self,
        platform_names: Optional[Sequence[str]] = None,
        fabric: Optional[Any] = None,
    ):
        """The shared (cached) suite context for a platform set/fabric."""
        return self.registry.context_cache.get(platform_names, fabric)


@functools.lru_cache(maxsize=1)
def git_describe() -> str:
    """``git describe`` of the source tree, or ``"unknown"`` outside git."""
    root = Path(__file__).resolve().parents[3]
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if completed.returncode != 0:
        return "unknown"
    return completed.stdout.strip() or "unknown"


class ExperimentRegistry:
    """Name -> spec mapping plus the shared execution machinery."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}
        self.context_cache = SuiteContextCache()

    # ------------------------------------------------------- registration
    def register(self, spec: ExperimentSpec) -> ExperimentSpec:
        if spec.name in self._specs:
            raise ConfigurationError(
                f"experiment {spec.name!r} is already registered"
            )
        self._specs[spec.name] = spec
        return spec

    def experiment(
        self,
        name: str,
        description: str,
        params: Sequence[Param] = (),
        profiles: Optional[Mapping[str, Mapping[str, Any]]] = None,
        tags: Sequence[str] = (),
        headline: Optional[Callable[[Any], Optional[str]]] = None,
    ) -> Callable[[Runner], Runner]:
        """Decorator form: register the decorated function as the runner."""

        def decorate(runner: Runner) -> Runner:
            self.register(
                ExperimentSpec(
                    name=name,
                    description=description,
                    runner=runner,
                    params=tuple(params),
                    profiles={
                        key: dict(value)
                        for key, value in dict(profiles or {}).items()
                    },
                    tags=tuple(tags),
                    headline=headline,
                )
            )
            return runner

        return decorate

    # ------------------------------------------------------------- lookup
    def get(self, name: str) -> ExperimentSpec:
        spec = self._specs.get(name)
        if spec is None:
            raise ConfigurationError(
                f"unknown experiment {name!r}; registered: {self.names()}"
            )
        return spec

    def names(self) -> List[str]:
        return list(self._specs)

    def specs(self) -> List[ExperimentSpec]:
        return list(self._specs.values())

    def by_tag(self, tag: str) -> List[ExperimentSpec]:
        return [spec for spec in self._specs.values() if tag in spec.tags]

    # ------------------------------------------------------------ running
    def run(
        self, name: str, profile: Optional[str] = None, **overrides: Any
    ) -> ExperimentResult:
        """Resolve params, run the experiment, wrap rows + provenance."""
        spec = self.get(name)
        params = spec.resolve(profile, overrides)
        context = RunContext(registry=self, profile=profile)
        start = time.perf_counter()
        outcome = spec.runner(context, **params)
        wall_seconds = time.perf_counter() - start
        if isinstance(outcome, tuple):
            rows, study = outcome
        else:
            rows, study = outcome, None
        rows = [dict(row) for row in rows]
        recorded = {
            param.name: jsonable(params[param.name])
            for param in spec.params
            if param.record
        }
        provenance = {
            "profile": profile,
            "seed": recorded.get("seed"),
            "engine": recorded.get("engine"),
            # Shard topology of process-pool runs (fig13-fleet, dse):
            # None means serial.  Recorded so a sharded artifact is
            # reproducible from the JSON alone.
            "workers": recorded.get("workers"),
            # Effective chunking mode: None means a materialized engine
            # (or the streaming default chunk size was used).
            "chunk_requests": recorded.get("chunk_requests"),
            "git": git_describe(),
            "python": _platform.python_version(),
            "wall_time_s": round(wall_seconds, 6),
        }
        return ExperimentResult(
            experiment=name,
            params=recorded,
            rows=rows,
            provenance=provenance,
            study=study,
        )


#: The process-wide registry every harness registers into.
REGISTRY = ExperimentRegistry()

# Modules that register specs on import, in presentation order.
_EXPERIMENT_MODULES = (
    "repro.experiments.tables",
    "repro.experiments.fig03",
    "repro.experiments.fig04",
    "repro.experiments.fig07",
    "repro.experiments.fig08",
    "repro.experiments.fig09",
    "repro.experiments.fig10",
    "repro.experiments.fig11",
    "repro.experiments.fig12",
    "repro.experiments.fig13",
    "repro.experiments.fig14",
    "repro.experiments.fig15",
    "repro.experiments.fig16",
    "repro.experiments.fig17",
    "repro.experiments.chaos",
    "repro.experiments.control",
    "repro.experiments.fleet",
)


def load_all() -> ExperimentRegistry:
    """Import every experiment module so their specs are registered."""
    import importlib

    for module in _EXPERIMENT_MODULES:
        importlib.import_module(module)
    return REGISTRY


def iter_specs(tag: Optional[str] = None) -> Iterable[ExperimentSpec]:
    """Convenience: load everything, then iterate (optionally by tag)."""
    load_all()
    return REGISTRY.by_tag(tag) if tag else REGISTRY.specs()
