"""Paper-reported headline numbers used as reproduction targets.

These are the figures the evaluation section states in prose; EXPERIMENTS.md
records measured-vs-paper for each.  Tests assert *shape* (orderings,
crossovers, rough magnitudes), not exact equality — our substrate is a
simulator, not the authors' testbed.
"""

from __future__ import annotations

# Fig. 9 / abstract: end-to-end speedups (geometric means over the suite).
PAPER_SPEEDUP_DSCS_VS_CPU = 3.6
PAPER_SPEEDUP_DSCS_VS_GPU = 2.7
PAPER_SPEEDUP_DSCS_VS_NS_ARM = 3.7
PAPER_SPEEDUP_DSCS_VS_NS_FPGA = 1.7
PAPER_SPEEDUP_NS_MOBILE_GPU = 1.35
PAPER_SPEEDUP_NS_FPGA = 2.2

# Fig. 4: communication dominates the baseline.
PAPER_MIN_AVG_COMMUNICATION_SHARE = 0.55
PAPER_COMPUTE_ONLY_SPEEDUP_CAP = 1.52
PAPER_HIGH_COMM_BENCHMARKS = (
    "Credit Risk Assessment",
    "Asset Damage Detection",
    "Content Moderation",
)
PAPER_HIGH_COMM_SHARE = 0.70

# Fig. 3 / §2.2: storage tail latency.
PAPER_TAIL_P99_OVER_MEDIAN = 2.1

# Fig. 11: system energy reduction.
PAPER_ENERGY_REDUCTION_VS_CPU = 3.5
PAPER_ENERGY_REDUCTION_VS_NS_FPGA = 1.9
PAPER_ENERGY_MAX_BENCHMARK = "PPE Detection"
PAPER_ENERGY_MIN_BENCHMARK = "Credit Risk Assessment"

# Fig. 12: cost efficiency.
PAPER_COST_EFFICIENCY_DSCS = 3.4
PAPER_COST_EFFICIENCY_NS_FPGA = 1.6

# Fig. 14: batch-size sensitivity.
PAPER_BATCH1_SPEEDUP = 3.6
PAPER_BATCH64_SPEEDUP = 15.8

# Fig. 15: tail-latency sensitivity.
PAPER_TAIL_SPEEDUP_P99 = 5.0
PAPER_TAIL_SPEEDUP_P50 = 3.1

# Fig. 16: accelerated-function-count sensitivity.
PAPER_EXTRA_FUNCTIONS_SPEEDUP = 8.1  # at +3 functions

# Fig. 17: cold starts.
PAPER_COLD_SPEEDUP = 2.6

# §4.2: design space.
PAPER_MIN_DESIGN_POINTS = 650
PAPER_OPTIMAL_PE_DIM = 128
PAPER_OPTIMAL_BUFFER_MB = 4
PAPER_OPTIMAL_MEMORY = "DDR5"
PAPER_STORAGE_POWER_BUDGET_W = 25.0

# Evaluation methodology constants.
PAPER_REQUESTS_PER_MEASUREMENT = 10_000
PAPER_REPORTED_PERCENTILE = 95
PAPER_MAX_INSTANCES = 200
PAPER_SCHEDULER_QUEUE_DEPTH = 10_000
