"""Fig. 16: sensitivity to the number of accelerated functions.

Appends one to three duplicates of each application's inference stage
(emulating deeper pipelines [129, 130]) and measures DSCS speedup over the
baseline running the same extended pipeline.  Paper: improvements escalate
from 3.6x to 8.1x at +3 functions.

:func:`run` follows the paper's isolated-invocation methodology;
:func:`run_rack` serves the extended pipelines from a contended rack via
:mod:`repro.cluster.sweep` — deeper pipelines mean longer service times,
so fleet-level queueing amplifies the per-invocation trend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    geomean_speedup,
)
from repro.experiments.registry import REGISTRY, Param
import numpy as np


@dataclass
class FunctionCountStudy:
    """Speedups keyed by number of extra accelerated functions."""

    speedups: Dict[int, Dict[str, float]]

    def geomean(self, extra: int) -> float:
        return geomean_speedup(self.speedups[extra])


@REGISTRY.experiment(
    name="fig16",
    description="Fig. 16: sensitivity to the number of accelerated functions",
    params=(
        Param("extras", "ints", (0, 1, 2, 3), "extra inference stages"),
        Param("samples", "int", 500, "requests per measurement"),
        Param("seed", "int", 7, "RNG seed"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"extras": (0, 1), "samples": 100},
        "paper": {"extras": (0, 1, 2, 3), "samples": 10_000},
    },
    tags=("figure", "sensitivity"),
)
def _experiment(ctx, extras, samples, seed, context=None):
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    speedups: Dict[int, Dict[str, float]] = {}
    for extra in extras:
        per_app: Dict[str, float] = {}
        for app_name, app in context.applications.items():
            extended = app.with_extra_inference_stages(extra)
            rng_base = np.random.default_rng(seed)
            rng_dscs = np.random.default_rng(seed)
            base = np.percentile(
                context.models[BASELINE_NAME].sample_latencies(
                    extended, rng_base, samples
                ),
                95,
            )
            dscs = np.percentile(
                context.models[DSCS_NAME].sample_latencies(
                    extended, rng_dscs, samples
                ),
                95,
            )
            per_app[app_name] = float(base / dscs)
        speedups[extra] = per_app
    study = FunctionCountStudy(speedups=speedups)
    rows = [
        {"extra": extra, "geomean_speedup": round(study.geomean(extra), 3)}
        for extra in sorted(speedups)
    ]
    return rows, study


def run(
    extras=(0, 1, 2, 3),
    count: int = 500,
    seed: int = 7,
    context: SuiteContext = None,
) -> FunctionCountStudy:
    """Regenerate Fig. 16."""
    return REGISTRY.run(
        "fig16", extras=extras, samples=count, seed=seed, context=context
    ).study


@dataclass
class RackFunctionCountStudy:
    """Rack-level variant: p95 speedup per extra accelerated function."""

    speedups: Dict[int, float]
    results: Dict[Tuple[int, str], ScenarioResult]  # (extra, platform)

    def speedup(self, extra: int) -> float:
        return self.speedups[extra]


@REGISTRY.experiment(
    name="fig16-rack",
    description="Fig. 16 served from a contended rack (deeper pipelines queue)",
    params=(
        Param("extras", "ints", (0, 1, 2, 3), "extra inference stages"),
        Param("rate_scale", "float", 1.0, "scale on the request-rate envelope"),
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event"),
        Param("percentile", "float", 95.0, "speedup percentile"),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"extras": (0, 1), "rate_scale": 0.05, "max_instances": 20},
        "paper": {"extras": (0, 1, 2, 3)},
    },
    tags=("figure", "rack", "sensitivity"),
)
def _rack_experiment(
    ctx, extras, rate_scale, max_instances, seed, engine, percentile, context=None
):
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    speedups: Dict[int, float] = {}
    results: Dict[Tuple[int, str], ScenarioResult] = {}
    trace = None
    for extra in extras:
        extended = SuiteContext(
            applications={
                name: app.with_extra_inference_stages(extra)
                for name, app in context.applications.items()
            },
            models=context.models,
        )
        harness = RackSweep(extended, engine=engine)
        if trace is None:
            trace = harness.trace_for(seed, rate_scale)
        cells = harness.run(
            scenario_grid(
                platforms=extended.platform_names,
                rate_scales=(rate_scale,),
                max_instances=(max_instances,),
                seed=seed,
            ),
            trace=trace,
        )
        by_platform = {cell.scenario.platform: cell for cell in cells}
        results[(extra, BASELINE_NAME)] = by_platform[BASELINE_NAME]
        results[(extra, DSCS_NAME)] = by_platform[DSCS_NAME]
        speedups[extra] = by_platform[BASELINE_NAME].latency_percentile(
            percentile
        ) / by_platform[DSCS_NAME].latency_percentile(percentile)
    study = RackFunctionCountStudy(speedups=speedups, results=results)
    rows = [
        {"extra": extra, "speedup": round(value, 3)}
        for extra, value in sorted(speedups.items())
    ]
    return rows, study


def run_rack(
    extras=(0, 1, 2, 3),
    rate_scale: float = 1.0,
    max_instances: int = 200,
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
    percentile: float = 95.0,
) -> RackFunctionCountStudy:
    """Fig. 16 on a contended rack: one grid per pipeline depth.

    The trace depends only on application *names* (which extension
    preserves), so one realisation is shared across every depth; each
    depth gets its own sweep because the extended applications change
    the service-time distributions.
    """
    return REGISTRY.run(
        "fig16-rack",
        extras=extras,
        rate_scale=rate_scale,
        max_instances=max_instances,
        seed=seed,
        context=context,
        engine=engine,
        percentile=percentile,
    ).study
