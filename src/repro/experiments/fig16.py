"""Fig. 16: sensitivity to the number of accelerated functions.

Appends one to three duplicates of each application's inference stage
(emulating deeper pipelines [129, 130]) and measures DSCS speedup over the
baseline running the same extended pipeline.  Paper: improvements escalate
from 3.6x to 8.1x at +3 functions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    build_context,
    geomean_speedup,
)
import numpy as np


@dataclass
class FunctionCountStudy:
    """Speedups keyed by number of extra accelerated functions."""

    speedups: Dict[int, Dict[str, float]]

    def geomean(self, extra: int) -> float:
        return geomean_speedup(self.speedups[extra])


def run(
    extras=(0, 1, 2, 3),
    count: int = 500,
    seed: int = 7,
    context: SuiteContext = None,
) -> FunctionCountStudy:
    """Regenerate Fig. 16."""
    context = context or build_context(platform_names=[BASELINE_NAME, DSCS_NAME])
    speedups: Dict[int, Dict[str, float]] = {}
    for extra in extras:
        per_app: Dict[str, float] = {}
        for app_name, app in context.applications.items():
            extended = app.with_extra_inference_stages(extra)
            rng_base = np.random.default_rng(seed)
            rng_dscs = np.random.default_rng(seed)
            base = np.percentile(
                context.models[BASELINE_NAME].sample_latencies(
                    extended, rng_base, count
                ),
                95,
            )
            dscs = np.percentile(
                context.models[DSCS_NAME].sample_latencies(
                    extended, rng_dscs, count
                ),
                95,
            )
            per_app[app_name] = float(base / dscs)
        speedups[extra] = per_app
    return FunctionCountStudy(speedups=speedups)
