"""Shared machinery for the per-figure experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.platforms.base import ComputePlatform
from repro.platforms.registry import PLATFORM_BUILDERS
from repro.serverless.application import Application
from repro.sim.stats import geometric_mean

BASELINE_NAME = "Baseline (CPU)"
DSCS_NAME = "DSCS-Serverless"

# Monte-Carlo sample count for fast (test/bench) runs; the paper uses
# 10,000 requests per measurement.
FAST_SAMPLE_COUNT = 2000


@dataclass
class SuiteContext:
    """Pre-built suite + execution models for a set of platforms."""

    applications: Dict[str, Application]
    models: Dict[str, ServerlessExecutionModel]

    @property
    def app_names(self) -> List[str]:
        return list(self.applications)

    @property
    def platform_names(self) -> List[str]:
        return list(self.models)

    def with_fabric(self, fabric: StorageFabric) -> "SuiteContext":
        """This context with every model's storage fabric swapped.

        Applications and platform objects (hence compiled programs) are
        shared with the original context — only the data-path model
        changes, which is what fabric sweeps like Fig. 15 vary.
        """
        return SuiteContext(
            applications=self.applications,
            models={
                name: model.with_fabric(fabric)
                for name, model in self.models.items()
            },
        )


def fabric_fingerprint(fabric: StorageFabric) -> str:
    """A value-based cache key for a fabric configuration.

    Every component of :class:`~repro.core.fabric.StorageFabric` is a
    dataclass whose repr lists its field values, so two independently
    constructed but identical fabrics fingerprint identically.
    """
    return repr(fabric)


def build_context(
    platform_names: Optional[Sequence[str]] = None,
    fabric: Optional[StorageFabric] = None,
) -> SuiteContext:
    """Build the benchmark suite plus execution models for the platforms.

    DSA-backed platforms compile benchmark graphs through the process-wide
    :func:`~repro.compiler.executable.shared_program_cache` and simulate
    with the vectorized packed engine, so repeated context builds (one per
    figure harness) reuse compilation: the graph fingerprint is
    content-based, and freshly rebuilt suites hash to the same programs.
    """
    fabric = fabric or StorageFabric()
    names = list(platform_names) if platform_names else list(PLATFORM_BUILDERS)
    models = {}
    for name in names:
        platform: ComputePlatform = PLATFORM_BUILDERS[name]()
        models[name] = ServerlessExecutionModel(platform=platform, fabric=fabric)
    return SuiteContext(applications=benchmark_suite(), models=models)


def p95_latency_table(
    context: SuiteContext,
    count: int = FAST_SAMPLE_COUNT,
    percentile: float = 95.0,
    batch: int = 1,
    seed: int = 7,
) -> Dict[str, Dict[str, float]]:
    """``{platform: {benchmark: p95 latency}}`` via Monte-Carlo sampling."""
    table: Dict[str, Dict[str, float]] = {}
    for platform_name, model in context.models.items():
        rng = np.random.default_rng(seed)
        row = {}
        for app_name, app in context.applications.items():
            samples = model.sample_latencies(app, rng, count, batch=batch)
            row[app_name] = float(np.percentile(samples, percentile))
        table[platform_name] = row
    return table


def speedups_vs_baseline(
    latency_table: Dict[str, Dict[str, float]],
    baseline: str = BASELINE_NAME,
) -> Dict[str, Dict[str, float]]:
    """Normalise a latency table to the baseline platform (Fig. 9 form)."""
    base = latency_table[baseline]
    return {
        platform: {app: base[app] / row[app] for app in row}
        for platform, row in latency_table.items()
    }


def geomean_speedup(per_benchmark: Dict[str, float]) -> float:
    """Suite-level speedup aggregate."""
    return geometric_mean(list(per_benchmark.values()))
