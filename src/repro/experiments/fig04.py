"""Fig. 4: baseline runtime breakdown and the Amdahl acceleration cap.

Per benchmark: the fraction of end-to-end time spent in compute,
communication (network + I/O), and the serverless system stack on the
Baseline (CPU) with remote storage.  The paper's headline: communication
averages >55%, three benchmarks exceed 70%, and accelerating compute alone
caps speedup at ~1.52x.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.breakdown import Component
from repro.core.fabric import StorageFabric
from repro.core.model import ServerlessExecutionModel
from repro.experiments.benchmarks import benchmark_suite
from repro.experiments.registry import REGISTRY, Param
from repro.platforms.registry import baseline_cpu


@dataclass(frozen=True)
class BreakdownShares:
    """Share of end-to-end latency per high-level component."""

    benchmark: str
    total_seconds: float
    compute: float
    communication: float
    system_stack: float

    @property
    def amdahl_compute_cap(self) -> float:
        """Max speedup from accelerating compute alone (Amdahl's law)."""
        return 1.0 / (1.0 - self.compute)


@REGISTRY.experiment(
    name="fig04",
    description="Fig. 4: baseline runtime breakdown and the Amdahl cap",
    params=(
        Param("seed", "int", 5, "RNG seed"),
        Param("averages_of", "int", 32, "invocations averaged per benchmark"),
    ),
    profiles={"fast": {"averages_of": 8}, "paper": {"averages_of": 32}},
    tags=("figure", "breakdown"),
)
def _experiment(ctx, seed, averages_of):
    model = ServerlessExecutionModel(platform=baseline_cpu(), fabric=StorageFabric())
    rng = np.random.default_rng(seed)
    results: Dict[str, BreakdownShares] = {}
    for name, app in benchmark_suite().items():
        totals = np.zeros(3)
        grand = 0.0
        for _ in range(averages_of):
            breakdown = model.invoke(app, rng).latency
            totals += np.array(
                [
                    breakdown.compute,
                    breakdown.communication,
                    breakdown.get(Component.SYSTEM_STACK),
                ]
            )
            grand += breakdown.total
        compute, communication, stack = totals / grand
        results[name] = BreakdownShares(
            benchmark=name,
            total_seconds=grand / averages_of,
            compute=float(compute),
            communication=float(communication),
            system_stack=float(stack),
        )
    rows = [
        {
            "benchmark": r.benchmark,
            "total_ms": round(r.total_seconds * 1e3, 1),
            "communication": round(r.communication, 3),
            "compute": round(r.compute, 3),
            "system_stack": round(r.system_stack, 3),
        }
        for r in results.values()
    ]
    return rows, results


def run(seed: int = 5, averages_of: int = 32) -> Dict[str, BreakdownShares]:
    """Regenerate Fig. 4 (averaging the sampled remote-path tails)."""
    return REGISTRY.run("fig04", seed=seed, averages_of=averages_of).study


def average_communication_share(results: Dict[str, BreakdownShares]) -> float:
    return float(np.mean([r.communication for r in results.values()]))


def average_compute_cap(results: Dict[str, BreakdownShares]) -> float:
    """Suite-average Amdahl cap (paper: 1.52x)."""
    mean_compute = float(np.mean([r.compute for r in results.values()]))
    return 1.0 / (1.0 - mean_compute)
