"""Fig. 3: CDF of reading inputs from remote (S3-like) storage.

For each benchmark, sample many remote reads of the application's input
payload and return the CDF plus median/p99 statistics.  The paper's
finding: reads land in the 0.02-0.2 s band and the p99/median gap averages
~110%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.fabric import StorageFabric
from repro.experiments.benchmarks import benchmark_suite
from repro.experiments.registry import REGISTRY, Param
from repro.sim.stats import cdf_points


@dataclass(frozen=True)
class ReadLatencyCDF:
    """CDF data for one benchmark's input reads."""

    benchmark: str
    values: np.ndarray
    probabilities: np.ndarray
    median: float
    p99: float

    @property
    def tail_ratio(self) -> float:
        return self.p99 / self.median


@REGISTRY.experiment(
    name="fig03",
    description="Fig. 3: remote-read latency CDFs (median / p99 / tail ratio)",
    params=(
        Param("samples", "int", 10_000, "remote reads per benchmark"),
        Param("seed", "int", 11, "RNG seed"),
        Param("fabric", "object", None, cli=False),
    ),
    profiles={"fast": {"samples": 500}, "paper": {"samples": 10_000}},
    tags=("figure", "storage"),
)
def _experiment(ctx, samples, seed, fabric=None):
    fabric = fabric or StorageFabric()
    rng = np.random.default_rng(seed)
    results: Dict[str, ReadLatencyCDF] = {}
    for name, app in benchmark_suite().items():
        draws = fabric.remote_read_many(app.input_bytes, rng, samples)
        values, probs = cdf_points(draws)
        results[name] = ReadLatencyCDF(
            benchmark=name,
            values=values,
            probabilities=probs,
            median=float(np.percentile(draws, 50)),
            p99=float(np.percentile(draws, 99)),
        )
    rows = [
        {
            "benchmark": r.benchmark,
            "median_ms": round(r.median * 1e3, 2),
            "p99_ms": round(r.p99 * 1e3, 2),
            "tail_ratio": round(r.tail_ratio, 2),
        }
        for r in results.values()
    ]
    return rows, results


def run(
    samples: int = 10_000, seed: int = 11, fabric: StorageFabric = None
) -> Dict[str, ReadLatencyCDF]:
    """Regenerate Fig. 3's per-benchmark read-latency CDFs."""
    return REGISTRY.run("fig03", samples=samples, seed=seed, fabric=fabric).study


def average_tail_ratio(results: Dict[str, ReadLatencyCDF]) -> float:
    """Average p99/median across benchmarks (paper: ~2.1)."""
    ratios = [r.tail_ratio for r in results.values()]
    return float(np.mean(ratios))
