"""Fig. 3: CDF of reading inputs from remote (S3-like) storage.

For each benchmark, sample many remote reads of the application's input
payload and return the CDF plus median/p99 statistics.  The paper's
finding: reads land in the 0.02-0.2 s band and the p99/median gap averages
~110%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.fabric import StorageFabric
from repro.experiments.benchmarks import benchmark_suite
from repro.sim.stats import cdf_points


@dataclass(frozen=True)
class ReadLatencyCDF:
    """CDF data for one benchmark's input reads."""

    benchmark: str
    values: np.ndarray
    probabilities: np.ndarray
    median: float
    p99: float

    @property
    def tail_ratio(self) -> float:
        return self.p99 / self.median


def run(
    samples: int = 10_000, seed: int = 11, fabric: StorageFabric = None
) -> Dict[str, ReadLatencyCDF]:
    """Regenerate Fig. 3's per-benchmark read-latency CDFs."""
    fabric = fabric or StorageFabric()
    rng = np.random.default_rng(seed)
    results: Dict[str, ReadLatencyCDF] = {}
    for name, app in benchmark_suite().items():
        draws = fabric.remote_read_many(app.input_bytes, rng, samples)
        values, probs = cdf_points(draws)
        results[name] = ReadLatencyCDF(
            benchmark=name,
            values=values,
            probabilities=probs,
            median=float(np.percentile(draws, 50)),
            p99=float(np.percentile(draws, 99)),
        )
    return results


def average_tail_ratio(results: Dict[str, ReadLatencyCDF]) -> float:
    """Average p99/median across benchmarks (paper: ~2.1)."""
    ratios = [r.tail_ratio for r in results.values()]
    return float(np.mean(ratios))
