"""Fig. 13: at-scale behaviour under a bursty 20-minute trace.

(a) the input trace; (b) scheduler queue depth over time for both systems;
(c) Baseline (CPU) latency over time; (d) DSCS-Serverless latency over
time.  The baseline saturates its 200 instances and accumulates queued
requests, so its latency climbs; DSCS serves the same trace with headroom.

:func:`run` regenerates the paper's figure; :func:`sweep` fans the same
study out over a rate-scale x fleet-size x policy grid through
:mod:`repro.cluster.sweep`, reusing traces and service samples across
cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cluster.simulation import RackSimulation, SimulationSeries
from repro.cluster.sweep import RackSweep, ScenarioResult, scenario_grid
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
    build_context,
)


@dataclass
class AtScaleStudy:
    """Trace plus both systems' measurement series."""

    trace: RequestTrace
    baseline: SimulationSeries
    dscs: SimulationSeries

    @property
    def baseline_peak_queue(self) -> int:
        return int(self.baseline.queue_depth.max()) if len(self.baseline.queue_depth) else 0

    @property
    def dscs_peak_queue(self) -> int:
        return int(self.dscs.queue_depth.max()) if len(self.dscs.queue_depth) else 0

    @property
    def wall_clock_improvement(self) -> float:
        """Baseline wall-clock time over DSCS wall-clock time."""
        if self.dscs.wall_clock_seconds == 0:
            return float("inf")
        return self.baseline.wall_clock_seconds / self.dscs.wall_clock_seconds


def run(
    max_instances: int = 200,
    seed: int = 13,
    context: SuiteContext = None,
    rate_scale: float = 1.0,
    engine: str = "auto",
) -> AtScaleStudy:
    """Regenerate Fig. 13 end to end."""
    context = context or build_context(
        platform_names=[BASELINE_NAME, DSCS_NAME]
    )
    app_names = context.app_names
    from repro.cluster.trace import DEFAULT_RATE_ENVELOPE

    envelope = tuple(rate * rate_scale for rate in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(seed))

    baseline_sim = RackSimulation(
        context.models[BASELINE_NAME],
        context.applications,
        max_instances=max_instances,
        seed=seed,
    )
    dscs_sim = RackSimulation(
        context.models[DSCS_NAME],
        context.applications,
        max_instances=max_instances,
        seed=seed,
    )
    return AtScaleStudy(
        trace=trace,
        baseline=baseline_sim.run(trace, engine=engine),
        dscs=dscs_sim.run(trace, engine=engine),
    )


def sweep(
    rate_scales: Sequence[float] = (0.5, 1.0),
    max_instances: Sequence[int] = (100, 200),
    policies: Sequence[str] = ("fcfs",),
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
) -> List[ScenarioResult]:
    """The Fig. 13 study as a scenario grid over both platforms.

    Every cell shares the per-``(seed, rate_scale)`` trace realisation
    and the per-platform service-sample blocks, so widening the grid
    costs simulation time only, not input regeneration.
    """
    context = context or build_context(
        platform_names=[BASELINE_NAME, DSCS_NAME]
    )
    harness = RackSweep(context, engine=engine)
    scenarios = scenario_grid(
        platforms=context.platform_names,
        rate_scales=rate_scales,
        max_instances=max_instances,
        policies=policies,
        seed=seed,
    )
    return harness.run(scenarios)
