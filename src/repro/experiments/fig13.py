"""Fig. 13: at-scale behaviour under a bursty 20-minute trace.

(a) the input trace; (b) scheduler queue depth over time for both systems;
(c) Baseline (CPU) latency over time; (d) DSCS-Serverless latency over
time.  The baseline saturates its 200 instances and accumulates queued
requests, so its latency climbs; DSCS serves the same trace with headroom.

:func:`run` regenerates the paper's figure; :func:`sweep` fans the same
study out over a rate-scale x fleet-size x policy grid through
:mod:`repro.cluster.sweep`, reusing traces and service samples across
cells.  :func:`policy_sweep` (the ``fig13-policy`` experiment) is the
scheduling-policy study: the same grid crossed with all four policies
(FCFS and the paper's future-work SJF / criticality / DAG-aware), every
cell running on a vectorized engine — the busy-period FCFS kernel or the
index-priority engine of :mod:`repro.cluster.policy_engine`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cluster.simulation import RackSimulation, SimulationSeries
from repro.cluster.sweep import (
    POLICY_NAMES,
    RackSweep,
    ScenarioResult,
    scenario_grid,
)
from repro.cluster.trace import RequestTrace, TraceGenerator
from repro.errors import ConfigurationError
from repro.experiments.common import (
    BASELINE_NAME,
    DSCS_NAME,
    SuiteContext,
)
from repro.experiments.registry import REGISTRY, Param


def series_row(platform: str, series: SimulationSeries) -> dict:
    """Flat per-platform record of one simulation's headline metrics.

    Accepts either a materialized :class:`SimulationSeries` (exact
    percentiles over the latency vector) or a streaming-engine
    :class:`~repro.cluster.streaming.StreamedSeries` (sketch
    percentiles, bin-resolution accurate).
    """
    if hasattr(series, "completed_latency_seconds"):
        latencies = series.completed_latency_seconds
        completed = len(latencies)
        p95 = float(np.percentile(latencies, 95)) if completed else float("nan")
        p99 = float(np.percentile(latencies, 99)) if completed else float("nan")
    else:
        completed = series.completed_count
        p95 = series.latency_percentile(95.0) if completed else float("nan")
        p99 = series.latency_percentile(99.0) if completed else float("nan")
    return {
        "platform": platform,
        "requests": series.total_requests,
        "mean_latency_s": round(series.mean_latency_seconds, 6),
        "p95_latency_s": round(p95, 6),
        "p99_latency_s": round(p99, 6),
        "peak_queue": int(series.queue_depth.max()) if len(series.queue_depth) else 0,
        "dropped": series.dropped_requests,
        "wall_clock_s": round(series.wall_clock_seconds, 3),
    }


@dataclass
class AtScaleStudy:
    """Trace plus both systems' measurement series."""

    trace: RequestTrace
    baseline: SimulationSeries
    dscs: SimulationSeries

    @property
    def baseline_peak_queue(self) -> int:
        return int(self.baseline.queue_depth.max()) if len(self.baseline.queue_depth) else 0

    @property
    def dscs_peak_queue(self) -> int:
        return int(self.dscs.queue_depth.max()) if len(self.dscs.queue_depth) else 0

    @property
    def wall_clock_improvement(self) -> float:
        """Baseline wall-clock time over DSCS wall-clock time."""
        if self.dscs.wall_clock_seconds == 0:
            return float("inf")
        return self.baseline.wall_clock_seconds / self.dscs.wall_clock_seconds


@REGISTRY.experiment(
    name="fig13",
    description="Fig. 13: at-scale behaviour under a bursty 20-minute trace",
    params=(
        Param("max_instances", "int", 200, "fleet size per platform"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("rate_scale", "float", 1.0, "scale on the request-rate envelope"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event | streaming"),
        Param(
            "chunk_requests",
            "int",
            None,
            "streaming-engine chunk size (requests per bounded chunk)",
        ),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"rate_scale": 0.05, "max_instances": 20},
        "paper": {"rate_scale": 1.0, "max_instances": 200},
    },
    tags=("figure", "rack"),
)
def _experiment(
    ctx, max_instances, seed, rate_scale, engine,
    chunk_requests=None, context=None,
):
    study = _at_scale_study(
        max_instances=max_instances,
        seed=seed,
        context=context or ctx.suite_context([BASELINE_NAME, DSCS_NAME]),
        rate_scale=rate_scale,
        engine=engine,
        chunk_requests=chunk_requests,
    )
    rows = [
        series_row(BASELINE_NAME, study.baseline),
        series_row(DSCS_NAME, study.dscs),
    ]
    return rows, study


def _at_scale_study(
    max_instances: int,
    seed: int,
    context: SuiteContext,
    rate_scale: float,
    engine: str,
    chunk_requests=None,
) -> AtScaleStudy:
    app_names = context.app_names
    from repro.cluster.trace import DEFAULT_RATE_ENVELOPE

    envelope = tuple(rate * rate_scale for rate in DEFAULT_RATE_ENVELOPE)
    generator = TraceGenerator(app_names, rate_envelope=envelope)
    trace = generator.generate(np.random.default_rng(seed))

    baseline_sim = RackSimulation(
        context.models[BASELINE_NAME],
        context.applications,
        max_instances=max_instances,
        seed=seed,
    )
    dscs_sim = RackSimulation(
        context.models[DSCS_NAME],
        context.applications,
        max_instances=max_instances,
        seed=seed,
    )
    run_kwargs = {"engine": engine}
    if engine == "streaming":
        run_kwargs["chunk_requests"] = chunk_requests
    return AtScaleStudy(
        trace=trace,
        baseline=baseline_sim.run(trace, **run_kwargs),
        dscs=dscs_sim.run(trace, **run_kwargs),
    )


def run(
    max_instances: int = 200,
    seed: int = 13,
    context: SuiteContext = None,
    rate_scale: float = 1.0,
    engine: str = "auto",
    chunk_requests: int = None,
) -> AtScaleStudy:
    """Regenerate Fig. 13 end to end."""
    return REGISTRY.run(
        "fig13",
        max_instances=max_instances,
        seed=seed,
        context=context,
        rate_scale=rate_scale,
        engine=engine,
        chunk_requests=chunk_requests,
    ).study


def _run_scenario_grid(
    ctx,
    rate_scales,
    max_instances,
    policies,
    seed,
    engine,
    context=None,
    priorities=None,
    chunk_requests=None,
):
    """The shared fig13-sweep / fig13-policy runner body."""
    context = context or ctx.suite_context([BASELINE_NAME, DSCS_NAME])
    harness = RackSweep(
        context, engine=engine, priorities=priorities,
        chunk_requests=chunk_requests,
    )
    scenarios = scenario_grid(
        platforms=context.platform_names,
        rate_scales=rate_scales,
        max_instances=max_instances,
        policies=policies,
        seed=seed,
    )
    results = harness.run(scenarios)
    return [cell.as_row() for cell in results], results


@REGISTRY.experiment(
    name="fig13-sweep",
    description="Fig. 13 as a rate x fleet x policy scenario grid",
    params=(
        Param("rate_scales", "floats", (0.5, 1.0), "rate-envelope scales"),
        Param("max_instances", "ints", (100, 200), "fleet sizes"),
        Param("policies", "strs", ("fcfs",), "scheduling policies"),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event | streaming"),
        Param(
            "chunk_requests",
            "int",
            None,
            "streaming-engine chunk size (requests per bounded chunk)",
        ),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        "fast": {"rate_scales": (0.05,), "max_instances": (20,)},
        "paper": {"rate_scales": (0.5, 1.0), "max_instances": (100, 200)},
    },
    tags=("figure", "rack", "sweep"),
)
def _sweep_experiment(
    ctx, rate_scales, max_instances, policies, seed, engine,
    chunk_requests=None, context=None,
):
    return _run_scenario_grid(
        ctx, rate_scales, max_instances, policies, seed, engine, context,
        chunk_requests=chunk_requests,
    )


def sweep(
    rate_scales: Sequence[float] = (0.5, 1.0),
    max_instances: Sequence[int] = (100, 200),
    policies: Sequence[str] = ("fcfs",),
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
    chunk_requests: int = None,
) -> List[ScenarioResult]:
    """The Fig. 13 study as a scenario grid over both platforms.

    Every cell shares the per-``(seed, rate_scale)`` trace realisation
    and the per-platform service-sample blocks, so widening the grid
    costs simulation time only, not input regeneration.
    """
    return REGISTRY.run(
        "fig13-sweep",
        rate_scales=rate_scales,
        max_instances=max_instances,
        policies=policies,
        seed=seed,
        context=context,
        engine=engine,
        chunk_requests=chunk_requests,
    ).study


def _policy_headline(results) -> str:
    """Which policy wins mean latency on the most loaded baseline cell."""
    if not results:
        return ""
    baseline = [r for r in results if r.scenario.platform == BASELINE_NAME]
    cells = baseline or list(results)
    top_rate = max(cell.scenario.rate_scale for cell in cells)
    min_fleet = min(cell.scenario.max_instances for cell in cells)
    contested = [
        cell
        for cell in cells
        if cell.scenario.rate_scale == top_rate
        and cell.scenario.max_instances == min_fleet
    ]
    best = min(contested, key=lambda cell: cell.mean_latency_seconds)
    return (
        f"best mean latency at rate x{top_rate:g} / {min_fleet} instances: "
        f"{best.scenario.policy} "
        f"({best.mean_latency_seconds * 1e3:.1f} ms)"
    )


@REGISTRY.experiment(
    name="fig13-policy",
    description=(
        "Fig. 13 scheduling-policy study: rate x fleet x all four "
        "policies on the vectorized engines"
    ),
    params=(
        Param("rate_scales", "floats", (0.5, 1.0), "rate-envelope scales"),
        Param("max_instances", "ints", (100, 200), "fleet sizes"),
        Param(
            "policies",
            "strs",
            POLICY_NAMES,
            "scheduling policies (fcfs | sjf | criticality | dag)",
        ),
        Param(
            "priorities",
            "strs",
            (),
            "criticality classes as app=rank pairs "
            "(default: deterministic alphabetical ranking)",
        ),
        Param("seed", "int", 13, "trace + service RNG seed"),
        Param("engine", "str", "auto", "rack engine: auto | vectorized | event | streaming"),
        Param(
            "chunk_requests",
            "int",
            None,
            "streaming-engine chunk size (requests per bounded chunk)",
        ),
        Param("context", "object", None, cli=False),
    ),
    profiles={
        # Congested enough (16 instances under a x0.08 envelope) that the
        # policies genuinely reorder; seconds-scale on the keyed engine.
        "fast": {"rate_scales": (0.08,), "max_instances": (16,)},
        "paper": {"rate_scales": (0.5, 1.0), "max_instances": (100, 200)},
    },
    tags=("figure", "rack", "sweep", "policy"),
    headline=_policy_headline,
)
def _policy_experiment(
    ctx,
    rate_scales,
    max_instances,
    policies,
    priorities,
    seed,
    engine,
    chunk_requests=None,
    context=None,
):
    return _run_scenario_grid(
        ctx,
        rate_scales,
        max_instances,
        policies,
        seed,
        engine,
        context,
        priorities=_parse_priorities(priorities),
        chunk_requests=chunk_requests,
    )


def _parse_priorities(pairs: Sequence[str]):
    """``("app=rank", ...)`` — the CLI form — into a priority map."""
    if not pairs:
        return None
    priorities = {}
    for pair in pairs:
        name, separator, rank = str(pair).partition("=")
        if not separator or not name.strip():
            raise ConfigurationError(
                f"bad priority {pair!r}; expected app=rank"
            )
        try:
            priorities[name.strip()] = int(rank)
        except ValueError as error:
            raise ConfigurationError(
                f"bad priority rank in {pair!r}; expected an integer"
            ) from error
    return priorities


def policy_sweep(
    rate_scales: Sequence[float] = (0.5, 1.0),
    max_instances: Sequence[int] = (100, 200),
    policies: Sequence[str] = POLICY_NAMES,
    priorities: Sequence[str] = (),
    seed: int = 13,
    context: SuiteContext = None,
    engine: str = "auto",
    chunk_requests: int = None,
) -> List[ScenarioResult]:
    """The Fig. 13 grid crossed with every scheduling policy.

    FCFS cells run on the busy-period engine, keyed policies (SJF,
    criticality, DAG-aware) on the index-priority engine — all
    bit-identical to the event-driven oracle, so the policy comparison
    is exact, not approximate.  ``priorities`` takes ``"app=rank"``
    pairs for the criticality cells (default: a deterministic
    alphabetical ranking).
    """
    return REGISTRY.run(
        "fig13-policy",
        rate_scales=rate_scales,
        max_instances=max_instances,
        policies=policies,
        priorities=priorities,
        seed=seed,
        context=context,
        engine=engine,
        chunk_requests=chunk_requests,
    ).study
