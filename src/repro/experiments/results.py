"""The uniform result type every registered experiment returns.

An :class:`ExperimentResult` bundles what a figure harness produced (flat
``rows``), how it was asked to produce it (``params``), and where it came
from (``provenance``: seed, engine, git describe, wall time, versions).
The same object serialises losslessly to JSON and CSV through
:mod:`repro.experiments.report`, so artifacts written by the CLI can be
read back — provenance intact — by downstream tooling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments import report


def jsonable(value: Any) -> Any:
    """Normalise a parameter value into its JSON representation.

    Tuples (the registry's canonical sequence type) become lists so a
    params dict compares equal across a JSON round-trip.
    """
    if isinstance(value, (tuple, list)):
        return [jsonable(item) for item in value]
    if isinstance(value, Mapping):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    raise ConfigurationError(
        f"parameter value {value!r} is not JSON-serialisable; mark the "
        "parameter record=False"
    )


@dataclass
class ExperimentResult:
    """Typed rows + params + provenance for one experiment run.

    ``study`` holds the harness's rich domain object (e.g. a
    ``SpeedupStudy``) for programmatic callers; it is excluded from
    equality and from serialisation.
    """

    experiment: str
    params: Dict[str, Any]
    rows: List[Dict[str, Any]]
    provenance: Dict[str, Any]
    study: Any = field(default=None, compare=False, repr=False)

    # ------------------------------------------------------------- views
    def document(self) -> Dict[str, Any]:
        """The canonical JSON-serialisable form."""
        return {
            "experiment": self.experiment,
            "params": jsonable(self.params),
            "provenance": jsonable(self.provenance),
            "rows": [dict(row) for row in self.rows],
        }

    def to_markdown(self, title: Optional[str] = None) -> str:
        return report.to_markdown(
            self.rows, title=self.experiment if title is None else title
        )

    # ------------------------------------------------------------ output
    def write_json(self, path: Union[str, Path]) -> Path:
        return report.write_result_json(self.document(), path)

    def write_csv(self, path: Union[str, Path]) -> Path:
        """Lossless CSV (typed columns + ``#``-prefixed provenance header)."""
        return report.write_result_csv(self.document(), path)

    # ------------------------------------------------------------- input
    @classmethod
    def from_document(cls, document: Mapping[str, Any]) -> "ExperimentResult":
        missing = {"experiment", "params", "provenance", "rows"} - set(document)
        if missing:
            raise ConfigurationError(
                f"result document is missing {sorted(missing)}"
            )
        return cls(
            experiment=str(document["experiment"]),
            params=dict(document["params"]),
            rows=[dict(row) for row in document["rows"]],
            provenance=dict(document["provenance"]),
        )

    @classmethod
    def read_json(cls, path: Union[str, Path]) -> "ExperimentResult":
        table = report.read_json(path)
        if not isinstance(table, report.ResultTable):
            raise ConfigurationError(
                f"{path}: plain row table, not an experiment result document"
            )
        return cls(
            experiment=table.experiment,
            params=dict(table.params),
            rows=[dict(row) for row in table],
            provenance=dict(table.provenance),
        )

    @classmethod
    def read_csv(cls, path: Union[str, Path]) -> "ExperimentResult":
        return cls.from_document(report.read_result_csv(path))


def result_rows_equal(
    a: Sequence[Mapping[str, Any]], b: Sequence[Mapping[str, Any]]
) -> bool:
    """Order-sensitive row-table equality (helper for equivalence tests)."""
    return [dict(row) for row in a] == [dict(row) for row in b]
