"""Minimal discrete-event simulation engine with a virtual clock."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import SimulationError
from repro.sim.event_queue import Event, EventQueue


class Simulator:
    """Drives an :class:`EventQueue` forward in virtual time.

    The engine is deliberately small: components schedule callbacks with
    :meth:`schedule` / :meth:`schedule_at`, and the owner calls :meth:`run`
    (until quiescence or a horizon).  Time never moves backwards.
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._events_fired = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending(self) -> int:
        """Number of events still scheduled."""
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        action: Callable[..., Any],
        payload: Any = None,
        label: str = "",
    ):
        """Schedule ``action`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(Event(self._now + delay, action, payload, label))

    def schedule_at(
        self,
        time: float,
        action: Callable[..., Any],
        payload: Any = None,
        label: str = "",
    ):
        """Schedule ``action`` at absolute virtual ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} before current time {self._now}"
            )
        return self._queue.push(Event(time, action, payload, label))

    def cancel(self, handle) -> None:
        """Cancel a scheduled event by its handle."""
        self._queue.cancel(handle)

    def step(self) -> Event:
        """Execute the next event and advance the clock to it."""
        event = self._queue.pop()
        if event.time < self._now:
            raise SimulationError(
                f"time went backwards: {event.time} < {self._now}"
            )
        self._now = event.time
        self._events_fired += 1
        event.fire()
        return event

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> float:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        Returns the virtual time at which the run stopped.
        """
        fired = 0
        while self._queue:
            next_time = self._queue.peek_time()
            if until is not None and next_time is not None and next_time > until:
                self._now = until
                return self._now
            self.step()
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; possible event storm"
                )
        if until is not None and until > self._now:
            self._now = until
        return self._now
