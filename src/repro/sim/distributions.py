"""Seeded latency distributions.

Remote-storage access in the paper (Fig. 3) shows a long lognormal-like
tail: the gap between median and p99 read latency is ~110%.  The
:class:`ShiftedLognormal` used by the network and storage models is
parameterised directly by a target median and a target p99/median ratio so
experiments can state their calibration in the paper's own terms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

# Standard-normal quantile for p99 (used to convert a p99/median ratio into
# a lognormal sigma).
_Z99 = 2.3263478740408408


class LatencyDistribution:
    """Interface: a non-negative random latency with an analytic median."""

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorised sampling; subclasses may override for speed."""
        return np.array([self.sample(rng) for _ in range(count)])

    def median(self) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantDistribution(LatencyDistribution):
    """A degenerate distribution: always ``value`` seconds."""

    value: float

    def __post_init__(self) -> None:
        if self.value < 0:
            raise ConfigurationError(f"negative constant latency: {self.value}")

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return np.full(count, self.value)

    def median(self) -> float:
        return self.value


@dataclass(frozen=True)
class UniformDistribution(LatencyDistribution):
    """Uniform latency on ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low < 0 or self.high < self.low:
            raise ConfigurationError(
                f"invalid uniform bounds: [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=count)

    def median(self) -> float:
        return (self.low + self.high) / 2.0


@dataclass(frozen=True)
class ExponentialDistribution(LatencyDistribution):
    """Exponential latency with the given mean."""

    mean: float

    def __post_init__(self) -> None:
        if self.mean <= 0:
            raise ConfigurationError(f"non-positive exponential mean: {self.mean}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.exponential(self.mean))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.exponential(self.mean, size=count)

    def median(self) -> float:
        return self.mean * math.log(2.0)


@dataclass(frozen=True)
class LognormalDistribution(LatencyDistribution):
    """Lognormal latency parameterised by the underlying normal's mu/sigma."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"negative lognormal sigma: {self.sigma}")

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.lognormal(self.mu, self.sigma))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        return rng.lognormal(self.mu, self.sigma, size=count)

    def median(self) -> float:
        return math.exp(self.mu)


@dataclass(frozen=True)
class ShiftedLognormal(LatencyDistribution):
    """Lognormal tail on top of a deterministic floor.

    ``floor`` models the un-shrinkable part of an access (propagation,
    serialisation); the lognormal term models queueing/tail variance.  The
    distribution is constructed from a target *total* median and a target
    p99/median ratio, matching how the paper reports storage tails.
    """

    floor: float
    median_total: float
    p99_over_median: float

    def __post_init__(self) -> None:
        if self.floor < 0:
            raise ConfigurationError(f"negative floor: {self.floor}")
        if self.median_total <= self.floor:
            raise ConfigurationError(
                f"median_total {self.median_total} must exceed floor {self.floor}"
            )
        if self.p99_over_median <= 1.0:
            raise ConfigurationError(
                f"p99/median ratio must exceed 1.0, got {self.p99_over_median}"
            )

    def _params(self) -> tuple[float, float]:
        tail_median = self.median_total - self.floor
        # For the tail term alone: p99/median = exp(sigma * z99); the target
        # ratio applies to the total, so solve for sigma on the tail part.
        total_p99 = self.p99_over_median * self.median_total
        tail_p99 = total_p99 - self.floor
        sigma = math.log(tail_p99 / tail_median) / _Z99
        mu = math.log(tail_median)
        return mu, sigma

    def sample(self, rng: np.random.Generator) -> float:
        mu, sigma = self._params()
        return self.floor + float(rng.lognormal(mu, sigma))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        mu, sigma = self._params()
        return self.floor + rng.lognormal(mu, sigma, size=count)

    def median(self) -> float:
        return self.median_total

    def p99(self) -> float:
        """Analytic 99th percentile of the total latency."""
        return self.p99_over_median * self.median_total

    def scaled(self, factor: float) -> "ShiftedLognormal":
        """Return a copy with floor and median scaled by ``factor``."""
        if factor <= 0:
            raise ConfigurationError(f"non-positive scale factor: {factor}")
        return ShiftedLognormal(
            floor=self.floor * factor,
            median_total=self.median_total * factor,
            p99_over_median=self.p99_over_median,
        )
