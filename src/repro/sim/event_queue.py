"""A stable, timestamp-ordered event queue.

Events that share a timestamp are delivered in insertion order, which keeps
simulations deterministic regardless of dict/heap tie-breaking behaviour.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError


@dataclass(frozen=True)
class Event:
    """A scheduled callback with an activation time and a payload."""

    time: float
    action: Callable[..., Any]
    payload: Any = None
    label: str = ""

    def fire(self) -> Any:
        """Invoke the event's action with its payload."""
        if self.payload is None:
            return self.action()
        return self.action(self.payload)


@dataclass(order=True)
class _Entry:
    time: float
    sequence: int
    event: Event = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` ordered by ``(time, insertion order)``."""

    def __init__(self) -> None:
        self._heap: list[_Entry] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(self, event: Event) -> _Entry:
        """Schedule ``event``; returns a handle usable with :meth:`cancel`."""
        if event.time < 0:
            raise SimulationError(f"event scheduled at negative time {event.time}")
        entry = _Entry(event.time, next(self._counter), event)
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def push_many(self, events: Iterable[Event]) -> List[_Entry]:
        """Bulk-schedule ``events``; returns their handles in input order.

        A single ``heapify`` over the merged backing list is O(n + m),
        versus O(m log(n + m)) for m individual pushes — the win that
        matters when seeding a simulation with a whole trace of arrivals.
        Insertion-order tie-breaking is identical to sequential pushes.
        """
        entries: List[_Entry] = []
        for event in events:
            if event.time < 0:
                raise SimulationError(
                    f"event scheduled at negative time {event.time}"
                )
            entries.append(_Entry(event.time, next(self._counter), event))
        if entries:
            self._heap.extend(entries)
            heapq.heapify(self._heap)
            self._live += len(entries)
        return entries

    def cancel(self, entry: _Entry) -> None:
        """Mark a previously pushed event as cancelled (lazy deletion)."""
        if not entry.cancelled:
            entry.cancelled = True
            self._live -= 1

    def pop(self) -> Event:
        """Remove and return the earliest live event."""
        while self._heap:
            entry = heapq.heappop(self._heap)
            if not entry.cancelled:
                self._live -= 1
                return entry.event
        raise SimulationError("pop from empty event queue")

    def peek_time(self) -> Optional[float]:
        """Return the activation time of the earliest live event, if any."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time
