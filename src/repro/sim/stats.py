"""Percentile/CDF helpers shared by every experiment harness.

Besides the exact helpers (which materialize the full sample vector),
this module provides :class:`QuantileSketch` — a mergeable,
constant-memory log-histogram for tail percentiles at fleet scale, where
shipping every per-rack latency vector to the stitch point stops
fitting.  Per-rack accumulators merge exactly (bin counts add), and the
estimate error is bounded by the bin resolution alone, independent of
sample count or merge order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``samples``."""
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile out of range: {q}")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("percentile of empty sample set")
    return float(np.percentile(arr, q))


def cdf_points(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, cumulative probabilities)`` for plotting a CDF."""
    arr = np.sort(np.asarray(list(samples), dtype=float))
    if arr.size == 0:
        raise ConfigurationError("CDF of empty sample set")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


@dataclass(frozen=True)
class Summary:
    """Five-number-style latency summary used in experiment reports."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Return the summary as a flat dict for tabular output."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("summary of empty sample set")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )

def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; used for cross-benchmark speedup aggregation."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))


class QuantileSketch:
    """Mergeable constant-memory quantile sketch (fixed-bin log histogram).

    Values land in logarithmically spaced bins between ``lo`` and ``hi``
    (``bins_per_decade`` bins per factor of ten), with exact min/max/sum
    tracked on the side.  Two sketches with the same bin configuration
    merge by adding counts, so fleet-level tail percentiles come from
    O(racks) constant-size accumulators instead of one giant latency
    vector — and the merged estimate is *identical* to the estimate a
    single sketch over the concatenated samples would give, regardless
    of merge order.

    **Accuracy contract** (the "documented bin-resolution bound"):
    :meth:`percentile` locates the order statistic of rank
    ``floor(q/100 * (count - 1))`` — the ``method="lower"`` convention
    of :func:`numpy.percentile` — and returns the log-space midpoint of
    its bin.  Any in-range value lies within half a bin of its midpoint,
    so the estimate's relative error against that exact order statistic
    is at most :attr:`relative_error_bound` = ``10**(1/bins_per_decade)
    - 1`` (a full bin width: half a bin from the midpoint plus margin
    for the floating-point binning of edge-straddling values).  Values
    below ``lo`` report the exact minimum, values at or above ``hi`` the
    exact maximum, so out-of-range tails degrade to exact endpoints
    rather than silently losing resolution.
    """

    def __init__(
        self,
        lo: float = 1e-6,
        hi: float = 1e5,
        bins_per_decade: int = 64,
    ) -> None:
        if not (math.isfinite(lo) and lo > 0):
            raise ConfigurationError(f"non-positive sketch lower bound: {lo}")
        if not (math.isfinite(hi) and hi > lo):
            raise ConfigurationError(
                f"sketch upper bound {hi} must exceed lower bound {lo}"
            )
        if int(bins_per_decade) < 1:
            raise ConfigurationError(
                f"non-positive bins per decade: {bins_per_decade}"
            )
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins_per_decade = int(bins_per_decade)
        decades = math.log10(self.hi / self.lo)
        self._bins = max(1, int(math.ceil(decades * self.bins_per_decade)))
        # counts[0] = underflow (< lo, incl. zeros), counts[-1] = overflow.
        self._counts = np.zeros(self._bins + 2, dtype=np.int64)
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------ config
    @property
    def config(self) -> tuple:
        """The merge-compatibility key: (lo, hi, bins_per_decade)."""
        return (self.lo, self.hi, self.bins_per_decade)

    @property
    def relative_error_bound(self) -> float:
        """Worst-case relative error for in-range percentile estimates."""
        return 10.0 ** (1.0 / self.bins_per_decade) - 1.0

    # ------------------------------------------------------------- state
    @property
    def count(self) -> int:
        return int(self._counts.sum())

    @property
    def bin_counts(self) -> np.ndarray:
        """A copy of the raw bin counts (underflow, bins..., overflow)."""
        return self._counts.copy()

    def identical_to(self, other: "QuantileSketch") -> bool:
        """Exact accumulator equality: config, bin counts, min and max.

        Deliberately ignores the running ``_sum``: numpy's pairwise
        summation makes it depend on how samples were batched, so two
        sketches over the same multiset folded in different chunkings
        can differ there in the last bit while every query that matters
        (counts, percentiles, endpoints) is identical.
        """
        return (
            isinstance(other, QuantileSketch)
            and self.config == other.config
            and np.array_equal(self._counts, other._counts)
            and self._min == other._min
            and self._max == other._max
        )

    @property
    def minimum(self) -> float:
        return float(self._min) if self.count else float("nan")

    @property
    def maximum(self) -> float:
        return float(self._max) if self.count else float("nan")

    @property
    def mean(self) -> float:
        n = self.count
        return self._sum / n if n else float("nan")

    # --------------------------------------------------------- accumulate
    def add(self, values) -> "QuantileSketch":
        """Fold a batch of non-negative samples into the sketch."""
        arr = np.asarray(values, dtype=float).ravel()
        if arr.size == 0:
            return self
        if not np.all(np.isfinite(arr)) or np.any(arr < 0):
            raise ConfigurationError(
                "sketch samples must be finite and non-negative"
            )
        positive = arr > 0
        indices = np.zeros(arr.shape, dtype=np.int64)
        if positive.any():
            scaled = np.floor(
                np.log10(arr[positive] / self.lo) * self.bins_per_decade
            ).astype(np.int64)
            indices[positive] = np.clip(scaled + 1, 0, self._bins + 1)
        self._counts += np.bincount(indices, minlength=self._bins + 2)
        self._sum += float(arr.sum())
        self._min = min(self._min, float(arr.min()))
        self._max = max(self._max, float(arr.max()))
        return self

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        """Fold another sketch's accumulators into this one (in place)."""
        if not isinstance(other, QuantileSketch):
            raise ConfigurationError(
                f"cannot merge {type(other).__name__} into a QuantileSketch"
            )
        if other.config != self.config:
            raise ConfigurationError(
                f"incompatible sketch configs: {self.config} vs {other.config}"
            )
        self._counts += other._counts
        self._sum += other._sum
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        return self

    @classmethod
    def merged(cls, sketches: Sequence["QuantileSketch"]) -> "QuantileSketch":
        """A fresh sketch holding the sum of all the given accumulators."""
        if not sketches:
            raise ConfigurationError("merge of empty sketch list")
        first = sketches[0]
        result = cls(first.lo, first.hi, first.bins_per_decade)
        for sketch in sketches:
            result.merge(sketch)
        return result

    # ------------------------------------------------------------ queries
    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0..100); NaN when empty."""
        if not 0 <= q <= 100:
            raise ConfigurationError(f"percentile out of range: {q}")
        n = self.count
        if n == 0:
            return float("nan")
        if q == 0:
            return float(self._min)
        if q == 100:
            return float(self._max)
        rank = int(math.floor(q / 100.0 * (n - 1)))  # 0-indexed, "lower"
        cumulative = np.cumsum(self._counts)
        bin_index = int(np.searchsorted(cumulative, rank + 1, side="left"))
        if bin_index == 0:
            return float(self._min)
        if bin_index == self._bins + 1:
            return float(self._max)
        midpoint = self.lo * 10.0 ** (
            (bin_index - 0.5) / self.bins_per_decade
        )
        return float(min(max(midpoint, self._min), self._max))

    def as_dict(self, percentiles: Sequence[float] = (50.0, 95.0, 99.0)):
        """Compact JSON-ready summary (no raw bin counts)."""
        return {
            "lo": self.lo,
            "hi": self.hi,
            "bins_per_decade": self.bins_per_decade,
            "relative_error_bound": self.relative_error_bound,
            "count": self.count,
            "underflow": int(self._counts[0]),
            "overflow": int(self._counts[-1]),
            "min": self.minimum,
            "max": self.maximum,
            "mean": self.mean,
            **{
                f"p{q:g}": self.percentile(q) for q in percentiles
            },
        }
