"""Percentile/CDF helpers shared by every experiment harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError


def percentile(samples: Sequence[float], q: float) -> float:
    """Return the ``q``-th percentile (0..100) of ``samples``."""
    if not 0 <= q <= 100:
        raise ConfigurationError(f"percentile out of range: {q}")
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("percentile of empty sample set")
    return float(np.percentile(arr, q))


def cdf_points(samples: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(sorted values, cumulative probabilities)`` for plotting a CDF."""
    arr = np.sort(np.asarray(list(samples), dtype=float))
    if arr.size == 0:
        raise ConfigurationError("CDF of empty sample set")
    probs = np.arange(1, arr.size + 1) / arr.size
    return arr, probs


@dataclass(frozen=True)
class Summary:
    """Five-number-style latency summary used in experiment reports."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def as_row(self) -> dict[str, float]:
        """Return the summary as a flat dict for tabular output."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.maximum,
        }


def summarize(samples: Iterable[float]) -> Summary:
    """Compute a :class:`Summary` over ``samples``."""
    arr = np.asarray(list(samples), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("summary of empty sample set")
    return Summary(
        count=int(arr.size),
        mean=float(arr.mean()),
        p50=float(np.percentile(arr, 50)),
        p95=float(np.percentile(arr, 95)),
        p99=float(np.percentile(arr, 99)),
        maximum=float(arr.max()),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean; used for cross-benchmark speedup aggregation."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ConfigurationError("geometric mean of empty sequence")
    if np.any(arr <= 0):
        raise ConfigurationError("geometric mean requires positive values")
    return float(np.exp(np.mean(np.log(arr))))
