"""Discrete-event simulation kernel and stochastic latency primitives.

This package is the substrate under both the at-scale cluster simulator
(`repro.cluster`) and the storage/network latency models.  It provides:

- :class:`~repro.sim.event_queue.EventQueue` — a stable priority queue of
  timestamped events.
- :class:`~repro.sim.simulator.Simulator` — a minimal discrete-event engine
  with a virtual clock.
- :mod:`repro.sim.distributions` — seeded latency distributions (lognormal
  tails for remote storage, Poisson arrivals for traces).
- :mod:`repro.sim.stats` — percentile/CDF helpers used by every experiment.
"""

from repro.sim.distributions import (
    ConstantDistribution,
    ExponentialDistribution,
    LatencyDistribution,
    LognormalDistribution,
    ShiftedLognormal,
    UniformDistribution,
)
from repro.sim.event_queue import Event, EventQueue
from repro.sim.simulator import Simulator
from repro.sim.stats import cdf_points, percentile, summarize

__all__ = [
    "ConstantDistribution",
    "Event",
    "EventQueue",
    "ExponentialDistribution",
    "LatencyDistribution",
    "LognormalDistribution",
    "ShiftedLognormal",
    "Simulator",
    "UniformDistribution",
    "cdf_points",
    "percentile",
    "summarize",
]
