"""Cross-cutting analysis utilities: Pareto frontiers, energy, cost.

Used by the design-space exploration (Figs. 7/8), the energy-reduction
figure (Fig. 11), and the cost-efficiency figure (Fig. 12).
"""

from repro.analysis.cost import (
    CostModel,
    SystemCost,
    system_cost_for,
)
from repro.analysis.pareto import DesignPoint2D, pareto_front, pareto_front_points
from repro.analysis.roofline import RooflinePoint, analyze as roofline_analyze

__all__ = [
    "CostModel",
    "DesignPoint2D",
    "RooflinePoint",
    "SystemCost",
    "pareto_front",
    "pareto_front_points",
    "roofline_analyze",
    "system_cost_for",
]
