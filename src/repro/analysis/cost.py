"""Cost-efficiency model (paper §6.1, Fig. 12).

Follows E3 [101]:

    cost efficiency = throughput x T / (CAPEX + OPEX)

CAPEX covers the entire serving system — compute server, storage server,
and the evaluated device.  Crucially, DSCS-Serverless does not remove the
compute tier (the notification function still runs there); it adds a
DSCS-Drive premium to the storage tier.  OPEX is electricity over a
three-year period at 30% utilisation, the 2023 US industrial rate, with a
datacenter PUE factor for cooling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.platforms.base import ComputePlatform, PlatformKind
from repro.units import HOUR

# Component prices (US$, off-the-shelf market figures the paper cites).
COMPUTE_SERVER_USD = 6500.0
STORAGE_SERVER_USD = 4000.0
PLAIN_SSD_USD = 500.0

# Steady-state power of the supporting tiers (watts).
STORAGE_NODE_POWER_W = 120.0
COMPUTE_NODE_IDLE_POWER_W = 65.0

US_INDUSTRIAL_RATE_PER_KWH = 0.0975  # 2023 average [128]
DATACENTER_PUE = 1.5  # cooling overhead


@dataclass(frozen=True)
class SystemCost:
    """Full-system cost inputs for one platform."""

    platform_name: str
    capex_usd: float
    average_power_watts: float

    def __post_init__(self) -> None:
        if self.capex_usd <= 0:
            raise ConfigurationError(f"{self.platform_name}: non-positive CAPEX")
        if self.average_power_watts < 0:
            raise ConfigurationError(f"{self.platform_name}: negative power")


def system_cost_for(platform: ComputePlatform) -> SystemCost:
    """Build the full serving-system cost for a Table 2 platform.

    Traditional platforms' ``capex_usd`` already includes their compute
    server; they additionally need the storage tier.  Near-storage and
    DSCS platforms attach their device to the storage tier but keep a
    compute server for the non-accelerated functions.
    """
    if platform.kind is PlatformKind.TRADITIONAL:
        capex = platform.capex_usd + STORAGE_SERVER_USD + PLAIN_SSD_USD
        power = platform.active_power_watts + STORAGE_NODE_POWER_W
    else:
        capex = platform.capex_usd + COMPUTE_SERVER_USD + STORAGE_SERVER_USD
        power = (
            platform.active_power_watts
            + STORAGE_NODE_POWER_W
            + COMPUTE_NODE_IDLE_POWER_W
        )
    return SystemCost(
        platform_name=platform.name,
        capex_usd=capex,
        average_power_watts=power,
    )


@dataclass(frozen=True)
class CostModel:
    """Three-year total-cost-of-ownership model."""

    years: float = 3.0
    utilization: float = 0.30
    electricity_rate_per_kwh: float = US_INDUSTRIAL_RATE_PER_KWH
    pue: float = DATACENTER_PUE

    def __post_init__(self) -> None:
        if self.years <= 0 or not 0 < self.utilization <= 1:
            raise ConfigurationError("invalid ownership period/utilisation")
        if self.electricity_rate_per_kwh < 0 or self.pue < 1:
            raise ConfigurationError("invalid electricity rate or PUE")

    @property
    def ownership_seconds(self) -> float:
        return self.years * 365.0 * 24.0 * HOUR

    def opex_usd(self, average_power_watts: float) -> float:
        """Electricity (incl. cooling) over the ownership period."""
        if average_power_watts < 0:
            raise ConfigurationError(f"negative power: {average_power_watts}")
        active_hours = self.years * 365.0 * 24.0 * self.utilization
        kwh = average_power_watts / 1000.0 * active_hours * self.pue
        return kwh * self.electricity_rate_per_kwh

    def total_cost_usd(self, system: SystemCost) -> float:
        return system.capex_usd + self.opex_usd(system.average_power_watts)

    def cost_efficiency(
        self, throughput_requests_per_s: float, system: SystemCost
    ) -> float:
        """Requests served per dollar over the ownership period."""
        if throughput_requests_per_s <= 0:
            raise ConfigurationError(
                f"non-positive throughput: {throughput_requests_per_s}"
            )
        work = throughput_requests_per_s * self.ownership_seconds * self.utilization
        return work / self.total_cost_usd(system)
