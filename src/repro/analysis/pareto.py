"""Pareto-frontier extraction for the design-space exploration (§4.2).

Fig. 7/8 plot throughput (maximise) against power/area (minimise); the
frontier is the set of points no other point dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class DesignPoint2D:
    """A candidate with one benefit axis and one cost axis."""

    label: str
    benefit: float  # e.g. throughput (higher is better)
    cost: float  # e.g. power or area (lower is better)


def pareto_front(points: Sequence[Tuple[float, float]]) -> List[int]:
    """Indices of the Pareto-optimal ``(benefit, cost)`` pairs.

    A point dominates another when it has >= benefit and <= cost with at
    least one strict inequality.
    """
    if not points:
        raise ConfigurationError("empty design space")
    order = sorted(range(len(points)), key=lambda i: (-points[i][0], points[i][1]))
    front: List[int] = []
    best_cost = float("inf")
    best_benefit = float("-inf")
    for index in order:
        benefit, cost = points[index]
        if cost < best_cost or (cost == best_cost and benefit > best_benefit):
            front.append(index)
            best_cost = min(best_cost, cost)
            best_benefit = max(best_benefit, benefit)
    return sorted(front)


def pareto_front_points(points: Sequence[DesignPoint2D]) -> List[DesignPoint2D]:
    """Pareto frontier over :class:`DesignPoint2D` records."""
    indices = pareto_front([(p.benefit, p.cost) for p in points])
    return [points[i] for i in indices]
