"""Roofline analysis of models against DSA design points.

A classic architecture tool layered on the library: for a model graph and
a :class:`~repro.accelerator.config.DSAConfig`, report the operational
intensity (MACs per DRAM byte), the design's ridge point, and whether the
model is compute- or bandwidth-bound — the analytical view behind the
paper's DSE results (memory-bound LLMs want bandwidth, CNNs want MACs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.accelerator.config import DSAConfig
from repro.compiler.executable import compile_graph
from repro.errors import ConfigurationError
from repro.models.graph import Graph


@dataclass(frozen=True)
class RooflinePoint:
    """Where one model lands on one design point's roofline."""

    model_name: str
    config_label: str
    operational_intensity: float  # MACs per DRAM byte (compiled traffic)
    ridge_intensity: float  # MACs/byte where compute == bandwidth
    peak_macs_per_s: float
    bandwidth_bytes_per_s: float
    attained_macs_per_s: float  # from the cycle simulation

    @property
    def compute_bound(self) -> bool:
        """True when the model's intensity exceeds the ridge point."""
        return self.operational_intensity >= self.ridge_intensity

    @property
    def roofline_bound_macs_per_s(self) -> float:
        """The roofline ceiling at this model's intensity."""
        bandwidth_limit = self.operational_intensity * self.bandwidth_bytes_per_s
        return min(self.peak_macs_per_s, bandwidth_limit)

    @property
    def roofline_efficiency(self) -> float:
        """Attained throughput as a fraction of the roofline ceiling."""
        ceiling = self.roofline_bound_macs_per_s
        if ceiling <= 0:
            return 0.0
        return self.attained_macs_per_s / ceiling


def analyze(graph: Graph, config: DSAConfig) -> RooflinePoint:
    """Place ``graph`` on ``config``'s roofline using compiled traffic.

    Operational intensity uses the *compiled* DRAM traffic (after fusion
    and tiling), not the algorithmic minimum — so buffer-capacity effects
    show up as intensity loss, exactly what the DSE trades off.
    """
    report = compile_graph(graph, config).simulate()
    if report.dram_bytes <= 0:
        raise ConfigurationError(
            f"model {graph.name!r} compiled to zero DRAM traffic"
        )
    intensity = report.total_macs / report.dram_bytes
    peak = config.num_pes * config.frequency_hz
    bandwidth = config.memory.bandwidth_bytes_per_s
    ridge = peak / bandwidth
    attained = report.total_macs / report.latency_s if report.latency_s > 0 else 0.0
    return RooflinePoint(
        model_name=graph.name,
        config_label=config.label,
        operational_intensity=intensity,
        ridge_intensity=ridge,
        peak_macs_per_s=peak,
        bandwidth_bytes_per_s=bandwidth,
        attained_macs_per_s=attained,
    )
