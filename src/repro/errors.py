"""Exception hierarchy for the DSCS-Serverless reproduction.

Every package raises subclasses of :class:`ReproError` so callers can catch
library failures without also catching programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was constructed with invalid or inconsistent parameters."""


class ShapeError(ReproError):
    """Tensor shapes are inconsistent in a model graph."""


class CompilationError(ReproError):
    """The compiler could not lower a model graph to the DSA ISA."""


class SimulationError(ReproError):
    """The cycle-level or discrete-event simulator hit an invalid state."""


class StorageError(ReproError):
    """An object-store or drive operation failed."""


class SchedulingError(ReproError):
    """The serverless scheduler could not place or admit a request."""


class DeploymentError(ReproError):
    """A serverless function or application was deployed incorrectly."""
