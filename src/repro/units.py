"""Unit constants and small conversion helpers.

All latencies in the library are plain ``float`` seconds, sizes are ``int``
bytes, power is ``float`` watts, and energy ``float`` joules.  These
constants make call sites read like the paper ("4 MB buffer", "19.2 GB/s").
"""

from __future__ import annotations

# --- sizes (bytes) ---------------------------------------------------------
KB = 1024
MB = 1024 * KB
GB = 1024 * MB

# Decimal variants used by link/memory bandwidth vendors.
KB_DEC = 1000
MB_DEC = 1000 * KB_DEC
GB_DEC = 1000 * MB_DEC

# --- time (seconds) --------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3
SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0

# --- rates -----------------------------------------------------------------
GHZ = 1e9
MHZ = 1e6

# --- compute ---------------------------------------------------------------
GFLOP = 1e9
TFLOP = 1e12


def bytes_to_mb(num_bytes: int) -> float:
    """Return ``num_bytes`` expressed in binary megabytes."""
    return num_bytes / MB


def mb(value: float) -> int:
    """Return ``value`` binary megabytes as a byte count."""
    return int(value * MB)


def kb(value: float) -> int:
    """Return ``value`` binary kilobytes as a byte count."""
    return int(value * KB)


def gb(value: float) -> int:
    """Return ``value`` binary gigabytes as a byte count."""
    return int(value * GB)


def transfer_time(num_bytes: int, bandwidth_bytes_per_s: float) -> float:
    """Return the serialization delay of ``num_bytes`` over a link.

    ``bandwidth_bytes_per_s`` must be positive; a zero-byte payload takes
    zero time regardless of bandwidth.
    """
    if num_bytes < 0:
        raise ValueError(f"negative payload size: {num_bytes}")
    if bandwidth_bytes_per_s <= 0:
        raise ValueError(f"non-positive bandwidth: {bandwidth_bytes_per_s}")
    return num_bytes / bandwidth_bytes_per_s
