"""Pluggable request-scheduling policies for the rack simulator.

The paper's deployed system uses FCFS (§5.3) and explicitly calls out
optimized scheduling as future work: *"scheduling functions based on their
criticality and importance can enhance the performance ... Likewise,
scheduling policies that consider the whole serverless application DAG"*.
This module implements that future work as alternative policies:

- :class:`FCFSPolicy` — the paper's baseline: strict arrival order.
- :class:`ShortestJobFirstPolicy` — picks the queued request with the
  smallest expected service time (from per-application latency estimates).
- :class:`CriticalityPolicy` — priority classes with FCFS inside a class;
  long-running/critical applications can be boosted.
- :class:`DAGAwarePolicy` — prefers applications with many acceleratable
  functions (deep pipelines gain the most from DSCS, Fig. 16), breaking
  ties by arrival.

Every policy is a :class:`KeyedPolicy`: a declarative
:class:`~repro.cluster.policy_keys.PolicyKey` (static per-app key vector,
sequence tie-break) driving a heap-backed
:class:`~repro.cluster.policy_keys.KeyedQueue` — O(log queue) per
dispatch where the old imperative implementations paid a linear ``min``
+ ``list.remove``.  The same key object also drives the vectorized
index-priority engine (:mod:`repro.cluster.policy_engine`), so the two
backends cannot drift apart on what a policy *means*.

Policies only reorder the queue; admission (queue depth) and the
run-to-completion execution model stay exactly as in the paper.
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Protocol, Tuple

from repro.cluster.policy_keys import (
    DEFAULT_CRITICALITY,
    KeyedQueue,
    PolicyKey,
    criticality_key,
    dag_key,
    fcfs_key,
    sjf_key,
)
from repro.errors import SchedulingError
from repro.serverless.application import Application

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class QueuedRequest:
    """A request waiting in the scheduler queue."""

    arrival: float
    app_name: str
    sequence: int  # admission order, for stable tie-breaking


class SchedulingPolicy(Protocol):
    """Interface: maintain a queue of :class:`QueuedRequest`."""

    def push(self, request: QueuedRequest) -> None:
        """Admit a request into the queue."""

    def pop(self) -> QueuedRequest:
        """Remove and return the next request to run."""

    def observe_app(self, app_name: str) -> None:
        """Coverage hook: every admitted application is observed.

        Optional for external policies — the simulator tolerates its
        absence on implementations of the pre-hook protocol.
        """

    def __len__(self) -> int:
        """Number of queued requests."""


class KeyedPolicy:
    """A scheduling policy defined entirely by its :class:`PolicyKey`.

    ``pop`` returns the queued request minimizing
    ``(*key.key_for(app), sequence)`` — the declarative core every
    concrete policy shares.  Subclasses configure the key and may hook
    :meth:`observe_app` for coverage accounting: every application with
    at least one *admitted* request (queued or started immediately) is
    observed on every backend, but the vectorized engine coalesces
    observations to one call per application per batch — so overrides
    must be set-like (as :attr:`ShortestJobFirstPolicy.unknown_apps`
    is), not exact per-request counters.  Dropped requests are never
    observed.
    """

    def __init__(self, key: PolicyKey) -> None:
        self.key = key
        self._queue = KeyedQueue()

    def sort_key(self, request: QueuedRequest) -> Tuple:
        return (*self.key.key_for(request.app_name), request.sequence)

    def observe_app(self, app_name: str) -> None:
        """Admission hook; the base policy has nothing to record."""

    def push(self, request: QueuedRequest) -> None:
        self.observe_app(request.app_name)
        self._queue.push(self.sort_key(request), request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError(
                f"pop from empty {self.key.name} queue"
            )
        return self._queue.pop()

    def __len__(self) -> int:
        return len(self._queue)


class FCFSPolicy(KeyedPolicy):
    """First-come-first-serve — the paper's deployed policy (§5.3).

    Its key is the empty vector, so ``(sequence,)`` order alone decides
    — which a deque realises in O(1) per operation instead of the
    general heap's O(log queue).  Pop order is identical either way.
    """

    def __init__(self) -> None:
        super().__init__(fcfs_key())
        self._fifo: Deque[QueuedRequest] = deque()

    def push(self, request: QueuedRequest) -> None:
        self.observe_app(request.app_name)
        self._fifo.append(request)

    def pop(self) -> QueuedRequest:
        if not self._fifo:
            raise SchedulingError("pop from empty fcfs queue")
        return self._fifo.popleft()

    def __len__(self) -> int:
        return len(self._fifo)


class ShortestJobFirstPolicy(KeyedPolicy):
    """Serve the queued request with the smallest expected service time.

    ``service_estimates`` maps application name to an expected latency
    (seconds); unknown applications sort last.  Ties break by admission
    order so the policy is deterministic and starvation-bounded for equal
    estimates.

    Applications admitted without an estimate — whether they queued or
    started immediately — are logged on first sight and collected in
    :attr:`unknown_apps`, so sweeps can assert their estimate tables
    actually cover the trace even when the fleet never congests.
    """

    def __init__(self, service_estimates: Dict[str, float]) -> None:
        super().__init__(sjf_key(service_estimates))
        self._unknown: set = set()

    def observe_app(self, app_name: str) -> None:
        if app_name not in self._unknown and not self.key.knows(app_name):
            self._unknown.add(app_name)
            logger.warning(
                "SJF has no service estimate for %r; it will sort last",
                app_name,
            )

    @property
    def unknown_apps(self) -> Tuple[str, ...]:
        """Apps admitted without an estimate, in sorted order."""
        return tuple(sorted(self._unknown))


class CriticalityPolicy(KeyedPolicy):
    """Priority classes (lower number = more critical), FCFS within class.

    Implements the paper's "criticality and importance" suggestion: e.g.
    wildfire Remote Sensing can pre-empt queue position over batch-style
    Credit Risk scoring (never pre-empting *running* functions — execution
    stays run-to-completion as in the paper).  The priority map must be
    non-empty with integer values; an empty map would silently degenerate
    to FCFS.
    """

    def __init__(
        self,
        priorities: Dict[str, int],
        default_priority: int = DEFAULT_CRITICALITY,
    ) -> None:
        super().__init__(criticality_key(priorities, default_priority))

    def priority_of(self, app_name: str) -> int:
        return int(self.key.key_for(app_name)[0])


class DAGAwarePolicy(KeyedPolicy):
    """Prefer applications whose DAGs have more acceleratable functions.

    Deep pipelines benefit most from DSCS (paper Fig. 16), so running them
    on the accelerated fleet first maximises fleet-level gain.
    """

    def __init__(self, applications: Dict[str, Application]) -> None:
        super().__init__(dag_key(applications))

    def accelerated_functions(self, app_name: str) -> int:
        return -int(self.key.key_for(app_name)[0])


@dataclass
class PolicyFactory:
    """Builds a fresh policy instance per simulation run."""

    name: str = "fcfs"
    service_estimates: Optional[Dict[str, float]] = None
    priorities: Optional[Dict[str, int]] = None
    applications: Optional[Dict[str, Application]] = field(default=None)

    def build(self) -> KeyedPolicy:
        if self.name == "fcfs":
            return FCFSPolicy()
        if self.name == "sjf":
            if self.service_estimates is None:
                raise SchedulingError("sjf policy requires service_estimates")
            return ShortestJobFirstPolicy(self.service_estimates)
        if self.name == "criticality":
            if not self.priorities:
                raise SchedulingError(
                    "criticality policy requires a non-empty priorities map"
                )
            return CriticalityPolicy(self.priorities)
        if self.name == "dag":
            if self.applications is None:
                raise SchedulingError("dag policy requires applications")
            return DAGAwarePolicy(self.applications)
        raise SchedulingError(f"unknown scheduling policy {self.name!r}")
