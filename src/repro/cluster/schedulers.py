"""Pluggable request-scheduling policies for the rack simulator.

The paper's deployed system uses FCFS (§5.3) and explicitly calls out
optimized scheduling as future work: *"scheduling functions based on their
criticality and importance can enhance the performance ... Likewise,
scheduling policies that consider the whole serverless application DAG"*.
This module implements that future work as alternative policies:

- :class:`FCFSPolicy` — the paper's baseline: strict arrival order.
- :class:`ShortestJobFirstPolicy` — picks the queued request with the
  smallest expected service time (from per-application latency estimates).
- :class:`CriticalityPolicy` — priority classes with FCFS inside a class;
  long-running/critical applications can be boosted.
- :class:`DAGAwarePolicy` — prefers applications with many acceleratable
  functions (deep pipelines gain the most from DSCS, Fig. 16), breaking
  ties by arrival.

Policies only reorder the queue; admission (queue depth) and the
run-to-completion execution model stay exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Protocol

from repro.errors import SchedulingError
from repro.serverless.application import Application


@dataclass(frozen=True)
class QueuedRequest:
    """A request waiting in the scheduler queue."""

    arrival: float
    app_name: str
    sequence: int  # admission order, for stable tie-breaking


class SchedulingPolicy(Protocol):
    """Interface: maintain a queue of :class:`QueuedRequest`."""

    def push(self, request: QueuedRequest) -> None:
        """Admit a request into the queue."""

    def pop(self) -> QueuedRequest:
        """Remove and return the next request to run."""

    def __len__(self) -> int:
        """Number of queued requests."""


class FCFSPolicy:
    """First-come-first-serve — the paper's deployed policy (§5.3)."""

    def __init__(self) -> None:
        self._queue: Deque[QueuedRequest] = deque()

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty FCFS queue")
        return self._queue.popleft()

    def __len__(self) -> int:
        return len(self._queue)


class ShortestJobFirstPolicy:
    """Serve the queued request with the smallest expected service time.

    ``service_estimates`` maps application name to an expected latency
    (seconds); unknown applications sort last.  Ties break by admission
    order so the policy is deterministic and starvation-bounded for equal
    estimates.
    """

    def __init__(self, service_estimates: Dict[str, float]) -> None:
        if not service_estimates:
            raise SchedulingError("SJF needs at least one service estimate")
        for app, estimate in service_estimates.items():
            if estimate <= 0:
                raise SchedulingError(
                    f"non-positive service estimate for {app!r}: {estimate}"
                )
        self._estimates = dict(service_estimates)
        self._queue: List[QueuedRequest] = []

    def _key(self, request: QueuedRequest):
        estimate = self._estimates.get(request.app_name, float("inf"))
        return (estimate, request.sequence)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty SJF queue")
        best = min(self._queue, key=self._key)
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)


class CriticalityPolicy:
    """Priority classes (lower number = more critical), FCFS within class.

    Implements the paper's "criticality and importance" suggestion: e.g.
    wildfire Remote Sensing can pre-empt queue position over batch-style
    Credit Risk scoring (never pre-empting *running* functions — execution
    stays run-to-completion as in the paper).
    """

    def __init__(
        self, priorities: Dict[str, int], default_priority: int = 10
    ) -> None:
        self._priorities = dict(priorities)
        self._default = default_priority
        self._queue: List[QueuedRequest] = []

    def priority_of(self, app_name: str) -> int:
        return self._priorities.get(app_name, self._default)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty criticality queue")
        best = min(
            self._queue,
            key=lambda r: (self.priority_of(r.app_name), r.sequence),
        )
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)


class DAGAwarePolicy:
    """Prefer applications whose DAGs have more acceleratable functions.

    Deep pipelines benefit most from DSCS (paper Fig. 16), so running them
    on the accelerated fleet first maximises fleet-level gain.
    """

    def __init__(self, applications: Dict[str, Application]) -> None:
        if not applications:
            raise SchedulingError("DAG-aware policy needs the application set")
        self._accelerated_counts = {
            name: len(app.accelerated_functions)
            for name, app in applications.items()
        }
        self._queue: List[QueuedRequest] = []

    def accelerated_functions(self, app_name: str) -> int:
        return self._accelerated_counts.get(app_name, 0)

    def push(self, request: QueuedRequest) -> None:
        self._queue.append(request)

    def pop(self) -> QueuedRequest:
        if not self._queue:
            raise SchedulingError("pop from empty DAG-aware queue")
        best = min(
            self._queue,
            key=lambda r: (-self.accelerated_functions(r.app_name), r.sequence),
        )
        self._queue.remove(best)
        return best

    def __len__(self) -> int:
        return len(self._queue)


@dataclass
class PolicyFactory:
    """Builds a fresh policy instance per simulation run."""

    name: str = "fcfs"
    service_estimates: Optional[Dict[str, float]] = None
    priorities: Optional[Dict[str, int]] = None
    applications: Optional[Dict[str, Application]] = field(default=None)

    def build(self) -> SchedulingPolicy:
        if self.name == "fcfs":
            return FCFSPolicy()
        if self.name == "sjf":
            if self.service_estimates is None:
                raise SchedulingError("sjf policy requires service_estimates")
            return ShortestJobFirstPolicy(self.service_estimates)
        if self.name == "criticality":
            return CriticalityPolicy(self.priorities or {})
        if self.name == "dag":
            if self.applications is None:
                raise SchedulingError("dag policy requires applications")
            return DAGAwarePolicy(self.applications)
        raise SchedulingError(f"unknown scheduling policy {self.name!r}")
