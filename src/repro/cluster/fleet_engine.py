"""Sharded multi-rack fleet runner with a serial oracle stitch.

:class:`FleetRunner` executes a :class:`~repro.cluster.fleet.FleetTopology`
over one fleet-level trace: the
:class:`~repro.cluster.fleet.GlobalLoadBalancer` splits the trace into
per-rack shards *before* fan-out, then each rack simulates its shard on
its own splitmix64-derived seed — serially (``workers=1``, the oracle
stitch) or across a ``ProcessPoolExecutor`` (``workers=N``, reusing the
lean-copy worker pattern of :class:`~repro.dse.explorer.DSEExplorer`).
Because every shard is a pure function of ``(trace, topology, balancer)``
and the pool preserves input order, the sharded run is **bit-identical**
to the serial stitch: same per-rack check hashes, same merged fleet
hash (``tests/test_fleet.py``).

Workers do not ship latency vectors back.  Each shard returns a compact
:class:`RackShardResult`: scalar telemetry, a sha256 check hash of the
full series (computed in-worker, covering the same projection as
``scripts/bench_common.series_digest`` plus the RNG end state — keep the
two in lockstep), and a mergeable constant-memory
:class:`~repro.sim.stats.QuantileSketch` of completed latencies.  Fleet
p50/p95/p99 come from merging those O(1)-size accumulators; pass
``keep_latencies=True`` (test/cross-check scale only) to also keep the
exact vectors for the sketch-vs-exact comparison.
"""

from __future__ import annotations

import hashlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.cluster.fleet import FleetTopology, GlobalLoadBalancer, RackSpec
from repro.cluster.simulation import RackSimulation, SimulationSeries
from repro.cluster.sweep import (
    default_criticality_priorities,
    service_estimates_for,
)
from repro.cluster.schedulers import PolicyFactory
from repro.cluster.trace import RequestTrace
from repro.errors import ConfigurationError
from repro.sim.stats import QuantileSketch

# Default sketch geometry: microseconds to ~a day, 64 bins/decade
# (<= 3.7% relative error on tail percentiles — see QuantileSketch).
SKETCH_LO_SECONDS = 1e-6
SKETCH_HI_SECONDS = 1e5
SKETCH_BINS_PER_DECADE = 64


def _digest(*parts) -> str:
    """sha256 over deterministic projections (bytes or reprs)."""
    hasher = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            hasher.update(part)
        else:
            hasher.update(repr(part).encode())
        hasher.update(b"\x00")
    return f"sha256:{hasher.hexdigest()}"


def series_check_hash(series: SimulationSeries, *extra) -> str:
    """Content hash of one rack's full measurement series.

    Covers the same projection as ``scripts/bench_common.series_digest``
    (series, drop times/reasons, availability counters, per-reason
    breakdown) plus the control telemetry and any ``extra`` parts the
    caller appends (the fleet runner appends the rack RNG end state).
    """
    return _digest(
        series.completed_latency_seconds.tobytes(),
        series.completed_times.tobytes(),
        series.queue_depth.tobytes(),
        series.busy_instances.tobytes(),
        series.dropped_times.tobytes(),
        series.dropped_reasons.tobytes(),
        series.dropped_requests,
        series.total_requests,
        series.retries,
        series.timeouts,
        series.crash_kills,
        tuple(sorted(series.drop_breakdown().items())),
        series.live_instances.tobytes(),
        series.completed_app_ids.tobytes(),
        series.app_catalog,
        series.scale_ups,
        series.scale_downs,
        *extra,
    )


def streamed_check_hash(streamed, *extra) -> str:
    """Content hash of one rack's :class:`StreamedSeries` telemetry.

    The streaming engine never materialises latency vectors, so this
    covers the constant-memory projection instead: the tick series, the
    per-bucket folds, the sketch accumulators, every counter, and any
    ``extra`` parts (the fleet runner appends the rack RNG end state).
    Two streaming runs that are bit-identical (any chunk size) hash
    identically; note ``_sum`` is excluded for the same chunking-order
    reason :meth:`~repro.sim.stats.QuantileSketch.identical_to` skips it.
    """
    return _digest(
        streamed.sample_times.tobytes(),
        streamed.queue_depth.tobytes(),
        streamed.busy_instances.tobytes(),
        streamed.live_instances.tobytes(),
        streamed.latency_sum_per_bucket.tobytes(),
        streamed.completed_per_bucket.tobytes(),
        streamed.dropped_per_bucket.tobytes(),
        streamed.drop_reason_counts.tobytes(),
        streamed.sketch.bin_counts.tobytes(),
        streamed.sketch.minimum,
        streamed.sketch.maximum,
        streamed.completed_count,
        streamed.dropped_requests,
        streamed.total_requests,
        streamed.retries,
        streamed.timeouts,
        streamed.crash_kills,
        streamed.hedges_launched,
        streamed.hedge_wins,
        streamed.scale_ups,
        streamed.scale_downs,
        tuple(sorted(streamed.completed_per_app.items())),
        streamed.app_catalog,
        *extra,
    )


@dataclass(frozen=True)
class _RackTask:
    """One shard of work: everything a worker needs, nothing more."""

    index: int
    spec: RackSpec
    shard: RequestTrace
    seed: int


@dataclass
class RackShardResult:
    """Constant-size outcome of one rack's shard (what workers return)."""

    index: int
    name: str
    platform: str
    seed: int
    requests: int
    completed: int
    dropped: int
    drop_breakdown: Dict[str, int]
    retries: int
    timeouts: int
    crash_kills: int
    scale_ups: int
    scale_downs: int
    peak_queue: int
    wall_clock_seconds: float
    mean_latency_seconds: float
    check_hash: str
    sketch: QuantileSketch
    latencies: Optional[np.ndarray] = None

    @property
    def availability(self) -> float:
        """NaN on an empty shard, matching the SimulationSeries convention."""
        if self.requests == 0:
            return float("nan")
        return self.completed / self.requests

    def as_row(self) -> Dict[str, object]:
        """Flat per-rack record for result tables."""
        row: Dict[str, object] = {
            "scope": "rack",
            "rack": self.name,
            "platform": self.platform,
            "requests": self.requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "availability": round(self.availability, 6),
            "mean_latency_s": round(self.mean_latency_seconds, 6),
            "p50_latency_s": round(self.sketch.percentile(50.0), 6),
            "p95_latency_s": round(self.sketch.percentile(95.0), 6),
            "p99_latency_s": round(self.sketch.percentile(99.0), 6),
            "peak_queue": self.peak_queue,
            "wall_clock_s": round(self.wall_clock_seconds, 3),
            "check_hash": self.check_hash,
        }
        for reason, count in sorted(self.drop_breakdown.items()):
            row[f"dropped_{reason}"] = count
        return row


@dataclass
class FleetResult:
    """Stitched outcome of one fleet run (rack order preserved)."""

    racks: List[RackShardResult]
    lb_policy: str
    workers: int
    _merged: Optional[QuantileSketch] = field(
        default=None, repr=False, compare=False
    )

    @property
    def total_requests(self) -> int:
        return sum(rack.requests for rack in self.racks)

    @property
    def completed(self) -> int:
        return sum(rack.completed for rack in self.racks)

    @property
    def dropped(self) -> int:
        return sum(rack.dropped for rack in self.racks)

    @property
    def availability(self) -> float:
        total = self.total_requests
        if total == 0:
            return float("nan")
        return self.completed / total

    def drop_breakdown(self) -> Dict[str, int]:
        merged: Dict[str, int] = {}
        for rack in self.racks:
            for reason, count in rack.drop_breakdown.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    @property
    def merged_sketch(self) -> QuantileSketch:
        """The fleet-level accumulator: all rack sketches summed."""
        if self._merged is None:
            self._merged = QuantileSketch.merged(
                [rack.sketch for rack in self.racks]
            )
        return self._merged

    def sketch_percentile(self, q: float) -> float:
        """Constant-memory fleet percentile (bin-resolution accurate)."""
        return self.merged_sketch.percentile(q)

    @property
    def exact_latencies(self) -> np.ndarray:
        """Concatenated per-rack latency vectors (rack order).

        Only populated under ``keep_latencies=True``; raises otherwise —
        the whole point of the sketch path is that fleet-scale runs
        never materialise this.
        """
        kept = [rack.latencies for rack in self.racks]
        if any(vector is None for vector in kept):
            raise ConfigurationError(
                "exact latencies were not kept; run the fleet with "
                "keep_latencies=True (cross-check scale only)"
            )
        return np.concatenate(kept) if kept else np.empty(0)

    def exact_percentile(self, q: float) -> float:
        """Exact-mode percentile over the merged latency vectors.

        Uses the ``method="lower"`` order-statistic convention — the
        same rank :meth:`~repro.sim.stats.QuantileSketch.percentile`
        locates — so the two modes are comparable within the sketch's
        documented bin-resolution bound.
        """
        merged = np.sort(self.exact_latencies)
        if merged.size == 0:
            return float("nan")
        return float(np.percentile(merged, q, method="lower"))

    @property
    def fleet_hash(self) -> str:
        """One hash over every rack's check hash, in rack order."""
        return _digest(
            *(
                part
                for rack in self.racks
                for part in (rack.name, rack.check_hash)
            )
        )

    def identical_to(self, other: "FleetResult") -> bool:
        """Bit-level agreement: every per-rack hash and the merged hash."""
        return (
            len(self.racks) == len(other.racks)
            and all(
                a.name == b.name
                and a.seed == b.seed
                and a.check_hash == b.check_hash
                for a, b in zip(self.racks, other.racks)
            )
            and self.fleet_hash == other.fleet_hash
        )

    def summary_row(self) -> Dict[str, object]:
        """Flat fleet-level record (the stitched headline)."""
        sketch = self.merged_sketch
        row: Dict[str, object] = {
            "scope": "fleet",
            "rack": "*",
            "racks": len(self.racks),
            "lb_policy": self.lb_policy,
            "workers": self.workers,
            "requests": self.total_requests,
            "completed": self.completed,
            "dropped": self.dropped,
            "availability": round(self.availability, 6),
            "mean_latency_s": round(sketch.mean, 6),
            "p50_latency_s": round(sketch.percentile(50.0), 6),
            "p95_latency_s": round(sketch.percentile(95.0), 6),
            "p99_latency_s": round(sketch.percentile(99.0), 6),
            "sketch_error_bound": round(sketch.relative_error_bound, 6),
            "fleet_hash": self.fleet_hash,
        }
        for reason, count in sorted(self.drop_breakdown().items()):
            row[f"dropped_{reason}"] = count
        return row


class FleetRunner:
    """Runs fleet topologies over shared suite contexts, sharded or serial."""

    def __init__(
        self,
        context,
        balancer: Optional[GlobalLoadBalancer] = None,
        sample_interval_seconds: float = 1.0,
        engine: str = "auto",
        keep_latencies: bool = False,
        sketch_lo: float = SKETCH_LO_SECONDS,
        sketch_hi: float = SKETCH_HI_SECONDS,
        sketch_bins_per_decade: int = SKETCH_BINS_PER_DECADE,
        priorities: Optional[Dict[str, int]] = None,
        chunk_requests: Optional[int] = None,
    ) -> None:
        if chunk_requests is not None and engine != "streaming":
            raise ConfigurationError(
                "chunk_requests only applies to engine='streaming'; "
                f"got engine={engine!r}"
            )
        if engine == "streaming":
            if keep_latencies:
                raise ConfigurationError(
                    "keep_latencies requires materialized latency "
                    "vectors, which engine='streaming' never builds; "
                    "use a materialized engine for cross-check runs"
                )
            if (
                float(sketch_lo),
                float(sketch_hi),
                int(sketch_bins_per_decade),
            ) != (
                SKETCH_LO_SECONDS,
                SKETCH_HI_SECONDS,
                SKETCH_BINS_PER_DECADE,
            ):
                raise ConfigurationError(
                    "engine='streaming' folds latencies into the "
                    "default sketch geometry inside the engine; custom "
                    "sketch bounds require a materialized engine"
                )
        self._context = context
        self._balancer = balancer or GlobalLoadBalancer()
        self._sample_interval = sample_interval_seconds
        self._engine = engine
        self._keep_latencies = keep_latencies
        self._chunk_requests = chunk_requests
        self._sketch_config = (
            float(sketch_lo),
            float(sketch_hi),
            int(sketch_bins_per_decade),
        )
        self._priorities = dict(priorities) if priorities else None
        # Per-platform SJF estimate tables, computed once in the parent
        # before fan-out so every worker ships the identical table.
        self._estimates: Dict[str, Dict[str, float]] = {}

    @property
    def balancer(self) -> GlobalLoadBalancer:
        return self._balancer

    def _new_sketch(self) -> QuantileSketch:
        lo, hi, bins = self._sketch_config
        return QuantileSketch(lo, hi, bins_per_decade=bins)

    def _policy_factory(self, spec: RackSpec) -> Optional[PolicyFactory]:
        """Per-rack policy, mirroring :class:`~repro.cluster.sweep.RackSweep`."""
        if spec.policy == "fcfs":
            return None
        if spec.policy == "sjf":
            return PolicyFactory(
                "sjf", service_estimates=self._estimates[spec.platform]
            )
        if spec.policy == "criticality":
            priorities = self._priorities or default_criticality_priorities(
                self._context
            )
            return PolicyFactory("criticality", priorities=priorities)
        return PolicyFactory(
            "dag", applications=self._context.applications
        )

    def _prepare(self, topology: FleetTopology) -> None:
        """Validate platforms and pre-compute worker-shared tables."""
        for spec in topology.racks:
            if spec.platform not in self._context.models:
                raise ConfigurationError(
                    f"rack {spec.name!r}: unknown platform "
                    f"{spec.platform!r}; context has "
                    f"{list(self._context.models)}"
                )
            if (
                spec.policy == "sjf"
                and spec.platform not in self._estimates
            ):
                self._estimates[spec.platform] = service_estimates_for(
                    self._context, spec.platform
                )

    # ----------------------------------------------------------- workers
    def _run_shard(self, task: _RackTask) -> RackShardResult:
        """Simulate one rack's shard; runs in-process or in a worker."""
        spec = task.spec
        simulation = RackSimulation(
            self._context.models[spec.platform],
            self._context.applications,
            max_instances=spec.max_instances,
            queue_depth=spec.queue_depth,
            seed=task.seed,
            policy=self._policy_factory(spec),
            faults=spec.faults,
            retry=spec.retry,
            control=spec.control,
        )
        if self._engine == "streaming":
            streamed = simulation.run(
                task.shard,
                self._sample_interval,
                engine="streaming",
                chunk_requests=self._chunk_requests,
            )
            return RackShardResult(
                index=task.index,
                name=spec.name,
                platform=spec.platform,
                seed=task.seed,
                requests=streamed.total_requests,
                completed=streamed.completed_count,
                dropped=streamed.dropped_requests,
                drop_breakdown=streamed.drop_breakdown(),
                retries=streamed.retries,
                timeouts=streamed.timeouts,
                crash_kills=streamed.crash_kills,
                scale_ups=streamed.scale_ups,
                scale_downs=streamed.scale_downs,
                peak_queue=(
                    int(streamed.queue_depth.max())
                    if len(streamed.queue_depth)
                    else 0
                ),
                wall_clock_seconds=streamed.wall_clock_seconds,
                mean_latency_seconds=streamed.mean_latency_seconds,
                check_hash=streamed_check_hash(
                    streamed, repr(simulation._rng.bit_generator.state)
                ),
                sketch=streamed.sketch,
                latencies=None,
            )
        series = simulation.run(
            task.shard, self._sample_interval, engine=self._engine
        )
        check_hash = series_check_hash(
            series, repr(simulation._rng.bit_generator.state)
        )
        latencies = series.completed_latency_seconds
        sketch = self._new_sketch().add(latencies)
        return RackShardResult(
            index=task.index,
            name=spec.name,
            platform=spec.platform,
            seed=task.seed,
            requests=series.total_requests,
            completed=len(latencies),
            dropped=series.dropped_requests,
            drop_breakdown=series.drop_breakdown(),
            retries=series.retries,
            timeouts=series.timeouts,
            crash_kills=series.crash_kills,
            scale_ups=series.scale_ups,
            scale_downs=series.scale_downs,
            peak_queue=(
                int(series.queue_depth.max())
                if len(series.queue_depth)
                else 0
            ),
            wall_clock_seconds=series.wall_clock_seconds,
            mean_latency_seconds=(
                series.mean_latency_seconds
                if len(latencies)
                else float("nan")
            ),
            check_hash=check_hash,
            sketch=sketch,
            latencies=(latencies if self._keep_latencies else None),
        )

    # --------------------------------------------------------------- run
    def run(
        self,
        topology: FleetTopology,
        trace: RequestTrace,
        workers: Optional[int] = None,
    ) -> FleetResult:
        """Shard the trace, run every rack, stitch the fleet result.

        ``workers=None``/``1`` is the serial oracle stitch; ``workers=N``
        fans racks across a process pool.  Either way the shards, seeds,
        and per-rack results are identical — only wall-clock changes.
        """
        if workers is not None and workers < 1:
            raise ConfigurationError(f"non-positive worker count: {workers}")
        self._prepare(topology)
        shards = self._balancer.shard(trace, topology)
        tasks = [
            _RackTask(
                index=index,
                spec=spec,
                shard=shard,
                seed=topology.rack_seed(index),
            )
            for index, (spec, shard) in enumerate(
                zip(topology.racks, shards)
            )
        ]
        if workers is None or workers == 1 or len(tasks) == 1:
            results = [self._run_shard(task) for task in tasks]
            effective_workers = 1
        else:
            chunk = max(1, len(tasks) // (workers * 4))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                results = list(
                    pool.map(self._run_shard, tasks, chunksize=chunk)
                )
            effective_workers = workers
        return FleetResult(
            racks=results,
            lb_policy=self._balancer.policy,
            workers=effective_workers,
        )
