"""At-scale datacenter simulation (paper §6.1, §6.2.2, Fig. 13).

A rack of up to 200 function instances fed by a bursty Poisson request
trace for 20 minutes, with an FCFS scheduler holding up to 10,000 queued
requests.  Produces the arrival/queue-depth/latency time series of
Fig. 13 and the wall-clock comparison of §6.2.2.  FCFS runs execute on
the vectorized busy-period engine (:mod:`repro.cluster.fast_engine`),
bit-identical to the event-driven oracle; :mod:`repro.cluster.sweep`
fans scenario grids out over shared traces and service samples.
"""

from repro.cluster.schedulers import (
    CriticalityPolicy,
    DAGAwarePolicy,
    FCFSPolicy,
    PolicyFactory,
    QueuedRequest,
    ShortestJobFirstPolicy,
)
from repro.cluster.simulation import (
    RackSimulation,
    ServiceSampleCache,
    SimulationSeries,
)
from repro.cluster.sweep import (
    RackScenario,
    RackSweep,
    ScenarioResult,
    scenario_grid,
)
from repro.cluster.trace import RequestTrace, TraceGenerator

__all__ = [
    "CriticalityPolicy",
    "DAGAwarePolicy",
    "FCFSPolicy",
    "PolicyFactory",
    "QueuedRequest",
    "RackScenario",
    "RackSimulation",
    "RackSweep",
    "RequestTrace",
    "ScenarioResult",
    "ServiceSampleCache",
    "ShortestJobFirstPolicy",
    "SimulationSeries",
    "TraceGenerator",
    "scenario_grid",
]
