"""At-scale datacenter simulation (paper §6.1, §6.2.2, Fig. 13).

A rack of up to 200 function instances fed by a bursty Poisson request
trace for 20 minutes, with a pluggable scheduler holding up to 10,000
queued requests.  Produces the arrival/queue-depth/latency time series
of Fig. 13 and the wall-clock comparison of §6.2.2.  Every scheduling
policy is a :class:`~repro.cluster.policy_keys.PolicyKey` (static
per-app key vector + sequence tie-break) driving two bit-identical
backends: FCFS runs execute on the vectorized busy-period engine
(:mod:`repro.cluster.fast_engine`), keyed policies (SJF, criticality,
DAG-aware) on the index-priority engine
(:mod:`repro.cluster.policy_engine`), both enforced against the
event-driven oracle; :mod:`repro.cluster.sweep` fans scenario grids out
over shared traces and service samples.

Fault injection rides on top: a seeded
:class:`~repro.cluster.faults.FaultSchedule` (instance crashes,
correlated node outages, slowdown spikes) and a
:class:`~repro.cluster.faults.RetryPolicy` (queue timeouts, bounded
retries with backoff + jitter, hedged dispatch) perturb any simulation
deterministically; the chaos engines in
:mod:`repro.cluster.chaos_engine` are bit-identical to each other and
degrade to the fault-free engines when the schedule is inert.

A closed-loop control plane (:mod:`repro.cluster.control`) sits above
both: a deterministic controller observes per-tick telemetry and
actuates reactive autoscaling (target-utilization or queue-depth
scaling with warmup delays and graceful scale-downs, composing with
fault timelines as ``min(autoscaled, surviving)``) and overload
protection (token-bucket admission, CoDel-style queue-delay shedding,
brownout by criticality, per-app circuit breakers) — again through two
bit-identical engines (:mod:`repro.cluster.control_engine`), with every
shed recorded under the terminal ``shed`` drop reason.

The fleet layer (:mod:`repro.cluster.fleet`) scales all of the above to
a multi-rack datacenter: a :class:`~repro.cluster.fleet.FleetTopology`
of independently-seeded racks under a deterministic
:class:`~repro.cluster.fleet.GlobalLoadBalancer` (round-robin /
weighted / hash-affinity) that shards one fleet-level trace *before*
fan-out, so the sharded :class:`~repro.cluster.fleet_engine.FleetRunner`
(process-pool) stitches bit-identically to a serial oracle — per-rack
check hashes plus a merged fleet hash — and fleet tail latency comes
from mergeable :class:`~repro.sim.stats.QuantileSketch` accumulators.
"""

from repro.cluster.control import (
    SCALING_POLICIES,
    AutoscalerPolicy,
    ControlPlane,
    OverloadPolicy,
    observer_plane,
    warmup_from_coldstart,
)
from repro.cluster.faults import (
    DROP_REASONS,
    FaultSchedule,
    FaultTimeline,
    RetryPolicy,
)
from repro.cluster.fleet import (
    LB_POLICIES,
    FleetTopology,
    GlobalLoadBalancer,
    RackSpec,
    derive_rack_seed,
)
from repro.cluster.fleet_engine import (
    FleetResult,
    FleetRunner,
    RackShardResult,
    series_check_hash,
)
from repro.cluster.policy_keys import (
    KeyedQueue,
    PolicyKey,
    criticality_key,
    dag_key,
    fcfs_key,
    sjf_key,
)
from repro.cluster.schedulers import (
    CriticalityPolicy,
    DAGAwarePolicy,
    FCFSPolicy,
    KeyedPolicy,
    PolicyFactory,
    QueuedRequest,
    ShortestJobFirstPolicy,
)
from repro.cluster.simulation import (
    RackSimulation,
    ServiceSampleCache,
    SimulationSeries,
)
from repro.cluster.sweep import (
    RackScenario,
    RackSweep,
    ScenarioResult,
    scenario_grid,
)
from repro.cluster.trace import RequestTrace, TraceGenerator

__all__ = [
    "AutoscalerPolicy",
    "ControlPlane",
    "CriticalityPolicy",
    "DAGAwarePolicy",
    "DROP_REASONS",
    "FCFSPolicy",
    "OverloadPolicy",
    "SCALING_POLICIES",
    "FaultSchedule",
    "FaultTimeline",
    "FleetResult",
    "FleetRunner",
    "FleetTopology",
    "GlobalLoadBalancer",
    "LB_POLICIES",
    "RackShardResult",
    "RackSpec",
    "RetryPolicy",
    "derive_rack_seed",
    "series_check_hash",
    "KeyedPolicy",
    "KeyedQueue",
    "PolicyFactory",
    "PolicyKey",
    "QueuedRequest",
    "RackScenario",
    "RackSimulation",
    "RackSweep",
    "RequestTrace",
    "ScenarioResult",
    "ServiceSampleCache",
    "ShortestJobFirstPolicy",
    "SimulationSeries",
    "TraceGenerator",
    "criticality_key",
    "dag_key",
    "fcfs_key",
    "observer_plane",
    "scenario_grid",
    "sjf_key",
    "warmup_from_coldstart",
]
