"""Storage-node interference model (paper §3).

A storage node's CPU serves conventional GET/PUT traffic.  Co-locating
compute with storage contends for that CPU — *unless* the compute runs on
the in-storage DSA, which "does not consume CPU cycles in the storage
node, except for initiating the data transfer".  This module quantifies
that claim: an M/G/1-style processor-sharing model of the node CPU under
background storage traffic plus a co-located function load, reporting the
storage traffic's latency inflation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import MS, US


@dataclass(frozen=True)
class StorageTrafficProfile:
    """Background conventional storage service on the node."""

    requests_per_second: float = 2000.0
    cpu_seconds_per_request: float = 120 * US  # syscall+FTL+RPC service cost

    def __post_init__(self) -> None:
        if self.requests_per_second < 0 or self.cpu_seconds_per_request <= 0:
            raise ConfigurationError("invalid storage traffic profile")

    @property
    def offered_load(self) -> float:
        """CPU utilisation offered by storage traffic alone."""
        return self.requests_per_second * self.cpu_seconds_per_request


@dataclass(frozen=True)
class CoLocatedFunctionLoad:
    """CPU demand of the co-located serverless function workload."""

    invocations_per_second: float
    cpu_seconds_per_invocation: float

    def __post_init__(self) -> None:
        if self.invocations_per_second < 0 or self.cpu_seconds_per_invocation < 0:
            raise ConfigurationError("invalid co-located load")

    @property
    def offered_load(self) -> float:
        return self.invocations_per_second * self.cpu_seconds_per_invocation


@dataclass(frozen=True)
class InterferenceResult:
    """Storage-service latency with and without the co-located load."""

    baseline_utilization: float
    combined_utilization: float
    baseline_latency_seconds: float
    combined_latency_seconds: float
    saturated: bool

    @property
    def latency_inflation(self) -> float:
        """Storage GET latency multiple caused by the co-located load."""
        if self.saturated:
            return float("inf")
        return self.combined_latency_seconds / self.baseline_latency_seconds


class StorageNodeCPU:
    """M/M/1-PS approximation of the storage node's CPU."""

    def __init__(self, cores: int = 8) -> None:
        if cores <= 0:
            raise ConfigurationError(f"non-positive core count: {cores}")
        self._cores = cores

    def _response_time(
        self, utilization: float, service_seconds: float
    ) -> float:
        # Processor sharing: E[T] = S / (1 - rho) per core-normalised load.
        if utilization >= 1.0:
            return float("inf")
        return service_seconds / (1.0 - utilization)

    def interference(
        self,
        traffic: StorageTrafficProfile,
        co_located: CoLocatedFunctionLoad,
    ) -> InterferenceResult:
        """Storage latency before/after adding the co-located CPU load."""
        base_rho = traffic.offered_load / self._cores
        combined_rho = (traffic.offered_load + co_located.offered_load) / self._cores
        if base_rho >= 1.0:
            raise ConfigurationError(
                f"storage traffic alone saturates the node (rho={base_rho:.2f})"
            )
        saturated = combined_rho >= 1.0
        base_latency = self._response_time(
            base_rho, traffic.cpu_seconds_per_request
        )
        combined_latency = (
            float("inf")
            if saturated
            else self._response_time(combined_rho, traffic.cpu_seconds_per_request)
        )
        return InterferenceResult(
            baseline_utilization=base_rho,
            combined_utilization=min(combined_rho, 1.0),
            baseline_latency_seconds=base_latency,
            combined_latency_seconds=combined_latency,
            saturated=saturated,
        )


def dscs_co_located_load(
    invocations_per_second: float, driver_round_trip_seconds: float = 3 * MS
) -> CoLocatedFunctionLoad:
    """DSCS's CPU footprint: only the driver dispatch/interrupt path."""
    return CoLocatedFunctionLoad(
        invocations_per_second=invocations_per_second,
        cpu_seconds_per_invocation=driver_round_trip_seconds,
    )


def ns_cpu_co_located_load(
    invocations_per_second: float, compute_seconds_per_invocation: float
) -> CoLocatedFunctionLoad:
    """A conventional near-storage CPU platform's footprint: the whole
    function executes on the node's cores."""
    return CoLocatedFunctionLoad(
        invocations_per_second=invocations_per_second,
        cpu_seconds_per_invocation=compute_seconds_per_invocation,
    )
