"""Streaming chunked execution: constant-memory traces, bit-identical.

The vectorized engines (:mod:`repro.cluster.fast_engine`,
:mod:`~repro.cluster.policy_engine`, :mod:`~repro.cluster.chaos_engine`,
:mod:`~repro.cluster.control_engine`) materialize the full trace as
per-request numpy arrays — O(trace) memory for arrivals, app ids,
starts, completions, and the per-event series logs.  At fleet scale
(fig13-fleet: ~10.2M requests across 100 racks) that footprint binds
before compute does.

``engine="streaming"`` removes it.  Traces are *generated*, *dispatched*
and *folded into telemetry* in bounded chunks of ``chunk_requests``:

- **Trace side** — any source with the chunk protocol
  (:meth:`~repro.cluster.trace.RequestTrace.chunks`, or the
  generator-backed :class:`~repro.cluster.trace.StreamedTrace`) feeds a
  :class:`_ChunkCursor`; only one chunk is buffered at a time.
- **Engine side** — each engine here is a port of its materialized twin
  operating through the cursor: identical heaps, identical pass-A
  window cuts, identical serial fallbacks, and the same
  :class:`~repro.cluster.fast_engine._ServicePools` tentative-draw RNG
  rollback at every cut.  Chunk boundaries only partition the work;
  every per-request decision, every service draw, and the RNG end
  state are unchanged — the materialized engines are themselves
  invariant to their internal chunking, which is exactly the property
  the oracle-equivalence suites prove.
- **Telemetry side** — instead of whole-trace arrays, results fold
  incrementally into a :class:`StreamedSeries`: tick series via
  :class:`_TickHist` running histograms (one int64 cell per sample
  tick), latency percentiles via the PR 9 mergeable
  :class:`~repro.sim.stats.QuantileSketch`, per-bucket latency sums and
  per-reason drop counters.  Completions are folded in the *canonical*
  order (completion time, start order) — the order the materialized
  series arrays hold — so the float64 bucket sums are bit-identical
  regardless of how the fold was chunked (``np.add.at`` applies
  repeated-index updates sequentially in index order).

Bit-identity contract: for every engine family, a streamed run and
:meth:`StreamedSeries.from_series` over the corresponding materialized
(or event-oracle) run produce :meth:`StreamedSeries.identical_to`
telemetry and leave the simulation RNG and service pools in the same
end state, for any ``chunk_requests`` — enforced by
``tests/test_streaming_equivalence.py``.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import heapify, heappop, heappush, heapreplace
from itertools import count
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.fast_engine import (
    _CAPACITY_MARGIN,
    _CHUNK_MAX,
    _CHUNK_MIN,
    _ServicePools,
    sample_tick_times,
)
from repro.cluster.faults import (
    DROP_REASONS,
    REASON_CRASHED,
    REASON_QUEUE_FULL,
    REASON_SHED,
    REASON_TIMEOUT,
    RetryPolicy,
)
from repro.cluster.schedulers import FCFSPolicy, KeyedPolicy
from repro.errors import ConfigurationError, SchedulingError, SimulationError
from repro.sim.stats import QuantileSketch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.cluster.simulation import RackSimulation, SimulationSeries

_INF = float("inf")

# Default chunk size: large enough that pass-A vector work dominates the
# per-chunk Python overhead, small enough that per-chunk buffers stay a
# rounding error next to the engines' own working state.
_DEFAULT_CHUNK_REQUESTS = 65_536

# Completion-fold flush floor: flushes cost a lexsort over the buffer,
# so tiny chunk sizes still amortise over at least this many entries —
# while keeping the working set proportional to ``chunk_requests``, not
# to a fixed 64k plateau (the constant-memory contract the streaming
# benchmark asserts).  Flush frequency never affects results: every
# flush emits a canonical-order prefix.
_FOLD_MIN = 4096


class _TickHist:
    """Running histogram over the sample-tick grid.

    The materialized engines rebuild each tick series at the end with
    ``np.searchsorted`` over full event-time arrays.  This is the
    constant-memory equivalent: each event adds ``delta`` at the index
    of the first tick that observes it, and :meth:`series` is the
    cumulative sum — identical values without retaining any event.

    ``inclusive`` events are visible at an equal-time tick (the
    engines' ``side="right"`` count); non-inclusive events are not
    (``side="left"``).
    """

    __slots__ = ("_ticks", "_ticks_list", "_hist")

    def __init__(self, ticks: np.ndarray) -> None:
        self._ticks = ticks
        self._ticks_list = ticks.tolist()
        # One overflow cell for events past the last tick.
        self._hist = np.zeros(len(ticks) + 1, dtype=np.int64)

    def add(self, t: float, inclusive: bool, delta: int = 1) -> None:
        if inclusive:
            idx = bisect_left(self._ticks_list, t)
        else:
            idx = bisect_right(self._ticks_list, t)
        self._hist[idx] += delta

    def add_batch(
        self, times: np.ndarray, inclusive: bool, delta: int = 1
    ) -> None:
        if len(times) == 0:
            return
        side = "left" if inclusive else "right"
        idx = np.searchsorted(self._ticks, times, side=side)
        np.add.at(self._hist, idx, delta)

    def series(self) -> np.ndarray:
        return np.cumsum(self._hist[:-1])


class StreamedSeries:
    """Constant-memory telemetry of one rack simulation.

    The streaming counterpart of
    :class:`~repro.cluster.simulation.SimulationSeries`: the same
    tick-grid series and counters, but per-request records collapse to
    bounded accumulators — per-bucket latency sums/counts, per-bucket
    drop counts, per-reason drop counters, per-app completion counts,
    and a mergeable :class:`~repro.sim.stats.QuantileSketch` (default
    config matches the fleet layer's, so per-rack streaming sketches
    merge straight into fleet percentiles).

    Built either by a streaming engine (fold as the run progresses) or
    from a finished materialized run via :meth:`from_series` — the
    "streaming constructor" — which replays the per-request arrays
    through the identical fold, making the two bit-comparable with
    :meth:`identical_to`.
    """

    def __init__(
        self,
        sample_times: np.ndarray,
        *,
        total_requests: int,
        bucket_seconds: float = 60.0,
        engine: str = "streaming",
        chunk_requests: Optional[int] = None,
        app_catalog: Tuple[str, ...] = (),
    ) -> None:
        if bucket_seconds <= 0:
            raise ConfigurationError(f"non-positive bucket: {bucket_seconds}")
        self.sample_times = np.asarray(sample_times, dtype=np.float64)
        self.total_requests = int(total_requests)
        self.bucket_seconds = float(bucket_seconds)
        self.engine = engine
        self.chunk_requests = chunk_requests
        self.app_catalog = tuple(app_catalog)
        self.sketch = QuantileSketch()

        self.queue_depth = np.zeros(0, dtype=np.int64)
        self.busy_instances = np.zeros(0, dtype=np.int64)
        self.live_instances = np.zeros(0, dtype=np.int64)

        self.completed_count = 0
        self.dropped_requests = 0
        self.drop_reason_counts = np.zeros(len(DROP_REASONS), dtype=np.int64)
        self.retries = 0
        self.timeouts = 0
        self.crash_kills = 0
        self.hedges_launched = 0
        self.hedge_wins = 0
        self.scale_ups = 0
        self.scale_downs = 0

        # Growable per-bucket accumulators, unclamped while folding; the
        # tail past the final horizon bucket folds down in finalize().
        self._lat_sums = np.zeros(0, dtype=np.float64)
        self._lat_counts = np.zeros(0, dtype=np.int64)
        self._drop_counts = np.zeros(0, dtype=np.int64)
        self._app_counts = np.zeros(len(self.app_catalog), dtype=np.int64)
        self._last_completion = -_INF
        self._last_drop = -_INF
        self._finalized = False

    # ---------------------------------------------------------- folding
    def _grow(self, attr: str, need: int) -> np.ndarray:
        arr = getattr(self, attr)
        if need > len(arr):
            grown = np.zeros(need, dtype=arr.dtype)
            grown[: len(arr)] = arr
            setattr(self, attr, grown)
            return grown
        return arr

    def fold_completions(
        self,
        times,
        latencies,
        app_ids=None,
    ) -> None:
        """Fold a batch of completions, in canonical completion order.

        Canonical order is (completion time, start order) — the order
        the materialized series arrays hold.  Batching is free to vary
        (``np.add.at`` applies repeated-index updates sequentially), but
        the concatenated element order across calls must be canonical
        for the float64 bucket sums to be chunking-invariant.
        """
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        lats = np.asarray(latencies, dtype=np.float64)
        idx = (times / self.bucket_seconds).astype(int)
        need = int(idx.max()) + 1
        sums = self._grow("_lat_sums", need)
        counts = self._grow("_lat_counts", need)
        np.add.at(sums, idx, lats)
        np.add.at(counts, idx, 1)
        self.sketch.add(lats)
        self.completed_count += int(times.size)
        self._last_completion = max(
            self._last_completion, float(times.max())
        )
        if app_ids is not None and len(self._app_counts):
            self._app_counts += np.bincount(
                np.asarray(app_ids), minlength=len(self._app_counts)
            )

    def fold_drops(self, times, reasons) -> None:
        """Fold a batch of drops; ``reasons`` is an array or one code."""
        times = np.asarray(times, dtype=np.float64)
        if times.size == 0:
            return
        reasons = np.broadcast_to(
            np.asarray(reasons, dtype=np.int64), times.shape
        )
        idx = (times / self.bucket_seconds).astype(int)
        drops = self._grow("_drop_counts", int(idx.max()) + 1)
        np.add.at(drops, idx, 1)
        self.drop_reason_counts += np.bincount(
            reasons, minlength=len(DROP_REASONS)
        )
        self.dropped_requests += int(times.size)
        self._last_drop = max(self._last_drop, float(times.max()))

    def fold_drop(self, t: float, reason: int) -> None:
        """Scalar drop fold (the serial engine paths drop one by one)."""
        idx = int(t / self.bucket_seconds)
        drops = self._grow("_drop_counts", idx + 1)
        drops[idx] += 1
        self.drop_reason_counts[reason] += 1
        self.dropped_requests += 1
        if t > self._last_drop:
            self._last_drop = t

    def finalize(self) -> "StreamedSeries":
        """Clamp the per-bucket accumulators to the run's horizon.

        The horizon covers the last completion, the last drop, and the
        last sample tick — the same rule the materialized per-bucket
        helpers use — and buckets past it fold into the final one, in
        ascending order so the float sums are deterministic.
        """
        if self._finalized:
            return self
        horizon = max(self._last_completion, self._last_drop)
        if len(self.sample_times):
            horizon = max(horizon, float(self.sample_times[-1]))
        if horizon == -_INF:
            buckets = 0
        else:
            buckets = max(
                1, int(np.ceil(horizon / self.bucket_seconds))
            )
        for attr in ("_lat_sums", "_lat_counts", "_drop_counts"):
            arr = self._grow(attr, buckets)
            for b in range(buckets, len(arr)):
                arr[buckets - 1] += arr[b]
            setattr(self, attr, arr[:buckets].copy())
        self._finalized = True
        return self

    @classmethod
    def from_series(
        cls,
        series: "SimulationSeries",
        *,
        bucket_seconds: float = 60.0,
        engine: str = "materialized",
        chunk_requests: Optional[int] = None,
    ) -> "StreamedSeries":
        """Streaming view of a finished materialized (or oracle) run.

        Copies the tick-grid series verbatim and replays the
        per-request completion/drop arrays — which the materialized
        engines already store in canonical order — through the same
        fold methods a streaming engine uses, so the result is
        bit-comparable via :meth:`identical_to`.
        """
        out = cls(
            series.sample_times,
            total_requests=series.total_requests,
            bucket_seconds=bucket_seconds,
            engine=engine,
            chunk_requests=chunk_requests,
            app_catalog=series.app_catalog,
        )
        out.queue_depth = np.asarray(series.queue_depth).copy()
        out.busy_instances = np.asarray(series.busy_instances).copy()
        out.live_instances = np.asarray(series.live_instances).copy()
        app_ids = (
            series.completed_app_ids
            if len(series.completed_app_ids)
            else None
        )
        out.fold_completions(
            series.completed_times,
            series.completed_latency_seconds,
            app_ids,
        )
        if len(series.dropped_times):
            reasons = (
                series.dropped_reasons
                if len(series.dropped_reasons)
                else np.zeros(len(series.dropped_times), dtype=np.int64)
            )
            out.fold_drops(series.dropped_times, reasons)
        out.retries = series.retries
        out.timeouts = series.timeouts
        out.crash_kills = series.crash_kills
        out.hedges_launched = series.hedges_launched
        out.hedge_wins = series.hedge_wins
        out.scale_ups = series.scale_ups
        out.scale_downs = series.scale_downs
        return out.finalize()

    # ---------------------------------------------------------- queries
    @property
    def latency_sum_per_bucket(self) -> np.ndarray:
        return self._lat_sums

    @property
    def completed_per_bucket(self) -> np.ndarray:
        return self._lat_counts

    @property
    def dropped_per_bucket(self) -> np.ndarray:
        return self._drop_counts

    @property
    def completed_per_app(self) -> Dict[str, int]:
        """Completion counts by app name (control engines only; the
        other engines do not track per-completion apps, so this is
        empty for their runs — keyed by name, so two runs compare
        equal regardless of catalog order)."""
        return {
            name: int(n)
            for name, n in zip(self.app_catalog, self._app_counts)
            if n
        }

    def mean_latency_per_bucket(self) -> np.ndarray:
        """Average latency per bucket (NaN where nothing completed)."""
        if self.completed_count == 0:
            return np.array([])
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                self._lat_counts > 0,
                self._lat_sums / np.maximum(self._lat_counts, 1),
                np.nan,
            )

    def availability_per_bucket(self) -> np.ndarray:
        """Per-bucket completed / (completed + dropped); NaN when no
        request ended in the bucket."""
        ended = self._lat_counts + self._drop_counts
        with np.errstate(invalid="ignore", divide="ignore"):
            return np.where(
                ended > 0,
                self._lat_counts / np.maximum(ended, 1),
                np.nan,
            )

    def drop_breakdown(self) -> Dict[str, int]:
        """Drops by reason, summing to :attr:`dropped_requests`."""
        return {
            reason: int(n)
            for reason, n in zip(DROP_REASONS, self.drop_reason_counts)
        }

    def latency_percentile(self, q: float) -> float:
        """Sketch-estimated latency percentile (see the sketch's
        documented ``relative_error_bound``)."""
        return self.sketch.percentile(q)

    @property
    def availability(self) -> float:
        if self.total_requests == 0:
            return float("nan")
        return self.completed_count / self.total_requests

    @property
    def wall_clock_seconds(self) -> float:
        if self.completed_count == 0:
            return 0.0
        return float(self._last_completion)

    @property
    def goodput_rps(self) -> float:
        horizon = self.wall_clock_seconds
        if horizon <= 0:
            return 0.0
        return self.completed_count / horizon

    @property
    def mean_latency_seconds(self) -> float:
        if self.completed_count == 0:
            return 0.0
        return float(self._lat_sums.sum()) / self.completed_count

    def identical_to(self, other: "StreamedSeries") -> bool:
        """Exact equality of every accumulator that the bit-identity
        contract covers (engine/chunking metadata excluded; the sketch
        comparison ignores its batching-sensitive running sum)."""
        return (
            self.total_requests == other.total_requests
            and self.completed_count == other.completed_count
            and self.dropped_requests == other.dropped_requests
            and np.array_equal(
                self.drop_reason_counts, other.drop_reason_counts
            )
            and self.retries == other.retries
            and self.timeouts == other.timeouts
            and self.crash_kills == other.crash_kills
            and self.hedges_launched == other.hedges_launched
            and self.hedge_wins == other.hedge_wins
            and self.scale_ups == other.scale_ups
            and self.scale_downs == other.scale_downs
            and np.array_equal(self.sample_times, other.sample_times)
            and np.array_equal(self.queue_depth, other.queue_depth)
            and np.array_equal(self.busy_instances, other.busy_instances)
            and np.array_equal(self.live_instances, other.live_instances)
            and np.array_equal(self._lat_sums, other._lat_sums)
            and np.array_equal(self._lat_counts, other._lat_counts)
            and np.array_equal(self._drop_counts, other._drop_counts)
            and self.sketch.identical_to(other.sketch)
            and self.completed_per_app == other.completed_per_app
            and self._last_completion == other._last_completion
            and self._last_drop == other._last_drop
        )


class _CompletionFold:
    """Bounded buffer emitting completions to a series in canonical order.

    Two modes:

    - ``presorted=True`` (chaos/control): the engine emits at pending-
      heap pops, which are already in canonical (completion, start
      order); the buffer just batches them and auto-flushes.
    - ``presorted=False`` (FCFS/keyed): the engine emits at *admission/
      start* in start order, where completions are not sorted.  The
      engine flushes with a watermark no future completion can undercut
      (``min(next arrival, pending heap min)``); a stable sort then
      emits exactly the canonical prefix below it and carries the rest.
    """

    __slots__ = ("_series", "_limit", "_presorted", "_parts", "_scalars",
                 "_scalar_lats", "_apps", "_count")

    def __init__(
        self,
        series: StreamedSeries,
        limit: int,
        presorted: bool,
        track_apps: bool = False,
    ) -> None:
        self._series = series
        self._limit = max(int(limit), 1)
        self._presorted = presorted
        # Batch emissions park their arrays as-is (zero per-element
        # cost); scalar emissions accumulate in lists and spill to an
        # array part when a batch follows, preserving append order.
        self._parts: List[Tuple[np.ndarray, np.ndarray]] = []
        self._scalars: List[float] = []
        self._scalar_lats: List[float] = []
        self._apps: Optional[List[int]] = [] if track_apps else None
        self._count = 0

    def __len__(self) -> int:
        return self._count

    @property
    def limit(self) -> int:
        return self._limit

    def emit(self, comp: float, lat: float, app: int = -1) -> None:
        self._scalars.append(comp)
        self._scalar_lats.append(lat)
        if self._apps is not None:
            self._apps.append(app)
        self._count += 1
        if self._presorted and self._count >= self._limit:
            self.flush(_INF)

    def emit_batch(self, comps: np.ndarray, lats: np.ndarray) -> None:
        if self._scalars:
            self._spill()
        self._parts.append((comps, lats))
        self._count += len(comps)

    def _spill(self) -> None:
        self._parts.append(
            (np.asarray(self._scalars), np.asarray(self._scalar_lats))
        )
        self._scalars = []
        self._scalar_lats = []

    def flush(self, watermark: float) -> None:
        if self._count == 0:
            return
        if self._presorted:
            # Only the scalar path feeds presorted folds (chaos/control
            # emit one completion per pending-heap pop).
            apps = (
                np.asarray(self._apps, dtype=np.int64)
                if self._apps is not None
                else None
            )
            self._series.fold_completions(
                np.asarray(self._scalars),
                np.asarray(self._scalar_lats),
                apps,
            )
            self._scalars = []
            self._scalar_lats = []
            if self._apps is not None:
                self._apps = []
            self._count = 0
            return
        if self._scalars:
            self._spill()
        if len(self._parts) == 1:
            comps, lats = self._parts[0]
        else:
            comps = np.concatenate([part[0] for part in self._parts])
            lats = np.concatenate([part[1] for part in self._parts])
        # Stable sort on (completion, append order); append order is
        # start order, the canonical tie-break.
        order = np.lexsort((np.arange(len(comps)), comps))
        if watermark == _INF:
            cutoff = len(comps)
        else:
            cutoff = int(
                np.searchsorted(comps[order], watermark, side="left")
            )
        if cutoff == 0:
            self._parts = [(comps, lats)]
            return
        take = order[:cutoff]
        self._series.fold_completions(comps[take], lats[take])
        keep = np.sort(order[cutoff:])
        self._parts = [(comps[keep], lats[keep])]
        self._count = len(keep)


class _ChunkCursor:
    """One-chunk-at-a-time view of a streamed trace source.

    Buffers exactly one :class:`~repro.cluster.trace.TraceChunk`,
    validating the streaming contract on refill (equal-length arrays,
    sorted within the chunk, non-decreasing across the boundary).
    ``index`` is the global trace index of the next request — the
    engines' admission sequence / ``qseq`` space.
    """

    def __init__(self, source, chunk_requests: int) -> None:
        self._chunks = source.chunks(chunk_requests)
        self._arr = np.zeros(0)
        self._ids = np.zeros(0, dtype=np.intp)
        self._arr_list: List[float] = []
        self._ids_list: List[int] = []
        self._pos = 0
        self._base = 0
        self._last = -_INF
        self._exhausted = False

    def _refill(self) -> None:
        while not self._exhausted and self._pos >= len(self._arr_list):
            self._base += len(self._arr_list)
            self._pos = 0
            self._arr_list = []
            self._ids_list = []
            try:
                chunk = next(self._chunks)
            except StopIteration:
                self._exhausted = True
                return
            arr = np.asarray(chunk.arrival_seconds, dtype=np.float64)
            ids = np.asarray(chunk.app_ids, dtype=np.intp)
            if len(arr) != len(ids):
                raise ConfigurationError(
                    "trace chunk arrivals and app ids differ in length"
                )
            if len(arr) == 0:
                continue
            if np.any(np.diff(arr) < 0) or float(arr[0]) < self._last:
                raise ConfigurationError(
                    "engine='streaming' requires a time-ordered trace; "
                    "chunk arrivals regress"
                )
            self._last = float(arr[-1])
            self._arr = arr
            self._ids = ids
            self._arr_list = arr.tolist()
            self._ids_list = ids.tolist()

    @property
    def index(self) -> int:
        """Global trace index of the next request."""
        return self._base + self._pos

    def peek_time(self) -> float:
        """Next arrival time, or +inf when the trace is exhausted."""
        self._refill()
        if self._exhausted:
            return _INF
        return self._arr_list[self._pos]

    def window(self, limit: int) -> Tuple[np.ndarray, np.ndarray]:
        """Up to ``limit`` upcoming (arrivals, app ids), capped at the
        buffered chunk's end.  Never empty unless exhausted."""
        self._refill()
        lo = self._pos
        hi = min(len(self._arr_list), lo + limit)
        return self._arr[lo:hi], self._ids[lo:hi]

    def advance(self, k: int) -> None:
        self._pos += k

    def pop(self) -> Tuple[float, int]:
        """Consume and return the next (arrival time, app id)."""
        self._refill()
        t = self._arr_list[self._pos]
        app_id = self._ids_list[self._pos]
        self._pos += 1
        return t, app_id


def _check_first_arrival(cursor: _ChunkCursor) -> None:
    t0 = cursor.peek_time()
    if t0 != _INF and t0 < 0:
        raise SimulationError(f"event scheduled at negative time {t0}")


def run_streaming_fcfs(
    sim: "RackSimulation",
    source,
    sample_interval_seconds: float,
    chunk_requests: int,
) -> StreamedSeries:
    """Streaming port of :func:`~repro.cluster.fast_engine.run_vectorized`.

    Identical heaps, pass A/B/C structure, and RNG rollback; arrivals
    come through a :class:`_ChunkCursor` window and results fold into a
    :class:`StreamedSeries` instead of whole-trace arrays.
    """
    cursor = _ChunkCursor(source, chunk_requests)
    _check_first_arrival(cursor)
    n = source.total_requests
    c = sim._max_instances
    qmax = sim._queue_depth
    capacity = c + qmax
    serial_threshold = max(c, capacity - _CAPACITY_MARGIN)

    app_names = list(source.app_catalog)
    n_apps = len(app_names)
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)

    ticks = sample_tick_times(
        source.duration_seconds, sample_interval_seconds
    )
    series = StreamedSeries(
        ticks,
        total_requests=n,
        engine="streaming",
        chunk_requests=chunk_requests,
        app_catalog=tuple(app_names),
    )
    imm_hist = _TickHist(ticks)
    qarr_hist = _TickHist(ticks)
    qstart_hist = _TickHist(ticks)
    comp_hist = _TickHist(ticks)
    fold = _CompletionFold(
        series, max(chunk_requests, _FOLD_MIN), presorted=False
    )

    avail: List[float] = [0.0] * c  # heap of server-free times
    pending: List[float] = []  # heap of in-system completion times
    admitted_count = 0
    departed_count = 0

    chunk_size = _CHUNK_MIN
    next_compact = chunk_requests
    while True:
        now = cursor.peek_time()
        if now == _INF:
            break
        if cursor.index >= next_compact:
            # The serial kernel draws pool samples without a peek/
            # commit cycle; compacting once per chunk of arrivals keeps
            # consumed prefixes bounded even on serial-heavy runs.
            pools.compact()
            next_compact = cursor.index + chunk_requests
        if len(fold) >= fold.limit:
            fold.flush(min(now, pending[0]) if pending else now)
        while pending and pending[0] < now:
            heappop(pending)
            departed_count += 1
        in_system = admitted_count - departed_count

        # ---- Pass C: serial steps near the admission limit ----------
        if in_system >= serial_threshold:
            if in_system >= capacity:
                cursor.advance(1)
                series.fold_drop(now, REASON_QUEUE_FULL)
                continue
            _, app_id = cursor.pop()
            service = sim._service_time(app_names[app_id])
            free = avail[0]
            start = now if now > free else free
            completion = start + service
            heapreplace(avail, completion)
            heappush(pending, completion)
            if start <= now:
                imm_hist.add(now, inclusive=True)
            else:
                qarr_hist.add(now, inclusive=True)
                qstart_hist.add(start, inclusive=False)
            comp_hist.add(completion, inclusive=False)
            fold.emit(completion, completion - now)
            admitted_count += 1
            continue

        # ---- Chunked passes -----------------------------------------
        window_arr, window_ids = cursor.window(chunk_size)
        hi = len(window_arr)
        unknown = np.nonzero(~known[window_ids])[0]
        if unknown.size:
            if unknown[0] == 0:
                # The queue has room, so the oracle would admit this
                # request, draw its service time, and fail.
                raise SchedulingError(
                    f"unknown application {app_names[window_ids[0]]!r}"
                )
            hi = int(unknown[0])
        arr = window_arr[:hi]
        ids = window_ids[:hi]
        m = hi
        values, events, snapshot = pools.peek(ids)
        pend_sorted = np.sort(np.asarray(pending))
        dep_pend = np.searchsorted(pend_sorted, arr, side="left")
        offsets = np.arange(m)

        committed = -1  # sentinel: chunk not resolved yet
        drop_after = False
        avail_is_final = False
        all_immediate = False

        # ---- Pass A: contention-free chunk (all starts immediate) ---
        if in_system < c:
            comp_opt = arr + values
            dep_chunk = np.searchsorted(np.sort(comp_opt), arr, side="left")
            n_before = in_system + offsets - dep_pend - dep_chunk
            crossing = np.nonzero(n_before >= c)[0]
            cut = int(crossing[0]) if crossing.size else m
            if cut > 0:
                committed = cut
                starts_arr = arr[:cut]
                comps_arr = comp_opt[:cut]
                all_immediate = True

        # ---- Pass B: heap kernel with drop detection ----------------
        if committed < 0:
            heap = avail[:]
            starts_l: List[float] = []
            comps_l: List[float] = []
            append_start = starts_l.append
            append_comp = comps_l.append
            for arrival_t, service_t in zip(arr.tolist(), values.tolist()):
                free = heap[0]
                start = arrival_t if arrival_t > free else free
                append_start(start)
                completion = start + service_t
                append_comp(completion)
                heapreplace(heap, completion)
            comps_b = np.asarray(comps_l)
            dep_chunk = np.searchsorted(np.sort(comps_b), arr, side="left")
            n_before = in_system + offsets - dep_pend - dep_chunk
            over = np.nonzero(n_before >= capacity)[0]
            if over.size:
                committed = int(over[0])  # first over-capacity arrival
                drop_after = True
            else:
                committed = m
                avail = heap  # final server state, already a heap
                avail_is_final = True
            starts_arr = np.asarray(starts_l[:committed])
            comps_arr = comps_b[:committed]

        # ---- Commit the resolved prefix -----------------------------
        pools.commit(ids, committed, events, snapshot, n_apps)
        pools.compact()
        if committed:
            arr_c = arr[:committed]
            admitted_count += committed
            pending.extend(comps_arr.tolist())
            heapify(pending)
            if not avail_is_final:
                merged = np.concatenate([np.asarray(avail), comps_arr])
                avail = np.partition(merged, -c)[-c:].tolist()
                heapify(avail)
            if all_immediate:
                imm_hist.add_batch(arr_c, inclusive=True)
            else:
                immediate = starts_arr <= arr_c
                imm_hist.add_batch(arr_c[immediate], inclusive=True)
                qarr_hist.add_batch(arr_c[~immediate], inclusive=True)
                qstart_hist.add_batch(
                    starts_arr[~immediate], inclusive=False
                )
            comp_hist.add_batch(comps_arr, inclusive=False)
            fold.emit_batch(comps_arr, comps_arr - arr_c)
        cursor.advance(committed)
        if drop_after:
            t_drop, _ = cursor.pop()
            series.fold_drop(t_drop, REASON_QUEUE_FULL)
        if committed == m:
            chunk_size = min(chunk_size * 2, _CHUNK_MAX)
        else:
            chunk_size = _CHUNK_MIN

    fold.flush(_INF)
    series.busy_instances = (
        imm_hist.series() + qstart_hist.series() - comp_hist.series()
    )
    series.queue_depth = qarr_hist.series() - qstart_hist.series()
    return series.finalize()


def run_streaming_keyed(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    source,
    sample_interval_seconds: float,
    chunk_requests: int,
) -> StreamedSeries:
    """Streaming port of :func:`~repro.cluster.policy_engine.run_keyed`.

    Same primitive heaps, pass-A windows, keyed-dispatch kernel, and
    batched drain (serial fallback included); telemetry folds into a
    :class:`StreamedSeries` as the run progresses.
    """
    cursor = _ChunkCursor(source, chunk_requests)
    _check_first_arrival(cursor)
    n = source.total_requests
    c = sim._max_instances
    qmax = sim._queue_depth

    app_names = list(source.app_catalog)
    n_apps = len(app_names)
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    prefixes = [policy.key.key_for(name) for name in app_names]

    ticks = sample_tick_times(
        source.duration_seconds, sample_interval_seconds
    )
    series = StreamedSeries(
        ticks,
        total_requests=n,
        engine="streaming",
        chunk_requests=chunk_requests,
        app_catalog=tuple(app_names),
    )
    imm_hist = _TickHist(ticks)
    qarr_hist = _TickHist(ticks)
    qstart_hist = _TickHist(ticks)
    comp_hist = _TickHist(ticks)
    fold = _CompletionFold(
        series, max(chunk_requests, _FOLD_MIN), presorted=False
    )

    pending: List[float] = []
    queue: List[tuple] = []
    service_time = sim._service_time
    observe_app = policy.observe_app

    def dispatch(now: float) -> None:
        """Serve the min-key queued request on the server freed at now."""
        entry = heappop(queue)
        arrival_t = entry[-2]
        service = service_time(app_names[entry[-1]])
        completion = now + service
        heappush(pending, completion)
        qstart_hist.add(now, inclusive=False)
        comp_hist.add(completion, inclusive=False)
        fold.emit(completion, completion - arrival_t)

    chunk_size = _CHUNK_MIN
    next_compact = chunk_requests
    while True:
        now = cursor.peek_time()
        if now == _INF:
            break
        if cursor.index >= next_compact:
            # The keyed-dispatch kernel draws pool samples without a
            # peek/commit cycle; compact once per chunk of arrivals.
            pools.compact()
            next_compact = cursor.index + chunk_requests
        if len(fold) >= fold.limit:
            fold.flush(min(now, pending[0]) if pending else now)
        while pending and pending[0] < now:
            freed_at = heappop(pending)
            if queue:
                dispatch(freed_at)
        busy = len(pending)

        # ---- Pass A: contention-free chunk (all starts immediate) ---
        if not queue and busy < c:
            window_arr, window_ids = cursor.window(chunk_size)
            hi = len(window_arr)
            unknown = np.nonzero(~known[window_ids])[0]
            if unknown.size:
                # Cut before the first unknown app; the serial step
                # below reproduces the oracle's failure exactly.
                hi = int(unknown[0])
            if hi > 0:
                arr = window_arr[:hi]
                ids = window_ids[:hi]
                m = hi
                values, events, snapshot = pools.peek(ids)
                pend_sorted = np.sort(np.asarray(pending))
                dep_pend = np.searchsorted(pend_sorted, arr, side="left")
                comp_opt = arr + values
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr, side="left"
                )
                n_before = busy + np.arange(m) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= c)[0]
                cut = int(crossing[0]) if crossing.size else m
                pools.commit(ids, cut, events, snapshot, n_apps)
                pools.compact()
                for committed_id in np.unique(ids[:cut]):
                    observe_app(app_names[committed_id])
                comps_arr = comp_opt[:cut]
                arr_c = arr[:cut]
                imm_hist.add_batch(arr_c, inclusive=True)
                comp_hist.add_batch(comps_arr, inclusive=False)
                fold.emit_batch(comps_arr, comps_arr - arr_c)
                pending.extend(comps_arr.tolist())
                heapify(pending)
                cursor.advance(cut)
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if cut == m
                    else _CHUNK_MIN
                )
                continue

        # ---- Keyed dispatch kernel: one arrival, serially -----------
        idx = cursor.index
        _, app_id = cursor.pop()
        if busy < c:
            observe_app(app_names[app_id])
            service = service_time(app_names[app_id])
            completion = now + service
            heappush(pending, completion)
            imm_hist.add(now, inclusive=True)
            comp_hist.add(completion, inclusive=False)
            fold.emit(completion, completion - now)
        elif len(queue) < qmax:
            observe_app(app_names[app_id])
            heappush(queue, prefixes[app_id] + (idx, now, app_id))
            qarr_hist.add(now, inclusive=True)
        else:
            series.fold_drop(now, REASON_QUEUE_FULL)

    # ---- Drain: serve the backlog in pure key order -----------------
    if queue and pending and all(known[entry[-1]] for entry in queue):
        backlog = sorted(queue)
        drain_ids = np.fromiter(
            (entry[-1] for entry in backlog),
            dtype=np.intp,
            count=len(backlog),
        )
        values, events, snapshot = pools.peek(drain_ids)
        pools.commit(drain_ids, len(backlog), events, snapshot, n_apps)
        for entry, service in zip(backlog, values.tolist()):
            freed_at = pending[0]
            completion = freed_at + service
            heapreplace(pending, completion)
            qstart_hist.add(freed_at, inclusive=False)
            comp_hist.add(completion, inclusive=False)
            fold.emit(completion, completion - entry[-2])
        queue.clear()
        pending.clear()
    else:
        # Serial fallback: an unknown app in the backlog must fail at
        # its exact dispatch (same SchedulingError, same RNG state).
        while pending:
            freed_at = heappop(pending)
            if queue:
                dispatch(freed_at)

    fold.flush(_INF)
    series.busy_instances = (
        imm_hist.series() + qstart_hist.series() - comp_hist.series()
    )
    series.queue_depth = qarr_hist.series() - qstart_hist.series()
    return series.finalize()


def run_streaming_chaos(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    source,
    sample_interval_seconds: float,
    timeline,
    retry: RetryPolicy,
    chunk_requests: int,
) -> StreamedSeries:
    """Streaming port of
    :func:`~repro.cluster.chaos_engine.run_chaos_vectorized`.

    The same next-event loop over five sources; per-start logs collapse
    to a ``flight`` dict holding live starts only, and completions emit
    to the fold at pending-heap pops — already canonical (completion,
    start order), so no watermark sort is needed.
    """
    cursor = _ChunkCursor(source, chunk_requests)
    _check_first_arrival(cursor)
    n = source.total_requests
    cap = timeline.initial_capacity
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    service_time = sim._service_time

    app_names = list(source.app_catalog)
    n_apps = len(app_names)
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    prefixes = [policy.key.key_for(name) for name in app_names]

    fault_times = timeline.times.tolist()
    fault_caps = timeline.capacities.tolist()
    n_faults = len(fault_times)
    has_slowdowns = len(timeline.slow_starts) > 0

    ticks = sample_tick_times(
        source.duration_seconds, sample_interval_seconds
    )
    series = StreamedSeries(
        ticks,
        total_requests=n,
        engine="streaming",
        chunk_requests=chunk_requests,
        app_catalog=tuple(app_names),
    )
    spre_hist = _TickHist(ticks)
    spost_hist = _TickHist(ticks)
    enq_hist = _TickHist(ticks)
    deqpre_hist = _TickHist(ticks)
    deqpost_hist = _TickHist(ticks)
    kill_hist = _TickHist(ticks)
    comp_hist = _TickHist(ticks)
    fold = _CompletionFold(
        series, max(chunk_requests, _FOLD_MIN), presorted=True
    )

    # Queue entries: ``prefix + request`` where a request is the tuple
    # ``(qseq, app_id, orig_seq, attempt, orig_arrival)``.
    qheap: List[tuple] = []
    queued: set = set()
    timers: List[tuple] = []  # (deadline, push order, request)
    injected: List[tuple] = []  # (time, push order, request)
    pending: List[Tuple[float, int]] = []  # (completion, start_seq)
    # Live starts only: seq -> (done, orig_arrival, orig_seq, attempt,
    # app_id) — the constant-memory replacement for the materialized
    # engine's per-start logs + alive set.
    flight: Dict[int, Tuple[float, float, int, int, int]] = {}
    timer_counter = count()
    injected_counter = count()
    busy = 0
    start_counter = 0
    retry_counter = 0
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start(
        app_id: int,
        now: float,
        orig_arrival: float,
        orig_seq: int,
        attempt: int,
        pre_tick: bool,
    ) -> None:
        nonlocal busy, start_counter, hedges_launched, hedge_wins
        sample = service_time(app_names[app_id])
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_names[app_id])
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = start_counter
        start_counter += 1
        flight[seq] = (done, orig_arrival, orig_seq, attempt, app_id)
        heappush(pending, (done, seq))
        busy += 1
        if pre_tick:
            spre_hist.add(now, inclusive=True)
        else:
            spost_hist.add(now, inclusive=False)

    def fail(
        app_id: int, orig_seq: int, attempt: int, orig_arrival: float,
        reason: int, now: float,
    ) -> None:
        nonlocal retries, retry_counter
        if attempt < max_retries:
            retries += 1
            delay = retry.backoff_seconds(orig_seq, attempt)
            reattempt = (
                n + retry_counter, app_id, orig_seq, attempt + 1,
                orig_arrival,
            )
            retry_counter += 1
            heappush(
                injected, (now + delay, next(injected_counter), reattempt)
            )
        else:
            series.fold_drop(now, reason)

    def dispatch(now: float, pre_tick: bool) -> None:
        while True:
            entry = heappop(qheap)
            request = entry[-5:]
            if request[0] in queued:
                break
        queued.discard(request[0])
        if pre_tick:
            deqpre_hist.add(now, inclusive=True)
        else:
            deqpost_hist.add(now, inclusive=False)
        start(request[1], now, request[4], request[2], request[3], pre_tick)

    def admit(request: tuple, now: float) -> None:
        qseq, app_id, orig_seq, attempt, orig_arrival = request
        if busy < cap:
            observe_app(app_names[app_id])
            start(app_id, now, orig_arrival, orig_seq, attempt, True)
        elif len(queued) < qmax:
            observe_app(app_names[app_id])
            heappush(qheap, prefixes[app_id] + request)
            queued.add(qseq)
            enq_hist.add(now, inclusive=True)
            if timeout is not None:
                heappush(
                    timers, (now + timeout, next(timer_counter), request)
                )
        else:
            fail(
                app_id, orig_seq, attempt, orig_arrival,
                REASON_QUEUE_FULL, now,
            )

    k = 0
    chunk_size = _CHUNK_MIN
    next_compact = chunk_requests
    while True:
        if cursor.index >= next_compact:
            # The serial start/fail kernels draw pool samples without a
            # peek/commit cycle; compact once per chunk of arrivals.
            pools.compact()
            next_compact = cursor.index + chunk_requests
        # Timers whose entries were served (or already failed) are dead;
        # with an empty queue every timer is.
        if not queued:
            if timers:
                timers.clear()
        else:
            while timers and timers[0][2][0] not in queued:
                heappop(timers)

        t_fault = fault_times[k] if k < n_faults else _INF
        t_timer = timers[0][0] if timers else _INF
        t_trace = cursor.peek_time()
        t_injected = injected[0][0] if injected else _INF
        t_next = min(t_fault, t_timer, t_trace, t_injected)

        # Completions strictly before the next ranked event fire first
        # (equal timestamps fire after: completion has the last rank),
        # each freeing a server for the current min-key queued request.
        # Pops arrive in (completion, start order) — the canonical fold
        # order.
        while pending and pending[0][0] < t_next:
            done, seq = heappop(pending)
            busy -= 1
            rec = flight.pop(seq)
            comp_hist.add(done, inclusive=False)
            fold.emit(done, done - rec[1])
            if queued and busy < cap:
                dispatch(done, False)
        if t_next == _INF:
            break

        # ---- Fault event: capacity step -----------------------------
        if t_fault == t_next:
            new_cap = int(fault_caps[k])
            k += 1
            if new_cap < busy:
                shortfall = busy - new_cap
                victims = sorted(
                    (rec[0], s) for s, rec in flight.items()
                )[-shortfall:]
                doomed = {seq for _, seq in victims}
                for _, seq in reversed(victims):
                    rec = flight.pop(seq)
                    busy -= 1
                    crash_kills += 1
                    kill_hist.add(t_fault, inclusive=True)
                    fail(
                        rec[4], rec[2], rec[3], rec[1],
                        REASON_CRASHED, t_fault,
                    )
                pending = [e for e in pending if e[1] not in doomed]
                heapify(pending)
            cap = new_cap
            while queued and busy < cap:
                dispatch(t_fault, True)
            continue

        # ---- Timeout timer ------------------------------------------
        if t_timer == t_next:
            _, _, request = heappop(timers)
            if request[0] in queued:  # may have been served by the drain
                queued.discard(request[0])
                deqpre_hist.add(t_timer, inclusive=True)
                timeouts += 1
                fail(
                    request[1], request[2], request[3], request[4],
                    REASON_TIMEOUT, t_timer,
                )
            continue

        # ---- Trace arrival (before an injected one at the same time) -
        if t_trace == t_next and t_trace <= t_injected:
            if not queued and busy < cap:
                # Pass A: contention-free chunk, cut at the next fault
                # (rank before arrivals: equal-time arrivals excluded)
                # and the next injected re-arrival (rank after trace
                # arrivals: equal-time trace arrivals included).
                window_arr, window_ids = cursor.window(chunk_size)
                hi = len(window_arr)
                if k < n_faults:
                    hi = int(
                        np.searchsorted(
                            window_arr[:hi], t_fault, side="left"
                        )
                    )
                if injected:
                    hi = int(
                        np.searchsorted(
                            window_arr[:hi], t_injected, side="right"
                        )
                    )
                unknown = np.nonzero(~known[window_ids[:hi]])[0]
                if unknown.size:
                    if unknown[0] == 0:
                        raise SchedulingError(
                            "unknown application "
                            f"{app_names[window_ids[0]]!r}"
                        )
                    hi = int(unknown[0])
                arr = window_arr[:hi]
                ids = window_ids[:hi]
                m = hi
                if hedge is not None:
                    draw_ids = np.repeat(ids, 2)
                    values, events, snapshot = pools.peek(draw_ids)
                    first = values[0::2]
                    backup = values[1::2]
                else:
                    draw_ids = ids
                    values, events, snapshot = pools.peek(ids)
                    first = values
                mults = (
                    timeline.multipliers(arr)
                    if has_slowdowns
                    else np.ones(m)
                )
                effective_first = mults * first
                if hedge is not None:
                    alternative = hedge + mults * backup
                    effective = np.minimum(effective_first, alternative)
                else:
                    effective = effective_first
                comp_opt = arr + effective
                pend_times = np.sort(
                    np.fromiter(
                        (e[0] for e in pending),
                        dtype=np.float64,
                        count=len(pending),
                    )
                )
                dep_pend = np.searchsorted(pend_times, arr, side="left")
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr, side="left"
                )
                n_before = busy + np.arange(m) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= cap)[0]
                cut = int(crossing[0]) if crossing.size else m
                pools.commit(
                    draw_ids,
                    2 * cut if hedge is not None else cut,
                    events,
                    snapshot,
                    n_apps,
                )
                pools.compact()
                # cut >= 1: with busy < cap the first arrival always
                # fits.  Observation is coalesced per app per chunk
                # (the documented set-like contract).
                for committed_id in np.unique(ids[:cut]):
                    observe_app(app_names[committed_id])
                if hedge is not None:
                    hedges_launched += int(
                        np.count_nonzero(effective_first[:cut] > hedge)
                    )
                    hedge_wins += int(
                        np.count_nonzero(
                            alternative[:cut] < effective_first[:cut]
                        )
                    )
                started = arr[:cut].tolist()
                comps = comp_opt[:cut].tolist()
                ids_cut = ids[:cut].tolist()
                idx0 = cursor.index
                base = start_counter
                spre_hist.add_batch(arr[:cut], inclusive=True)
                for offset in range(cut):
                    seq = base + offset
                    flight[seq] = (
                        comps[offset], started[offset], idx0 + offset,
                        0, ids_cut[offset],
                    )
                    pending.append((comps[offset], seq))
                start_counter += cut
                heapify(pending)
                busy += cut
                cursor.advance(cut)
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if cut == m
                    else _CHUNK_MIN
                )
            else:
                idx = cursor.index
                _, app_id = cursor.pop()
                admit((idx, app_id, idx, 0, t_trace), t_trace)
            continue

        # ---- Injected re-arrival ------------------------------------
        _, _, request = heappop(injected)
        admit(request, t_injected)

    fold.flush(_INF)
    series.busy_instances = (
        spre_hist.series()
        + spost_hist.series()
        - comp_hist.series()
        - kill_hist.series()
    )
    series.queue_depth = (
        enq_hist.series() - deqpre_hist.series() - deqpost_hist.series()
    )
    series.retries = retries
    series.timeouts = timeouts
    series.crash_kills = crash_kills
    series.hedges_launched = hedges_launched
    series.hedge_wins = hedge_wins
    return series.finalize()


def run_streaming_control(
    sim: "RackSimulation",
    policy: "KeyedPolicy",
    source,
    sample_interval_seconds: float,
    timeline,
    retry: RetryPolicy,
    plane,
    chunk_requests: int,
) -> StreamedSeries:
    """Streaming port of
    :func:`~repro.cluster.control_engine.run_control_vectorized`.

    The chaos port plus the two control event sources (decision ticks,
    warmup activations), the vectorized arrival gate, and the shared
    :class:`~repro.cluster.control.ControllerState` fed the identical
    observations in the identical order.
    """
    from repro.cluster.control import ControllerState
    from repro.cluster.control_engine import _live_series

    cursor = _ChunkCursor(source, chunk_requests)
    _check_first_arrival(cursor)
    n = source.total_requests
    qmax = sim._queue_depth
    timeout = retry.timeout_seconds
    hedge = retry.hedge_after_seconds
    max_retries = retry.max_retries
    multiplier_at = timeline.multiplier_at
    observe_app = policy.observe_app
    service_time = sim._service_time

    app_names = list(source.app_catalog)
    n_apps = len(app_names)
    known = np.array(
        [name in sim._applications for name in app_names], dtype=bool
    )
    pools = _ServicePools(sim, app_names)
    prefixes = [policy.key.key_for(name) for name in app_names]

    state = ControllerState(plane, sim._max_instances, app_names)
    windows = state.windows_active
    gating = state.gating_active
    surviving = timeline.initial_capacity
    cap = min(state.live, surviving)

    fault_times = timeline.times.tolist()
    fault_caps = timeline.capacities.tolist()
    n_faults = len(fault_times)
    has_slowdowns = len(timeline.slow_starts) > 0

    ctrl_times = sample_tick_times(
        source.duration_seconds, plane.control_interval_seconds
    ).tolist()
    n_ctrl = len(ctrl_times)
    jc = 0
    activations: List[Tuple[float, int, int]] = []  # (time, order, target)
    activation_counter = count()

    ticks = sample_tick_times(
        source.duration_seconds, sample_interval_seconds
    )
    series = StreamedSeries(
        ticks,
        total_requests=n,
        engine="streaming",
        chunk_requests=chunk_requests,
        app_catalog=tuple(app_names),
    )
    spre_hist = _TickHist(ticks)
    spost_hist = _TickHist(ticks)
    enq_hist = _TickHist(ticks)
    deqpre_hist = _TickHist(ticks)
    deqpost_hist = _TickHist(ticks)
    kill_hist = _TickHist(ticks)
    comp_hist = _TickHist(ticks)
    fold = _CompletionFold(
        series, max(chunk_requests, _FOLD_MIN),
        presorted=True, track_apps=True,
    )

    qheap: List[tuple] = []
    # qseq -> (enqueue time, heap sort key); doubles as the queued set.
    queued: Dict[int, Tuple[float, tuple]] = {}
    timers: List[tuple] = []
    injected: List[tuple] = []
    pending: List[Tuple[float, int]] = []  # (completion, start_seq)
    flight: Dict[int, Tuple[float, float, int, int, int]] = {}
    timer_counter = count()
    injected_counter = count()
    busy = 0
    start_counter = 0
    retry_counter = 0
    retries = timeouts = crash_kills = 0
    hedges_launched = hedge_wins = 0

    def start(
        app_id: int,
        now: float,
        orig_arrival: float,
        orig_seq: int,
        attempt: int,
        pre_tick: bool,
    ) -> None:
        nonlocal busy, start_counter, hedges_launched, hedge_wins
        sample = service_time(app_names[app_id])
        mult = multiplier_at(now)
        effective = mult * sample
        if hedge is not None:
            backup = service_time(app_names[app_id])
            alternative = hedge + mult * backup
            if effective > hedge:
                hedges_launched += 1
            if alternative < effective:
                hedge_wins += 1
                effective = alternative
        done = now + effective
        seq = start_counter
        start_counter += 1
        flight[seq] = (done, orig_arrival, orig_seq, attempt, app_id)
        heappush(pending, (done, seq))
        busy += 1
        if pre_tick:
            spre_hist.add(now, inclusive=True)
        else:
            spost_hist.add(now, inclusive=False)

    def fail(
        app_id: int, orig_seq: int, attempt: int, orig_arrival: float,
        reason: int, now: float,
    ) -> None:
        nonlocal retries, retry_counter
        if windows:
            state.record_failure(app_id)
        if attempt < max_retries:
            retries += 1
            delay = retry.backoff_seconds(orig_seq, attempt)
            reattempt = (
                n + retry_counter, app_id, orig_seq, attempt + 1,
                orig_arrival,
            )
            retry_counter += 1
            heappush(
                injected, (now + delay, next(injected_counter), reattempt)
            )
        else:
            series.fold_drop(now, reason)

    def shed_drop(now: float) -> None:
        series.fold_drop(now, REASON_SHED)

    def dispatch(now: float, pre_tick: bool) -> None:
        while True:
            entry = heappop(qheap)
            request = entry[-5:]
            if request[0] in queued:
                break
        queued.pop(request[0])
        if pre_tick:
            deqpre_hist.add(now, inclusive=True)
        else:
            deqpost_hist.add(now, inclusive=False)
        start(request[1], now, request[4], request[2], request[3], pre_tick)

    def admit(request: tuple, now: float) -> None:
        qseq, app_id, orig_seq, attempt, orig_arrival = request
        if not known[app_id]:
            raise SchedulingError(
                f"unknown application {app_names[app_id]!r}"
            )
        if not state.admit(app_id):
            shed_drop(now)
            return
        if busy < cap:
            observe_app(app_names[app_id])
            start(app_id, now, orig_arrival, orig_seq, attempt, True)
        elif len(queued) < qmax:
            observe_app(app_names[app_id])
            entry = prefixes[app_id] + request
            heappush(qheap, entry)
            queued[qseq] = (now, entry[:-4])
            enq_hist.add(now, inclusive=True)
            if timeout is not None:
                heappush(
                    timers, (now + timeout, next(timer_counter), request)
                )
        else:
            fail(
                app_id, orig_seq, attempt, orig_arrival,
                REASON_QUEUE_FULL, now,
            )

    k = 0
    chunk_size = _CHUNK_MIN
    next_compact = chunk_requests
    while True:
        if cursor.index >= next_compact:
            # The serial start/fail kernels draw pool samples without a
            # peek/commit cycle; compact once per chunk of arrivals.
            pools.compact()
            next_compact = cursor.index + chunk_requests
        if not queued:
            if timers:
                timers.clear()
        else:
            while timers and timers[0][2][0] not in queued:
                heappop(timers)

        t_fault = fault_times[k] if k < n_faults else _INF
        t_decision = ctrl_times[jc] if jc < n_ctrl else _INF
        t_activation = activations[0][0] if activations else _INF
        t_control = min(t_decision, t_activation)
        t_timer = timers[0][0] if timers else _INF
        t_trace = cursor.peek_time()
        t_injected = injected[0][0] if injected else _INF
        t_next = min(t_fault, t_control, t_timer, t_trace, t_injected)

        # Completions strictly before the next ranked event fire first,
        # each freeing a server and feeding the telemetry window the
        # controller reads at its next tick.  Pops arrive in the
        # canonical (completion, start order) fold order.
        while pending and pending[0][0] < t_next:
            done, seq = heappop(pending)
            busy -= 1
            rec = flight.pop(seq)
            if windows:
                state.record_completion(rec[4], done - rec[1])
            comp_hist.add(done, inclusive=False)
            fold.emit(done, done - rec[1], rec[4])
            if queued and busy < cap:
                dispatch(done, False)
        if t_next == _INF:
            break

        # ---- Fault event: surviving-capacity step -------------------
        if t_fault == t_next:
            surviving = int(fault_caps[k])
            k += 1
            if surviving < busy:
                shortfall = busy - surviving
                victims = sorted(
                    (rec[0], s) for s, rec in flight.items()
                )[-shortfall:]
                doomed = {seq for _, seq in victims}
                for _, seq in reversed(victims):
                    rec = flight.pop(seq)
                    busy -= 1
                    crash_kills += 1
                    kill_hist.add(t_fault, inclusive=True)
                    fail(
                        rec[4], rec[2], rec[3], rec[1],
                        REASON_CRASHED, t_fault,
                    )
                pending = [e for e in pending if e[1] not in doomed]
                heapify(pending)
            cap = min(state.live, surviving)
            while queued and busy < cap:
                dispatch(t_fault, True)
            continue

        # ---- Control event (decision tick before warmup activation) -
        if t_control == t_next:
            if t_decision <= t_activation:
                t = t_decision
                jc += 1
                head_wait = None
                if queued:
                    head_wait = t - min(e for e, _ in queued.values())
                shed_count, activation = state.on_tick(
                    t, busy, len(queued), head_wait
                )
                if shed_count:
                    victims = state.shed_victims(
                        [(qseq, key) for qseq, (_, key) in queued.items()],
                        shed_count,
                    )
                    for qseq in victims:
                        queued.pop(qseq)
                        deqpre_hist.add(t, inclusive=True)
                        shed_drop(t)
                if activation is not None:
                    heappush(
                        activations,
                        (activation[0], next(activation_counter),
                         activation[1]),
                    )
            else:
                t, _, target = heappop(activations)
                state.activate(t, target)
            cap = min(state.live, surviving)
            while queued and busy < cap:
                dispatch(t, True)
            continue

        # ---- Timeout timer ------------------------------------------
        if t_timer == t_next:
            _, _, request = heappop(timers)
            if request[0] in queued:
                queued.pop(request[0])
                deqpre_hist.add(t_timer, inclusive=True)
                timeouts += 1
                fail(
                    request[1], request[2], request[3], request[4],
                    REASON_TIMEOUT, t_timer,
                )
            continue

        # ---- Trace arrival (before an injected one at the same time) -
        if t_trace == t_next and t_trace <= t_injected:
            if not queued and busy < cap:
                # Pass A: contention-free chunk, cut at the next fault
                # and control event (both ranked before arrivals:
                # equal-time arrivals excluded) and the next injected
                # re-arrival (ranked after: equal-time included).
                window_arr, window_ids = cursor.window(chunk_size)
                hi = len(window_arr)
                if k < n_faults:
                    hi = int(
                        np.searchsorted(
                            window_arr[:hi], t_fault, side="left"
                        )
                    )
                if t_control < _INF:
                    hi = int(
                        np.searchsorted(
                            window_arr[:hi], t_control, side="left"
                        )
                    )
                if injected:
                    hi = int(
                        np.searchsorted(
                            window_arr[:hi], t_injected, side="right"
                        )
                    )
                unknown = np.nonzero(~known[window_ids[:hi]])[0]
                if unknown.size:
                    if unknown[0] == 0:
                        raise SchedulingError(
                            "unknown application "
                            f"{app_names[window_ids[0]]!r}"
                        )
                    hi = int(unknown[0])
                arr = window_arr[:hi]
                ids = window_ids[:hi]
                m = hi
                idx0 = cursor.index
                # Arrival gate over the chunk.  No refill interleaves
                # (chunks are cut at control events), so the mask equals
                # the oracle's arrival-by-arrival decisions; sheds never
                # draw service samples.
                if gating:
                    mask = state.gate_mask(ids)
                    all_admitted = bool(mask.all())
                else:
                    mask = None
                    all_admitted = True
                if all_admitted:
                    positions = None
                    arr_adm = arr
                    ids_adm = ids
                    n_adm = m
                else:
                    positions = np.nonzero(mask)[0]
                    n_adm = int(positions.size)
                    arr_adm = arr[positions]
                    ids_adm = ids[positions]
                if n_adm == 0:
                    # Every arrival in the chunk is shed: no capacity
                    # interaction, the whole chunk commits as drops.
                    series.fold_drops(arr, REASON_SHED)
                    cursor.advance(m)
                    chunk_size = min(chunk_size * 2, _CHUNK_MAX)
                    continue
                if hedge is not None:
                    draw_ids = np.repeat(ids_adm, 2)
                    values, events, snapshot = pools.peek(draw_ids)
                    first = values[0::2]
                    backup = values[1::2]
                else:
                    draw_ids = ids_adm
                    values, events, snapshot = pools.peek(ids_adm)
                    first = values
                mults = (
                    timeline.multipliers(arr_adm)
                    if has_slowdowns
                    else np.ones(n_adm)
                )
                effective_first = mults * first
                if hedge is not None:
                    alternative = hedge + mults * backup
                    effective = np.minimum(effective_first, alternative)
                else:
                    effective = effective_first
                comp_opt = arr_adm + effective
                pend_times = np.sort(
                    np.fromiter(
                        (e[0] for e in pending),
                        dtype=np.float64,
                        count=len(pending),
                    )
                )
                dep_pend = np.searchsorted(pend_times, arr_adm, side="left")
                dep_chunk = np.searchsorted(
                    np.sort(comp_opt), arr_adm, side="left"
                )
                n_before = busy + np.arange(n_adm) - dep_pend - dep_chunk
                crossing = np.nonzero(n_before >= cap)[0]
                cut = int(crossing[0]) if crossing.size else n_adm
                # cut >= 1: with busy < cap the first *admitted* arrival
                # always fits, so progress is guaranteed.
                if cut == n_adm:
                    committed = m
                elif positions is None:
                    committed = cut
                else:
                    committed = int(positions[cut])
                pools.commit(
                    draw_ids,
                    2 * cut if hedge is not None else cut,
                    events,
                    snapshot,
                    n_apps,
                )
                pools.compact()
                state.consume(cut)
                if positions is not None:
                    # Sheds below the committed boundary are final now;
                    # later ones re-run through the serial gate (which
                    # sees the post-spend token balance, as the oracle
                    # does).
                    shed_at = np.nonzero(~mask[:committed])[0]
                    if shed_at.size:
                        series.fold_drops(arr[shed_at], REASON_SHED)
                for committed_id in np.unique(ids_adm[:cut]):
                    observe_app(app_names[committed_id])
                if hedge is not None:
                    hedges_launched += int(
                        np.count_nonzero(effective_first[:cut] > hedge)
                    )
                    hedge_wins += int(
                        np.count_nonzero(
                            alternative[:cut] < effective_first[:cut]
                        )
                    )
                started = arr_adm[:cut].tolist()
                comps = comp_opt[:cut].tolist()
                ids_cut = ids_adm[:cut].tolist()
                base = start_counter
                spre_hist.add_batch(arr_adm[:cut], inclusive=True)
                for offset in range(cut):
                    orig_seq = (
                        idx0 + offset
                        if positions is None
                        else idx0 + int(positions[offset])
                    )
                    seq = base + offset
                    flight[seq] = (
                        comps[offset], started[offset], orig_seq,
                        0, ids_cut[offset],
                    )
                    pending.append((comps[offset], seq))
                start_counter += cut
                heapify(pending)
                busy += cut
                cursor.advance(committed)
                chunk_size = (
                    min(chunk_size * 2, _CHUNK_MAX)
                    if committed == m
                    else _CHUNK_MIN
                )
            else:
                idx = cursor.index
                _, app_id = cursor.pop()
                admit((idx, app_id, idx, 0, t_trace), t_trace)
            continue

        # ---- Injected re-arrival ------------------------------------
        _, _, request = heappop(injected)
        admit(request, t_injected)

    fold.flush(_INF)
    series.busy_instances = (
        spre_hist.series()
        + spost_hist.series()
        - comp_hist.series()
        - kill_hist.series()
    )
    series.queue_depth = (
        enq_hist.series() - deqpre_hist.series() - deqpost_hist.series()
    )
    series.live_instances = _live_series(state, ticks)
    series.retries = retries
    series.timeouts = timeouts
    series.crash_kills = crash_kills
    series.hedges_launched = hedges_launched
    series.hedge_wins = hedge_wins
    series.scale_ups = state.scale_ups
    series.scale_downs = state.scale_downs
    return series.finalize()


def run_streaming(
    sim: "RackSimulation",
    queue,
    source,
    sample_interval_seconds: float,
    chunk_requests: Optional[int] = None,
) -> StreamedSeries:
    """Route a streaming run to the port matching the configuration.

    Mirrors :meth:`RackSimulation.run`'s routing (control subsumes
    chaos subsumes policy), with the same configuration errors.

    Generator-backed sources additionally switch the simulation's
    service pools into bounded (windowed-replay) mode for the duration
    of the run: with no materialized trace anywhere, the pools are the
    last O(trace) term, and replaying recorded RNG states on clones
    bounds them too without touching the live RNG stream.  Materialized
    traces keep fully materialized pools — the trace already costs
    O(n), and skipping replay there keeps streaming throughput at the
    vectorized engines' level.
    """
    from repro.cluster.trace import RequestTrace

    if chunk_requests is None:
        chunk_requests = _DEFAULT_CHUNK_REQUESTS
    if not isinstance(source, RequestTrace):
        window = max(chunk_requests, 4096)
        saved = sim._service_window
        sim._service_window = window
        try:
            return _dispatch_streaming(
                sim, queue, source, sample_interval_seconds, chunk_requests
            )
        finally:
            sim._service_window = saved
    return _dispatch_streaming(
        sim, queue, source, sample_interval_seconds, chunk_requests
    )


def _dispatch_streaming(
    sim: "RackSimulation",
    queue,
    source,
    sample_interval_seconds: float,
    chunk_requests: int,
) -> StreamedSeries:
    if sim._control_active():
        if not isinstance(queue, KeyedPolicy):
            raise ConfigurationError(
                "the control plane requires a keyed policy (one "
                "built on repro.cluster.policy_keys.PolicyKey); got "
                f"{type(queue).__name__}"
            )
        timeline = sim._fault_timeline(source)
        retry = sim._retry if sim._retry is not None else RetryPolicy()
        return run_streaming_control(
            sim, queue, source, sample_interval_seconds,
            timeline, retry, sim._control, chunk_requests,
        )
    if sim._chaos_active():
        if not isinstance(queue, KeyedPolicy):
            raise ConfigurationError(
                "fault injection requires a keyed policy (one built "
                "on repro.cluster.policy_keys.PolicyKey); got "
                f"{type(queue).__name__}"
            )
        timeline = sim._fault_timeline(source)
        retry = sim._retry if sim._retry is not None else RetryPolicy()
        return run_streaming_chaos(
            sim, queue, source, sample_interval_seconds,
            timeline, retry, chunk_requests,
        )
    if type(queue) is FCFSPolicy:
        return run_streaming_fcfs(
            sim, source, sample_interval_seconds, chunk_requests
        )
    if isinstance(queue, KeyedPolicy):
        return run_streaming_keyed(
            sim, queue, source, sample_interval_seconds, chunk_requests
        )
    raise ConfigurationError(
        "engine='streaming' requires FCFS or a keyed policy; got "
        f"{type(queue).__name__}"
    )
